//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the *subset* of the `rand 0.8` API it actually uses: [`SeedableRng`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`rngs::SmallRng`] (implemented as xoshiro256++, seeded through
//! SplitMix64 — the same generator family the real `SmallRng` uses on
//! 64-bit targets). Streams are deterministic per seed but are **not**
//! guaranteed to be bit-identical to the real crate; workspace code only
//! relies on determinism, not on specific streams.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their "natural" range by [`Rng::gen`]
/// (`f64` ∈ [0, 1), `bool` fair, integers over the full domain).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value over the type's natural range (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand_core does.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3.0f64..7.0);
            assert!((3.0..7.0).contains(&x));
            let y = rng.gen_range(0..5usize);
            assert!(y < 5);
            let z = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&z));
            let w = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
