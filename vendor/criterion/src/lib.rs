//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset of the criterion 0.5 API its benches use: [`Criterion`],
//! benchmark groups with [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::sample_size`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurements are plain
//! wall-clock medians over `sample_size` samples — good enough to regenerate
//! the paper's relative comparisons, with none of criterion's statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark context handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut g = self.benchmark_group("ungrouped");
        g.run_one(id, &mut f);
        g.finish();
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's default is 100;
    /// this stub defaults to 10 to keep full runs tractable).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` against `input` under the given id.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks a function without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, &mut f);
        self
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One warm-up sample, then the timed ones.
        for i in 0..=self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if i > 0 && b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(f64::total_cmp);
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        eprintln!(
            "  {}/{}: median {:>12.3} µs over {} samples",
            self.name,
            id,
            median * 1e6,
            samples.len()
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures inside one benchmark sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // A fixed small batch: the stub favours run time over precision.
        let iters = 3;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// A parameter-only id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Declares a group-runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark target in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(2);
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::new("count", 1), &3u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).0, "f/10");
        assert_eq!(BenchmarkId::from_parameter("p").0, "p");
    }
}
