//! Value-generation strategies: the sampling core of the stub.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike the real proptest (whose strategies produce shrinkable value
/// trees), this stub's strategies produce plain samples.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`; sampling retries (up to an attempt
    /// cap) until one passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter: no value satisfied the predicate ({})",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 / 0);
tuple_strategy!(S0 / 0, S1 / 1);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

// Boxed strategies, so helpers can return `impl Strategy` of mixed shapes.
impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let a = (3i32..7).sample(&mut rng);
            assert!((3..7).contains(&a));
            let b = (1.5f64..=2.5).sample(&mut rng);
            assert!((1.5..=2.5).contains(&b));
        }
    }

    #[test]
    fn map_and_just() {
        let mut rng = TestRng::new(2);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
        assert_eq!(Just(41).sample(&mut rng), 41);
    }

    #[test]
    fn filter_retries() {
        let mut rng = TestRng::new(3);
        let s = (0u32..10).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }
}
