//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Sizes accepted by collection strategies: a fixed `usize` or a
/// (half-open/inclusive) range of sizes.
pub trait IntoSizeRange {
    /// Draws a concrete size.
    fn sample_size(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn sample_size(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn sample_size(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + (rng.next_u64() as usize) % (self.end - self.start)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn sample_size(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty size range");
        lo + (rng.next_u64() as usize) % (hi - lo + 1)
    }
}

/// Strategy for `Vec<T>` with a given element strategy and size.
pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample_size(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates a `Vec` of `size` elements drawn from `element`.
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
    VecStrategy { element, size }
}

/// Strategy for `BTreeSet<T>` with a given element strategy and size.
pub struct BTreeSetStrategy<S, L> {
    element: S,
    size: L,
}

impl<S: Strategy, L: IntoSizeRange> Strategy for BTreeSetStrategy<S, L>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.sample_size(rng);
        let mut out = BTreeSet::new();
        // Duplicates are re-drawn; cap the attempts so a too-small value
        // domain fails loudly instead of spinning.
        for _ in 0..n.saturating_mul(1000).max(1000) {
            if out.len() >= n {
                break;
            }
            out.insert(self.element.sample(rng));
        }
        assert!(
            out.len() >= n,
            "btree_set: element domain too small for {n} distinct values"
        );
        out
    }
}

/// Generates a `BTreeSet` of `size` distinct elements drawn from `element`.
pub fn btree_set<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> BTreeSetStrategy<S, L>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_sizes() {
        let mut rng = TestRng::new(1);
        assert_eq!(vec(0u32..5, 7usize).sample(&mut rng).len(), 7);
        for _ in 0..50 {
            let v = vec(0u32..5, 2..6usize).sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_distinct_and_sized() {
        let mut rng = TestRng::new(2);
        for _ in 0..50 {
            let s = btree_set((0u32..40, 0u32..40), 3..=10usize).sample(&mut rng);
            assert!((3..=10).contains(&s.len()));
        }
    }

    #[test]
    #[should_panic(expected = "domain too small")]
    fn btree_set_rejects_impossible_sizes() {
        let mut rng = TestRng::new(3);
        let _ = btree_set(0u32..3, 10usize).sample(&mut rng);
    }
}
