//! The test runner: configuration, deterministic RNG, case accounting.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a test case did not succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (skipped, not a failure).
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    /// A rejected (skipped) case.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic RNG handed to strategies (xoshiro256++ over a SplitMix64
/// seed expansion, like the `rand` stub).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives the cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    rng: TestRng,
    cases_target: u32,
    cases_done: u32,
    rejects: u32,
    max_rejects: u32,
    name: &'static str,
}

impl TestRunner {
    /// Builds a runner for the named test; the RNG seed is derived from the
    /// test name so every run is reproducible.
    pub fn new(config: &ProptestConfig, name: &'static str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        TestRunner {
            rng: TestRng::new(h.finish() ^ 0x9E37_79B9_7F4A_7C15),
            cases_target: config.cases,
            cases_done: 0,
            rejects: 0,
            max_rejects: config.max_global_rejects,
            name,
        }
    }

    /// `true` while more cases must run.
    pub fn more_cases(&self) -> bool {
        self.cases_done < self.cases_target
    }

    /// The RNG strategies sample from.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Records a case outcome; panics on failure (no shrinking).
    pub fn finish_case(&mut self, result: Result<(), TestCaseError>) {
        match result {
            Ok(()) => self.cases_done += 1,
            Err(TestCaseError::Reject) => {
                self.rejects += 1;
                assert!(
                    self.rejects <= self.max_rejects,
                    "{}: too many prop_assume! rejections ({})",
                    self.name,
                    self.rejects
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "property failed for {} (case {} after {} rejects): {}",
                    self.name, self.cases_done, self.rejects, message
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_counts_cases_and_rejects() {
        let cfg = ProptestConfig::with_cases(3);
        let mut r = TestRunner::new(&cfg, "counting");
        assert!(r.more_cases());
        r.finish_case(Ok(()));
        r.finish_case(Err(TestCaseError::reject()));
        r.finish_case(Ok(()));
        r.finish_case(Ok(()));
        assert!(!r.more_cases());
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn runner_panics_on_failure() {
        let cfg = ProptestConfig::default();
        let mut r = TestRunner::new(&cfg, "failing");
        r.finish_case(Err(TestCaseError::fail("boom".into())));
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let cfg = ProptestConfig::default();
        let mut a = TestRunner::new(&cfg, "same");
        let mut b = TestRunner::new(&cfg, "same");
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
    }
}
