//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal but *functional* property-testing harness with the subset of the
//! proptest API its tests use: the [`proptest!`] macro, the [`Strategy`]
//! trait with `prop_map`, range and tuple strategies,
//! `prop::collection::{vec, btree_set}`, `prop_assert!` / `prop_assert_eq!`
//! / `prop_assume!`, and [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate: cases are sampled from a fixed
//! deterministic seed derived from the test name (fully reproducible runs),
//! and failing cases are reported but **not shrunk**.

pub mod strategy;

pub mod collection;

pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property test, failing the case (with the
/// generated inputs reported) instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a property test (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (it is skipped, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Declares property tests: each `fn` samples its `name in strategy`
/// arguments `cases` times and runs the body against every sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(&config, stringify!($name));
            while runner.more_cases() {
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> = {
                    use $crate::strategy::Strategy as _;
                    $(let $arg = ($strat).sample(runner.rng());)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                };
                runner.finish_case(result);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes(a in -1000i32..1000, b in -1000i32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_skips_rejected_cases(a in 0i32..10) {
            prop_assume!(a != 3);
            prop_assert_ne!(a, 3);
        }

        #[test]
        fn tuples_and_maps(p in (0.5f64..2.0, 1u32..5).prop_map(|(x, n)| x * n as f64)) {
            prop_assert!((0.5..10.0).contains(&p));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0i32..100, 5),
            s in prop::collection::btree_set((0u32..30, 0u32..30), 3..=10),
        ) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!((3..=10).contains(&s.len()));
        }
    }

    // No #[test] meta on the inner fn: libtest only collects module-level
    // test functions, so the macro-generated runner is invoked manually.
    proptest! {
        fn failing_inner(a in 0i32..10) {
            prop_assert!(a < 5, "a = {} too big", a);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        failing_inner();
    }
}
