//! MOVD as a reusable data product: build it once, then answer "which
//! objects serve this location?" probes via the R-tree point-location index,
//! and render the diagram plus the optimal location to an SVG file.
//!
//! Run with: `cargo run --release --example movd_explorer`
//! (writes `movd_explorer.svg` into the working directory)

use molq::core::movd_index::MovdIndex;
use molq::core::sweep::overlap_general;
use molq::core::Region;
use molq::geom::Mbr;
use molq::prelude::*;

fn main() {
    let bounds = Mbr::new(0.0, 0.0, 1_000.0, 1_000.0);
    let query = standard_query(3, 25, bounds, 7);

    // Build the MOVD once (the overlapper is the expensive step)…
    let movd = Movd::overlap_all(&query.sets, bounds, Boundary::Rrb).expect("distinct sites");
    println!(
        "MOVD over {} types: {} OVRs covering {:.0} of {:.0} area units",
        query.sets.len(),
        movd.len(),
        movd.total_area(),
        bounds.area()
    );

    // …then reuse it: the answer via the optimizer,
    let answer = solve_rrb(&query).expect("valid query");
    println!(
        "optimal location ({:.1}, {:.1}) with cost {:.1}",
        answer.location.x, answer.location.y, answer.cost
    );

    // …and location probes via the index (Property 5: the OVR's objects are
    // the weighted-nearest of every type for all locations inside it).
    let index = MovdIndex::build(movd.clone());
    for probe in [
        molq::geom::Point::new(100.0, 100.0),
        molq::geom::Point::new(500.0, 500.0),
        answer.location,
    ] {
        let ovr = index.locate(probe).expect("RRB MOVDs cover the space");
        let names: Vec<String> = ovr
            .pois
            .iter()
            .map(|r| format!("{}#{}", query.sets[r.set].name, r.index))
            .collect();
        println!(
            "at ({:>6.1}, {:>6.1}) the serving group is {}",
            probe.x,
            probe.y,
            names.join(", ")
        );
    }

    // The general (payload-free) overlap API from §5.2 of the paper.
    let quadrants = overlap_general(
        bounds,
        vec![
            Region::Rect(Mbr::new(0.0, 0.0, 500.0, 1_000.0)),
            Region::Rect(Mbr::new(500.0, 0.0, 1_000.0, 1_000.0)),
        ],
        vec![
            Region::Rect(Mbr::new(0.0, 0.0, 1_000.0, 500.0)),
            Region::Rect(Mbr::new(0.0, 500.0, 1_000.0, 1_000.0)),
        ],
        Boundary::Rrb,
    );
    println!("general overlap demo: {} quadrant regions", quadrants.len());

    // Planning rarely wants one coordinate: the top-5 distinct candidates.
    let topk = molq::core::solve_topk(&query, Boundary::Rrb, 5).expect("valid query");
    println!("\ntop-{} candidate locations:", topk.candidates.len());
    for (rank, c) in topk.candidates.iter().enumerate() {
        println!(
            "  #{} ({:>6.1}, {:>6.1}) cost {:.1}",
            rank + 1,
            c.location.x,
            c.location.y,
            c.cost
        );
    }

    // Render the diagram with POIs and the answer star.
    let pois: Vec<(molq::geom::Point, usize)> = query
        .sets
        .iter()
        .enumerate()
        .flat_map(|(si, s)| s.objects.iter().map(move |o| (o.loc, si)))
        .collect();
    let svg = molq::viz::render_answer(&movd, &pois, answer.location, 800);
    std::fs::write("movd_explorer.svg", &svg).expect("write svg");
    println!("wrote movd_explorer.svg ({} bytes)", svg.len());
}
