//! The paper's introductory example (Fig 1): residential location selection
//! among schools, bus stops, and supermarkets.
//!
//! Reproduces both readings of the figure:
//! 1. unweighted — the best community minimises plain total distance,
//! 2. weighted — user-customised type/object weights change the winner.
//!
//! Run with: `cargo run --release --example residential`

use molq::core::{wd, WeightFunction};
use molq::geom::{Mbr, Point};
use molq::prelude::*;

fn main() {
    let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);

    // A small town with two objects of each type (locations are synthetic;
    // the figure only constrains the distances, not the map).
    let school_locs = vec![Point::new(20.0, 70.0), Point::new(75.0, 80.0)];
    let bus_locs = vec![Point::new(30.0, 30.0), Point::new(80.0, 40.0)];
    let market_locs = vec![Point::new(50.0, 55.0), Point::new(15.0, 20.0)];

    // --- Reading 1: all weights 1 (plain distance). -----------------------
    let unweighted = MolqQuery::new(
        vec![
            ObjectSet::uniform("schools", 1.0, school_locs.clone()),
            ObjectSet::uniform("bus stops", 1.0, bus_locs.clone()),
            ObjectSet::uniform("supermarkets", 1.0, market_locs.clone()),
        ],
        bounds,
    );
    let plain = solve_rrb(&unweighted).expect("valid query");
    println!(
        "unweighted optimum: {} (total distance {:.1})",
        plain.location, plain.cost
    );

    // --- Reading 2: the paper's customised ⟨w^t, w^o⟩ weights. -------------
    // Schools matter most to this user; the second school is the preferred
    // one (smaller object weight).
    let schools = ObjectSet::weighted(
        "schools",
        vec![
            SpatialObject {
                loc: school_locs[0],
                w_t: 3.0,
                w_o: 1.0,
            },
            SpatialObject {
                loc: school_locs[1],
                w_t: 3.0,
                w_o: 0.5,
            },
        ],
        WeightFunction::Multiplicative,
    );
    let bus_stops = ObjectSet::weighted(
        "bus stops",
        vec![
            SpatialObject {
                loc: bus_locs[0],
                w_t: 1.0,
                w_o: 1.0,
            },
            SpatialObject {
                loc: bus_locs[1],
                w_t: 1.0,
                w_o: 2.0,
            },
        ],
        WeightFunction::Multiplicative,
    );
    let markets = ObjectSet::weighted(
        "supermarkets",
        vec![
            SpatialObject {
                loc: market_locs[0],
                w_t: 2.0,
                w_o: 1.0,
            },
            SpatialObject {
                loc: market_locs[1],
                w_t: 2.0,
                w_o: 1.0,
            },
        ],
        WeightFunction::Multiplicative,
    );
    let weighted = MolqQuery::new(vec![schools, bus_stops, markets], bounds);

    // Non-uniform object weights put the query on the weighted-diagram path;
    // MBRB is the solution designed for it.
    let custom = solve_mbrb(&weighted).expect("valid query");
    println!(
        "weighted optimum  : {} (total weighted distance {:.1})",
        custom.location, custom.cost
    );

    // Show the per-type breakdown at the weighted optimum, like the numbers
    // on Fig 1's connecting lines.
    println!("\nbreakdown at the weighted optimum:");
    for set in &weighted.sets {
        let (best, dist) = set
            .objects
            .iter()
            .map(|o| {
                (
                    o,
                    wd(
                        custom.location,
                        o,
                        weighted.type_weight_fn,
                        set.object_weight_fn,
                    ),
                )
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty set");
        println!(
            "  {:13} nearest at {} — weighted distance {:.1}",
            set.name, best.loc, dist
        );
    }

    // The two optima differ: weights changed the decision, the point of the
    // paper's example.
    assert!(plain.location.dist(custom.location) > 1.0);
}
