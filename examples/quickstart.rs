//! Quickstart: build a three-type MOLQ query and solve it with all three
//! algorithms, verifying they agree.
//!
//! Run with: `cargo run --release --example quickstart`

use molq::geom::{Mbr, Point};
use molq::prelude::*;

fn main() {
    // A 10 km × 10 km city.
    let bounds = Mbr::new(0.0, 0.0, 10_000.0, 10_000.0);

    // Three POI types with different importance: schools count double.
    let schools = ObjectSet::uniform(
        "schools",
        2.0,
        vec![
            Point::new(2_000.0, 3_000.0),
            Point::new(5_500.0, 7_000.0),
            Point::new(8_000.0, 2_500.0),
        ],
    );
    let bus_stops = ObjectSet::uniform(
        "bus stops",
        1.0,
        vec![
            Point::new(1_000.0, 1_000.0),
            Point::new(4_000.0, 5_000.0),
            Point::new(6_500.0, 8_000.0),
            Point::new(9_000.0, 4_000.0),
        ],
    );
    let supermarkets = ObjectSet::uniform(
        "supermarkets",
        1.5,
        vec![Point::new(3_000.0, 6_000.0), Point::new(7_000.0, 5_500.0)],
    );

    let query = MolqQuery::new(vec![schools, bus_stops, supermarkets], bounds);

    println!(
        "query: {} object combinations in a {:.0} km² search space\n",
        query.combination_count(),
        bounds.area() / 1e6
    );

    // The naive baseline enumerates every combination …
    let ssc = solve_ssc(&query).expect("valid query");
    println!(
        "SSC   : best location {} cost {:.1}",
        ssc.location, ssc.cost
    );

    // … the MOVD solutions overlap the Voronoi diagrams first.
    let rrb = solve_rrb(&query).expect("valid query");
    println!(
        "RRB   : best location {} cost {:.1} ({} OVRs, {} B)",
        rrb.location, rrb.cost, rrb.ovr_count, rrb.movd_bytes
    );

    let mbrb = solve_mbrb(&query).expect("valid query");
    println!(
        "MBRB  : best location {} cost {:.1} ({} OVRs, {} B)",
        mbrb.location, mbrb.cost, mbrb.ovr_count, mbrb.movd_bytes
    );

    // All three agree (within the iterative stopping tolerance).
    assert!((ssc.cost - rrb.cost).abs() < 1e-3 * ssc.cost);
    assert!((ssc.cost - mbrb.cost).abs() < 1e-3 * ssc.cost);

    // Cross-check with the direct MWGD definition.
    let direct = mwgd(rrb.location, &query);
    println!("\nMWGD at the answer (direct evaluation): {direct:.1}");
}
