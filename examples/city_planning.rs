//! City-scale planning on synthetic GeoNames-like layers: pick the best
//! community location against streams, churches, and schools — the paper's
//! three-type evaluation workload — and compare the algorithms' work.
//!
//! Run with: `cargo run --release --example city_planning`

use molq::geom::Mbr;
use molq::prelude::*;
use std::time::Instant;

fn main() {
    // A 100 km × 100 km region, coordinates in metres.
    let bounds = Mbr::new(0.0, 0.0, 100_000.0, 100_000.0);
    let seed = 2014;

    // The paper's three-type workload E = {STM, CH, SCH} with random type
    // weights in (0, 10] and 40 objects sampled per type (SSC-feasible).
    let query = standard_query(3, 40, bounds, seed);
    println!(
        "three-type query over layers {:?} — {} combinations",
        query
            .sets
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>(),
        query.combination_count()
    );

    let t = Instant::now();
    let ssc = solve_ssc(&query).expect("valid query");
    let t_ssc = t.elapsed();

    let t = Instant::now();
    let rrb = solve_rrb(&query).expect("valid query");
    let t_rrb = t.elapsed();

    let t = Instant::now();
    let mbrb = solve_mbrb(&query).expect("valid query");
    let t_mbrb = t.elapsed();

    println!(
        "\n{:6} {:>12} {:>14} {:>10} {:>12}",
        "algo", "time", "cost", "OVRs", "FW iters"
    );
    println!(
        "{:6} {:>12?} {:>14.1} {:>10} {:>12}",
        "SSC", t_ssc, ssc.cost, "-", ssc.stats.iterations
    );
    println!(
        "{:6} {:>12?} {:>14.1} {:>10} {:>12}",
        "RRB", t_rrb, rrb.cost, rrb.ovr_count, rrb.stats.iterations
    );
    println!(
        "{:6} {:>12?} {:>14.1} {:>10} {:>12}",
        "MBRB", t_mbrb, mbrb.cost, mbrb.ovr_count, mbrb.stats.iterations
    );

    println!(
        "\nanswer: build at ({:.0} m, {:.0} m)",
        rrb.location.x, rrb.location.y
    );

    // All three must agree on the answer cost.
    assert!((ssc.cost - rrb.cost).abs() < 1e-3 * ssc.cost);
    assert!((ssc.cost - mbrb.cost).abs() < 1e-3 * ssc.cost);

    // And the MOVD solutions must evaluate far fewer Fermat–Weber groups
    // than the combination count.
    assert!((rrb.ovr_count as u128) < query.combination_count());
}
