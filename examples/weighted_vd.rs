//! Weighted Voronoi diagrams (Fig 5 of the paper): multiplicatively and
//! additively weighted dominance, rendered as ASCII rasters, plus the
//! superset MBRs the MBRB pipeline consumes.
//!
//! Run with: `cargo run --release --example weighted_vd`

use molq::geom::{Mbr, Point};
use molq::voronoi::{WeightScheme, WeightedSite, WeightedVoronoi};

fn render(vd: &WeightedVoronoi, res: usize) {
    let raster = vd.rasterize(res);
    let glyphs: Vec<char> = ('a'..='z').collect();
    // Rows were produced bottom-up; print top-down.
    for r in (0..res).rev() {
        let row: String = (0..res)
            .map(|c| glyphs[raster[r * res + c] % glyphs.len()])
            .collect();
        println!("  {row}");
    }
}

fn main() {
    let bounds = Mbr::new(0.0, 0.0, 60.0, 24.0);
    let sites = vec![
        WeightedSite::new(Point::new(12.0, 12.0), 1.0), // attractive (light)
        WeightedSite::new(Point::new(40.0, 8.0), 2.5),  // less attractive
        WeightedSite::new(Point::new(48.0, 18.0), 1.5),
    ];

    println!("multiplicatively weighted (w·d — Apollonius boundaries):\n");
    let mw = WeightedVoronoi::build(&sites, WeightScheme::Multiplicative, bounds);
    render(&mw, 24);
    println!();
    for i in 0..mw.len() {
        let m = mw.region_mbr(i);
        println!(
            "  site {i} (w={:.1}) superset MBR: [{:.1}, {:.1}] × [{:.1}, {:.1}]",
            mw.sites()[i].weight,
            m.min_x,
            m.max_x,
            m.min_y,
            m.max_y
        );
    }

    println!("\nadditively weighted (d + w — hyperbolic boundaries):\n");
    let aw = WeightedVoronoi::build(&sites, WeightScheme::Additive, bounds);
    render(&aw, 24);

    // Sanity: the heavy multiplicative site is confined to a bounded bubble.
    assert!(mw.region_mbr(1).area() < bounds.area());
    // The dominator predicate agrees with direct weighted distances.
    let probe = Point::new(30.0, 12.0);
    let who = mw.dominator(probe);
    for i in 0..mw.len() {
        assert!(mw.weighted_dist(probe, who) <= mw.weighted_dist(probe, i) + 1e-12);
    }
}
