//! Property-based tests (proptest) over the core invariants:
//! Voronoi correctness, MOVD algebra, Fermat–Weber bounds, and solution
//! agreement on arbitrary inputs.

use molq::core::sweep::{overlap, overlap_bruteforce};
use molq::core::{Boundary, MolqQuery, Movd, ObjectSet};
use molq::fw::{cost, lower_bound, solve, vardi_zhang_step, StoppingRule, WeightedPoint};
use molq::geom::{Mbr, Point};
use molq::voronoi::OrdinaryVoronoi;
use proptest::prelude::*;

const SIDE: f64 = 100.0;

fn bounds() -> Mbr {
    Mbr::new(0.0, 0.0, SIDE, SIDE)
}

/// Distinct points on a coarse grid jittered off-axis, so degenerate
/// configurations (equal coordinates, collinear triples) appear often but
/// exact duplicates never do.
fn distinct_points(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::btree_set((0u32..50, 0u32..50), min..=max).prop_map(|cells| {
        cells
            .into_iter()
            .map(|(i, j)| Point::new(i as f64 * 2.0 + 0.5, j as f64 * 2.0 + 0.5))
            .collect()
    })
}

fn weighted_points(min: usize, max: usize) -> impl Strategy<Value = Vec<WeightedPoint>> {
    (
        distinct_points(min, max),
        prop::collection::vec(0.1f64..10.0, max),
    )
        .prop_map(|(pts, ws)| {
            pts.into_iter()
                .zip(ws)
                .map(|(p, w)| WeightedPoint::new(p, w))
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn voronoi_cells_tile_and_dominate(pts in distinct_points(2, 40)) {
        let vd = OrdinaryVoronoi::build(&pts, bounds()).unwrap();
        // Tiling (Property 3 for basic MOVDs).
        let total: f64 = vd.cells().iter().map(|c| c.area()).sum();
        prop_assert!((total - bounds().area()).abs() < 1e-6 * bounds().area());
        // Sampled dominance: cell membership implies nearest site.
        for gi in 0..10 {
            let q = Point::new((gi as f64 * 9.7 + 3.1) % SIDE, (gi as f64 * 13.3 + 1.7) % SIDE);
            let nearest = vd.locate(q);
            let nd = pts[nearest].dist(q);
            for (i, c) in vd.cells().iter().enumerate() {
                if c.contains(q) {
                    prop_assert!(pts[i].dist(q) <= nd + 1e-9);
                }
            }
        }
    }

    #[test]
    fn sweep_equals_bruteforce(a_pts in distinct_points(2, 25), b_pts in distinct_points(2, 25)) {
        let a = Movd::basic(&ObjectSet::uniform("a", 1.0, a_pts), 0, bounds()).unwrap();
        let b = Movd::basic(&ObjectSet::uniform("b", 1.0, b_pts), 1, bounds()).unwrap();
        for mode in [Boundary::Rrb, Boundary::Mbrb] {
            let fast = overlap(&a, &b, mode);
            let slow = overlap_bruteforce(&a, &b, mode);
            prop_assert!(fast.equivalent(&slow, 1e-9), "mode {mode:?}: {} vs {}", fast.len(), slow.len());
        }
    }

    #[test]
    fn movd_overlap_laws(a_pts in distinct_points(2, 15), b_pts in distinct_points(2, 15)) {
        let a = Movd::basic(&ObjectSet::uniform("a", 1.0, a_pts), 0, bounds()).unwrap();
        let b = Movd::basic(&ObjectSet::uniform("b", 1.0, b_pts), 1, bounds()).unwrap();
        let ab = overlap(&a, &b, Boundary::Rrb);
        // Coverage (Property 3).
        prop_assert!((ab.total_area() - bounds().area()).abs() < 1e-4 * bounds().area());
        // Size bounds (Properties 2 and 6).
        prop_assert!(ab.len() <= a.len() * b.len());
        prop_assert!(ab.len() >= a.len().max(b.len()));
        // Commutativity (Property 10).
        let ba = overlap(&b, &a, Boundary::Rrb);
        prop_assert!(ab.equivalent(&ba, 1e-9));
        // Identity (Property 12).
        let id = Movd::identity(bounds());
        prop_assert!(overlap(&a, &id, Boundary::Rrb).equivalent(&a, 1e-9));
        // Idempotence (Property 9).
        prop_assert!(overlap(&a, &a, Boundary::Rrb).equivalent(&a, 1e-9));
        // Absorption (Property 14): (a ⊕ b) ⊕ b = a ⊕ b.
        prop_assert!(overlap(&ab, &b, Boundary::Rrb).equivalent(&ab, 1e-6));
    }

    #[test]
    fn fw_lower_bound_never_exceeds_optimum(pts in weighted_points(3, 10)) {
        let opt = solve(&pts, StoppingRule::Either(1e-12, 50_000));
        // From several starting locations, the bound stays below the optimum.
        for s in 0..5 {
            let mut q = Point::new(7.3 * s as f64 + 1.0, 11.9 * s as f64 % SIDE);
            for _ in 0..10 {
                let lb = lower_bound(q, &pts);
                prop_assert!(lb <= opt.cost * (1.0 + 1e-9) + 1e-12, "lb {lb} > opt {}", opt.cost);
                q = vardi_zhang_step(q, &pts);
            }
        }
    }

    #[test]
    fn fw_descent_monotone_and_convergent(pts in weighted_points(4, 12)) {
        let mut q = Point::new(SIDE / 2.0, SIDE / 2.0);
        let mut last = cost(q, &pts);
        for _ in 0..100 {
            q = vardi_zhang_step(q, &pts);
            let c = cost(q, &pts);
            prop_assert!(c <= last * (1.0 + 1e-12) + 1e-12);
            last = c;
        }
        // ε-rule result is within ε of the certified bound.
        let sol = solve(&pts, StoppingRule::Either(1e-4, 50_000));
        let lb = lower_bound(sol.location, &pts);
        if !sol.exact && lb > 0.0 {
            prop_assert!(sol.cost <= lb * (1.0 + 1.1e-4));
        }
    }

    #[test]
    fn solutions_agree_on_random_two_type_queries(
        a_pts in distinct_points(2, 10),
        b_pts in distinct_points(2, 10),
        wa in 0.1f64..10.0,
        wb in 0.1f64..10.0,
    ) {
        let q = MolqQuery::new(
            vec![
                ObjectSet::uniform("a", wa, a_pts),
                ObjectSet::uniform("b", wb, b_pts),
            ],
            bounds(),
        ).with_rule(StoppingRule::Either(1e-9, 50_000));
        let ssc = molq::core::solve_ssc(&q).unwrap();
        let rrb = molq::core::solve_rrb(&q).unwrap();
        let mbrb = molq::core::solve_mbrb(&q).unwrap();
        let tol = 1e-6 * ssc.cost.max(1.0);
        prop_assert!((ssc.cost - rrb.cost).abs() < tol, "ssc {} rrb {}", ssc.cost, rrb.cost);
        prop_assert!((ssc.cost - mbrb.cost).abs() < tol, "ssc {} mbrb {}", ssc.cost, mbrb.cost);
    }
}
