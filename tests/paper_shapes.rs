//! Executable versions of the paper's qualitative claims, using
//! deterministic counters (OVR counts, bytes, iteration counts) rather than
//! wall-clock time so they hold on any machine.

use molq::core::sweep::overlap;
use molq::core::Footprint;
use molq::datagen::geonames::layer_object_set;
use molq::datagen::workloads::random_fw_groups;
use molq::fw::{solve_cost_bound, solve_sequential};
use molq::geom::Mbr;
use molq::prelude::*;

fn bounds() -> Mbr {
    Mbr::new(0.0, 0.0, 100_000.0, 100_000.0)
}

#[test]
fn movd_solutions_evaluate_fewer_groups_than_ssc_enumerates() {
    // The point of the paper: overlapping filters out almost all of the
    // |P1|·|P2|·|P3| combinations.
    let q = standard_query(3, 30, bounds(), 1);
    let rrb = solve_rrb(&q).unwrap();
    let mbrb = solve_mbrb(&q).unwrap();
    let combos = q.combination_count() as usize;
    assert!(
        rrb.ovr_count * 20 < combos,
        "rrb {} vs {}",
        rrb.ovr_count,
        combos
    );
    assert!(
        mbrb.ovr_count * 10 < combos,
        "mbrb {} vs {}",
        mbrb.ovr_count,
        combos
    );
}

#[test]
fn fig12_shape_mbrb_produces_more_ovrs() {
    for n in [500usize, 2000] {
        let stm = layer_object_set(GeoLayer::Streams, n, 1.0, bounds(), 7);
        let ch = layer_object_set(GeoLayer::Churches, n, 1.0, bounds(), 7);
        let a = Movd::basic(&stm, 0, bounds()).unwrap();
        let b = Movd::basic(&ch, 1, bounds()).unwrap();
        let rrb = overlap(&a, &b, Boundary::Rrb);
        let mbrb = overlap(&a, &b, Boundary::Mbrb);
        let ratio = mbrb.len() as f64 / rrb.len() as f64;
        assert!(
            (1.2..2.5).contains(&ratio),
            "n={n}: MBRB/RRB OVR ratio {ratio}"
        );
    }
}

#[test]
fn fig13_shape_mbrb_uses_less_memory_for_two_diagrams() {
    let n = 2000;
    let stm = layer_object_set(GeoLayer::Streams, n, 1.0, bounds(), 9);
    let ch = layer_object_set(GeoLayer::Churches, n, 1.0, bounds(), 9);
    let a = Movd::basic(&stm, 0, bounds()).unwrap();
    let b = Movd::basic(&ch, 1, bounds()).unwrap();
    let rrb = overlap(&a, &b, Boundary::Rrb).footprint_bytes();
    let mbrb = overlap(&a, &b, Boundary::Mbrb).footprint_bytes();
    assert!(
        mbrb < rrb,
        "two-diagram overlap: MBRB {mbrb} B should be below RRB {rrb} B"
    );
}

#[test]
fn fig14d_shape_memory_turning_point_between_2_and_3_types() {
    let n = 800;
    let build = |types: usize, mode: Boundary| {
        let mut acc = Movd::identity(bounds());
        for (i, &layer) in GeoLayer::ALL[..types].iter().enumerate() {
            let set = layer_object_set(layer, n, 1.0, bounds(), 11);
            acc = acc.overlap(&Movd::basic(&set, i, bounds()).unwrap(), mode);
        }
        acc.footprint_bytes()
    };
    // 2 types: MBRB lighter. 4 types: MBRB heavier (false-positive cascade).
    assert!(build(2, Boundary::Mbrb) < build(2, Boundary::Rrb));
    assert!(build(4, Boundary::Mbrb) > build(4, Boundary::Rrb));
}

#[test]
fn fig14c_shape_false_positive_cascade_grows_with_types() {
    let n = 500;
    let ratio_at = |types: usize| {
        let mut rrb = Movd::identity(bounds());
        let mut mbrb = Movd::identity(bounds());
        for (i, &layer) in GeoLayer::ALL[..types].iter().enumerate() {
            let set = layer_object_set(layer, n, 1.0, bounds(), 13);
            let basic = Movd::basic(&set, i, bounds()).unwrap();
            rrb = rrb.overlap(&basic, Boundary::Rrb);
            mbrb = mbrb.overlap(&basic, Boundary::Mbrb);
        }
        mbrb.len() as f64 / rrb.len() as f64
    };
    let r2 = ratio_at(2);
    let r3 = ratio_at(3);
    let r4 = ratio_at(4);
    assert!(r2 < r3 && r3 < r4, "cascade must grow: {r2} {r3} {r4}");
}

#[test]
fn fig10_shape_cost_bound_needs_far_fewer_iterations() {
    let groups = random_fw_groups(2000, 5, bounds(), 17);
    for eps in [1e-2, 1e-3] {
        let rule = StoppingRule::Either(eps, 100_000);
        let orig = solve_sequential(&groups, rule).unwrap();
        let cb = solve_cost_bound(&groups, rule).unwrap();
        assert!(
            cb.stats.iterations * 3 < orig.stats.iterations,
            "eps={eps}: CB {} vs orig {}",
            cb.stats.iterations,
            orig.stats.iterations
        );
        // Tighter ε widens the gap (the prune is ε-independent).
    }
    // Explicit widening check.
    let loose = {
        let rule = StoppingRule::Either(1e-1, 100_000);
        let o = solve_sequential(&groups, rule).unwrap().stats.iterations;
        let c = solve_cost_bound(&groups, rule).unwrap().stats.iterations;
        o as f64 / c as f64
    };
    let tight = {
        let rule = StoppingRule::Either(1e-4, 100_000);
        let o = solve_sequential(&groups, rule).unwrap().stats.iterations;
        let c = solve_cost_bound(&groups, rule).unwrap().stats.iterations;
        o as f64 / c as f64
    };
    assert!(tight > loose, "gap must widen: loose {loose} tight {tight}");
}

#[test]
fn property2_ovr_count_never_exceeds_combination_product() {
    let q = standard_query(3, 15, bounds(), 23);
    let rrb = solve_rrb(&q).unwrap();
    let mbrb = solve_mbrb(&q).unwrap();
    let product = q.combination_count() as usize;
    assert!(rrb.ovr_count <= product);
    assert!(mbrb.ovr_count <= product);
}
