//! End-to-end integration tests: the three solutions agree with each other,
//! with the direct MWGD definition, and with dense grid scans, across query
//! shapes.

use molq::datagen::workloads::standard_query;
use molq::geom::{Mbr, Point};
use molq::prelude::*;

fn bounds() -> Mbr {
    Mbr::new(0.0, 0.0, 1000.0, 1000.0)
}

#[test]
fn all_solutions_agree_across_seeds_three_types() {
    for seed in [1u64, 7, 42, 2014] {
        let q = standard_query(3, 12, bounds(), seed);
        let ssc = solve_ssc(&q).unwrap();
        let rrb = solve_rrb(&q).unwrap();
        let mbrb = solve_mbrb(&q).unwrap();
        let tol = 2e-3 * ssc.cost;
        assert!(
            (ssc.cost - rrb.cost).abs() < tol,
            "seed {seed}: ssc {} rrb {}",
            ssc.cost,
            rrb.cost
        );
        assert!(
            (ssc.cost - mbrb.cost).abs() < tol,
            "seed {seed}: ssc {} mbrb {}",
            ssc.cost,
            mbrb.cost
        );
    }
}

#[test]
fn all_solutions_agree_four_types() {
    let q = standard_query(4, 8, bounds(), 99);
    let ssc = solve_ssc(&q).unwrap();
    let rrb = solve_rrb(&q).unwrap();
    let mbrb = solve_mbrb(&q).unwrap();
    let tol = 5e-3 * ssc.cost; // four types: iterative with ε = 0.001
    assert!((ssc.cost - rrb.cost).abs() < tol);
    assert!((ssc.cost - mbrb.cost).abs() < tol);
}

#[test]
fn five_types_rrb_and_mbrb_agree() {
    let q = standard_query(5, 6, bounds(), 5);
    let rrb = solve_rrb(&q).unwrap();
    let mbrb = solve_mbrb(&q).unwrap();
    assert!((rrb.cost - mbrb.cost).abs() < 5e-3 * rrb.cost);
}

#[test]
fn answer_cost_is_mwgd_at_location_and_beats_grid() {
    let q = standard_query(3, 15, bounds(), 31);
    let ans = solve_rrb(&q).unwrap();
    let at_answer = mwgd(ans.location, &q);
    assert!((ans.cost - at_answer).abs() < 1e-6 * at_answer);
    // No grid point may beat the reported optimum (up to the ε tolerance).
    let mut best_grid = f64::INFINITY;
    for i in 0..=60 {
        for j in 0..=60 {
            let p = Point::new(i as f64 * 1000.0 / 60.0, j as f64 * 1000.0 / 60.0);
            best_grid = best_grid.min(mwgd(p, &q));
        }
    }
    assert!(
        ans.cost <= best_grid * (1.0 + 2e-3),
        "answer {} vs grid {}",
        ans.cost,
        best_grid
    );
}

#[test]
fn clustered_data_works() {
    use molq::datagen::{sample_points, Distribution};
    let dist = Distribution::GaussianClusters {
        count: 4,
        sigma: 0.02,
    };
    let sets: Vec<ObjectSet> = (0..3)
        .map(|i| {
            ObjectSet::uniform(
                &format!("t{i}"),
                (i + 1) as f64,
                sample_points(&dist, 20, bounds(), 100 + i as u64),
            )
        })
        .collect();
    let q = MolqQuery::new(sets, bounds());
    let ssc = solve_ssc(&q).unwrap();
    let rrb = solve_rrb(&q).unwrap();
    assert!((ssc.cost - rrb.cost).abs() < 2e-3 * ssc.cost);
}

#[test]
fn csv_roundtrip_preserves_answers() {
    use molq::datagen::csv::{read_csv, write_csv};
    let q = standard_query(2, 10, bounds(), 17);
    let rrb = solve_rrb(&q).unwrap();

    // Serialize both sets, read them back, re-solve.
    let sets: Vec<ObjectSet> = q
        .sets
        .iter()
        .map(|s| {
            let mut buf = Vec::new();
            write_csv(s, &mut buf).unwrap();
            read_csv(&s.name, buf.as_slice()).unwrap()
        })
        .collect();
    let q2 = MolqQuery::new(sets, bounds());
    let rrb2 = solve_rrb(&q2).unwrap();
    assert!((rrb.cost - rrb2.cost).abs() < 1e-9);
}

#[test]
fn duplicate_objects_are_reported_not_panicked() {
    let p = Point::new(10.0, 10.0);
    let set = ObjectSet::uniform("dup", 1.0, vec![p, p, Point::new(5.0, 5.0)]);
    let q = MolqQuery::new(vec![set], bounds());
    let err = solve_rrb(&q).unwrap_err();
    assert!(err.to_string().contains("duplicate"), "got: {err}");
}

#[test]
fn degenerate_collinear_objects() {
    // All objects on one line — exercises collinear Fermat–Weber paths and
    // degenerate Voronoi cells.
    let mk = |offset: f64, name: &str| {
        ObjectSet::uniform(
            name,
            1.0,
            (0..6)
                .map(|i| Point::new(100.0 * (i as f64 + 1.0), 500.0 + offset))
                .collect(),
        )
    };
    let q = MolqQuery::new(vec![mk(0.0, "a"), mk(50.0, "b")], bounds());
    let ssc = solve_ssc(&q).unwrap();
    let rrb = solve_rrb(&q).unwrap();
    assert!((ssc.cost - rrb.cost).abs() < 2e-3 * ssc.cost.max(1.0));
}

#[test]
fn single_object_per_type_reduces_to_fermat_weber() {
    // One object per type: MOLQ = one Fermat–Weber problem.
    let q = MolqQuery::new(
        vec![
            ObjectSet::uniform("a", 1.0, vec![Point::new(100.0, 100.0)]),
            ObjectSet::uniform("b", 1.0, vec![Point::new(900.0, 100.0)]),
            ObjectSet::uniform("c", 1.0, vec![Point::new(500.0, 800.0)]),
        ],
        bounds(),
    );
    let rrb = solve_rrb(&q).unwrap();
    let fw = molq::fw::solve(
        &[
            molq::fw::WeightedPoint::new(Point::new(100.0, 100.0), 1.0),
            molq::fw::WeightedPoint::new(Point::new(900.0, 100.0), 1.0),
            molq::fw::WeightedPoint::new(Point::new(500.0, 800.0), 1.0),
        ],
        StoppingRule::Either(1e-9, 10_000),
    );
    assert!((rrb.cost - fw.cost).abs() < 1e-6 * fw.cost);
}
