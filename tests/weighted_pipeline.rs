//! Property-based validation of the weighted (non-uniform `w^o`) pipeline:
//! the general-region RRB path and MBRB against the SSC oracle, which is
//! exact for any weight configuration.

use molq::core::{solve_weighted_rrb, WeightFunction};
use molq::geom::{Mbr, Point};
use molq::prelude::*;
use proptest::prelude::*;

const SIDE: f64 = 100.0;

fn bounds() -> Mbr {
    Mbr::new(0.0, 0.0, SIDE, SIDE)
}

/// Weighted object sets on a jittered grid: distinct locations, object
/// weights spanning two orders of magnitude so dominance bubbles of many
/// sizes appear.
fn weighted_set(name: &'static str, min: usize, max: usize) -> impl Strategy<Value = ObjectSet> {
    (
        prop::collection::btree_set((0u32..40, 0u32..40), min..=max),
        prop::collection::vec(0.2f64..20.0, max),
        0.1f64..10.0,
    )
        .prop_map(move |(cells, wos, wt)| {
            let objects = cells
                .into_iter()
                .zip(wos)
                .map(|((i, j), w_o)| SpatialObject {
                    loc: Point::new(i as f64 * 2.5 + 0.3, j as f64 * 2.5 + 0.8),
                    w_t: wt,
                    w_o,
                })
                .collect();
            ObjectSet::weighted(name, objects, WeightFunction::Multiplicative)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn weighted_solutions_agree_with_ssc(
        a in weighted_set("a", 2, 6),
        b in weighted_set("b", 2, 6),
    ) {
        let q = MolqQuery::new(vec![a, b], bounds())
            .with_rule(StoppingRule::Either(1e-9, 50_000));
        let ssc = solve_ssc(&q).unwrap();
        let mbrb = solve_mbrb(&q).unwrap();
        let wrrb = solve_weighted_rrb(&q, 80).unwrap();
        let tol = 1e-6 * ssc.cost.max(1.0);
        prop_assert!((ssc.cost - mbrb.cost).abs() < tol, "mbrb {} vs ssc {}", mbrb.cost, ssc.cost);
        prop_assert!((ssc.cost - wrrb.cost).abs() < tol, "wrrb {} vs ssc {}", wrrb.cost, ssc.cost);
    }

    #[test]
    fn additive_object_weights_agree_with_ssc(
        cells in prop::collection::btree_set((0u32..30, 0u32..30), 2..5usize),
        wos in prop::collection::vec(0.5f64..15.0, 5),
    ) {
        let objects: Vec<SpatialObject> = cells
            .into_iter()
            .zip(wos)
            .map(|((i, j), w_o)| SpatialObject {
                loc: Point::new(i as f64 * 3.0 + 1.0, j as f64 * 3.0 + 1.5),
                w_t: 2.0,
                w_o,
            })
            .collect();
        let a = ObjectSet::weighted("a", objects, WeightFunction::Additive);
        let b = ObjectSet::uniform("b", 1.0, vec![
            Point::new(10.0, 80.0),
            Point::new(80.0, 15.0),
        ]);
        let q = MolqQuery::new(vec![a, b], bounds())
            .with_rule(StoppingRule::Either(1e-9, 50_000));
        let ssc = solve_ssc(&q).unwrap();
        let mbrb = solve_mbrb(&q).unwrap();
        prop_assert!(
            (ssc.cost - mbrb.cost).abs() < 1e-6 * ssc.cost.max(1.0),
            "mbrb {} vs ssc {}", mbrb.cost, ssc.cost
        );
    }
}
