//! End-to-end test of the serving system: a real HTTP server on an ephemeral
//! port, concurrent clients mixing `locate` / `solve` / `topk`, every answer
//! checked against direct library calls, then a graceful shutdown.

use molq::prelude::*;
use molq_geom::{Mbr, Point};
use molq_server::engine::{DatasetSpec, Engine};
use molq_server::http::{start, ServerConfig};
use molq_server::service::Service;
use molq_server::Client;
use std::sync::Arc;

fn pseudo_set(name: &str, w_t: f64, n: usize, seed: u64) -> ObjectSet {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as f64 / u32::MAX as f64
    };
    ObjectSet::uniform(
        name,
        w_t,
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect(),
    )
}

#[test]
fn concurrent_clients_get_library_exact_answers() {
    let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
    let sets = vec![
        pseudo_set("stations", 2.0, 12, 51),
        pseudo_set("churches", 1.0, 14, 52),
        pseudo_set("schools", 1.5, 10, 53),
    ];

    // Library-side ground truth: the same query, solved directly.
    let query = MolqQuery::new(sets.clone(), bounds)
        .with_rule(molq_fw::StoppingRule::Either(1e-9, 100_000));
    let direct_answer = solve_rrb(&query).unwrap();
    let direct_topk = solve_topk(&query, Boundary::Rrb, 3).unwrap();
    let oracle_index =
        MovdIndex::build(Movd::overlap_all(&query.sets, bounds, Boundary::Rrb).unwrap());

    // Server side: the same sets behind HTTP on an ephemeral port.
    let engine = Engine::new();
    engine
        .load_from_sets(
            DatasetSpec {
                bounds: Some(bounds),
                eps: 1e-9,
                ..DatasetSpec::new("default", Vec::new())
            },
            sets,
        )
        .unwrap();
    let service = Arc::new(Service::new(engine));
    let handle = start(
        Arc::clone(&service),
        ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let query = Arc::new(query);
    let oracle_index = Arc::new(oracle_index);
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let query = Arc::clone(&query);
            let oracle_index = Arc::clone(&oracle_index);
            let direct_answer = direct_answer.clone();
            let direct_topk = direct_topk.clone();
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..25usize {
                    match (t + i) % 3 {
                        0 => {
                            let x = ((t * 31 + i * 7) as f64 * 1.37 + 0.8) % 100.0;
                            let y = ((t * 17 + i * 13) as f64 * 2.11 + 0.4) % 100.0;
                            let resp = client.get(&format!("/locate?x={x}&y={y}")).unwrap();
                            assert_eq!(resp.status, 200, "{:?}", resp.body);
                            let at = resp.body.get("evaluated_at").unwrap();
                            let snapped = Point::new(
                                at.get("x").unwrap().as_f64().unwrap(),
                                at.get("y").unwrap().as_f64().unwrap(),
                            );
                            // The server's group cost at the evaluated point
                            // equals what MovdIndex::locate yields directly.
                            let ovr = oracle_index.locate(snapped).unwrap();
                            let oracle = molq_core::weights::wgd(snapped, &query, &ovr.pois);
                            let cost = resp.body.get("cost").unwrap().as_f64().unwrap();
                            assert!(
                                (cost - oracle).abs() <= 1e-9 * oracle.max(1.0),
                                "locate({x}, {y}): {cost} vs {oracle}"
                            );
                        }
                        1 => {
                            let resp = client.get("/solve").unwrap();
                            assert_eq!(resp.status, 200, "{:?}", resp.body);
                            let cost = resp.body.get("cost").unwrap().as_f64().unwrap();
                            assert!(
                                (cost - direct_answer.cost).abs() <= 1e-9 * direct_answer.cost,
                                "solve: {cost} vs {}",
                                direct_answer.cost
                            );
                            let loc = resp.body.get("location").unwrap();
                            let p = Point::new(
                                loc.get("x").unwrap().as_f64().unwrap(),
                                loc.get("y").unwrap().as_f64().unwrap(),
                            );
                            assert!(p.dist(direct_answer.location) <= 1e-6);
                        }
                        _ => {
                            let resp = client.get("/topk?k=3").unwrap();
                            assert_eq!(resp.status, 200, "{:?}", resp.body);
                            let got = resp.body.get("candidates").unwrap().as_arr().unwrap();
                            assert_eq!(got.len(), direct_topk.candidates.len());
                            for (g, want) in got.iter().zip(&direct_topk.candidates) {
                                let c = g.get("cost").unwrap().as_f64().unwrap();
                                assert!(
                                    (c - want.cost).abs() <= 1e-9 * want.cost.max(1.0),
                                    "topk: {c} vs {}",
                                    want.cost
                                );
                            }
                        }
                    }
                }
            });
        }
    });

    // All 100 requests were served and the locate cache saw traffic.
    let mut client = Client::connect(addr).unwrap();
    let stats = client.get("/stats").unwrap();
    let endpoints = stats.body.get("endpoints").unwrap();
    let count = |name: &str| {
        endpoints
            .get(name)
            .unwrap()
            .get("requests")
            .unwrap()
            .as_u64()
            .unwrap()
    };
    assert_eq!(count("locate") + count("solve") + count("topk"), 100);
    assert_eq!(
        endpoints
            .get("locate")
            .unwrap()
            .get("errors")
            .unwrap()
            .as_u64(),
        Some(0)
    );

    // Graceful shutdown: joins every worker; afterwards connections fail.
    handle.shutdown();
    assert!(
        molq_server::Client::connect(addr).is_err(),
        "listener should be closed after shutdown"
    );
}
