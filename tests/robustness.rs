//! Failure-injection and adversarial-input tests: the library must reject
//! invalid input with errors (never panic) and survive degenerate geometry.

use molq::geom::{Mbr, Point};
use molq::prelude::*;

fn bounds() -> Mbr {
    Mbr::new(0.0, 0.0, 1000.0, 1000.0)
}

#[test]
fn nan_locations_are_rejected() {
    let set = ObjectSet::uniform("bad", 1.0, vec![Point::new(f64::NAN, 5.0)]);
    let q = MolqQuery::new(vec![set], bounds());
    for result in [
        solve_rrb(&q).map(|_| ()),
        solve_mbrb(&q).map(|_| ()),
        solve_ssc(&q).map(|_| ()),
    ] {
        let err = result.unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }
}

#[test]
fn infinite_locations_are_rejected() {
    let set = ObjectSet::uniform("bad", 1.0, vec![Point::new(f64::INFINITY, 5.0)]);
    let q = MolqQuery::new(vec![set], bounds());
    assert!(solve_rrb(&q).is_err());
}

#[test]
fn zero_weight_objects_are_rejected() {
    let mut set = ObjectSet::uniform("bad", 1.0, vec![Point::new(1.0, 1.0)]);
    set.objects[0].w_t = 0.0;
    let q = MolqQuery::new(vec![set], bounds());
    let err = solve_rrb(&q).unwrap_err();
    assert!(err.to_string().contains("non-positive"), "{err}");
}

#[test]
fn empty_search_space_is_rejected() {
    let set = ObjectSet::uniform("a", 1.0, vec![Point::new(1.0, 1.0)]);
    let q = MolqQuery::new(vec![set], Mbr::EMPTY);
    assert!(solve_rrb(&q).is_err());
}

#[test]
fn degenerate_line_search_space_is_rejected() {
    let set = ObjectSet::uniform("a", 1.0, vec![Point::new(1.0, 1.0)]);
    let q = MolqQuery::new(vec![set], Mbr::new(0.0, 0.0, 10.0, 0.0));
    assert!(solve_rrb(&q).is_err());
}

#[test]
fn objects_outside_the_search_space_still_work() {
    // The paper's model allows POIs outside R (you can live near the edge of
    // town and shop beyond it).
    let a = ObjectSet::uniform(
        "in",
        1.0,
        vec![Point::new(100.0, 100.0), Point::new(900.0, 900.0)],
    );
    let b = ObjectSet::uniform(
        "out",
        1.0,
        vec![Point::new(-500.0, 500.0), Point::new(1500.0, 500.0)],
    );
    let q = MolqQuery::new(vec![a, b], bounds());
    let ssc = solve_ssc(&q).unwrap();
    let rrb = solve_rrb(&q).unwrap();
    assert!((ssc.cost - rrb.cost).abs() < 1e-6 * ssc.cost);
    assert!(bounds().contains(rrb.location));
}

#[test]
fn huge_coordinates_survive() {
    let shift = 1e7;
    let a = ObjectSet::uniform(
        "a",
        1.0,
        vec![
            Point::new(shift + 100.0, shift + 100.0),
            Point::new(shift + 900.0, shift + 800.0),
        ],
    );
    let b = ObjectSet::uniform(
        "b",
        2.0,
        vec![
            Point::new(shift + 300.0, shift + 700.0),
            Point::new(shift + 600.0, shift + 200.0),
        ],
    );
    let big_bounds = Mbr::new(shift, shift, shift + 1000.0, shift + 1000.0);
    let q = MolqQuery::new(vec![a, b], big_bounds);
    let ssc = solve_ssc(&q).unwrap();
    let rrb = solve_rrb(&q).unwrap();
    assert!(
        (ssc.cost - rrb.cost).abs() < 1e-6 * ssc.cost.max(1.0),
        "ssc {} rrb {}",
        ssc.cost,
        rrb.cost
    );
}

#[test]
fn tiny_search_space_survives() {
    let a = ObjectSet::uniform(
        "a",
        1.0,
        vec![Point::new(0.0001, 0.0002), Point::new(0.0009, 0.0007)],
    );
    let q = MolqQuery::new(vec![a], Mbr::new(0.0, 0.0, 1e-3, 1e-3));
    let rrb = solve_rrb(&q).unwrap();
    assert!(rrb.cost < 1e-9);
}

#[test]
fn identical_objects_across_types_are_fine() {
    // Duplicates *within* a set are rejected; the same location in two
    // different sets is legitimate (a school next to a bus stop).
    let p = Point::new(500.0, 500.0);
    let a = ObjectSet::uniform("a", 1.0, vec![p, Point::new(100.0, 100.0)]);
    let b = ObjectSet::uniform("b", 2.0, vec![p, Point::new(900.0, 900.0)]);
    let q = MolqQuery::new(vec![a, b], bounds());
    let rrb = solve_rrb(&q).unwrap();
    // Both types satisfied at p with zero distance.
    assert!(rrb.cost < 1e-9);
    assert!(rrb.location.dist(p) < 1e-6);
}

#[test]
fn many_collinear_duplicat_free_sites() {
    // A degenerate single-row "city": everything on one street.
    let a = ObjectSet::uniform(
        "a",
        1.0,
        (0..50)
            .map(|i| Point::new(10.0 + i as f64 * 19.0, 500.0))
            .collect(),
    );
    let b = ObjectSet::uniform(
        "b",
        1.0,
        (0..50)
            .map(|i| Point::new(15.0 + i as f64 * 19.0, 500.0))
            .collect(),
    );
    let q = MolqQuery::new(vec![a, b], bounds());
    let rrb = solve_rrb(&q).unwrap();
    let mbrb = solve_mbrb(&q).unwrap();
    assert!((rrb.cost - mbrb.cost).abs() < 1e-6 * rrb.cost.max(1.0));
}

#[test]
fn stopping_rule_iteration_cap_is_honoured() {
    // Even with an absurdly tight ε, the iteration cap terminates the solve.
    let q = standard_query(4, 5, bounds(), 3).with_rule(StoppingRule::Either(1e-300, 50));
    let rrb = solve_rrb(&q).unwrap();
    assert!(rrb.cost.is_finite());
}
