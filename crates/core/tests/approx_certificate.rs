//! Property tests for the tiered build pipeline's (1+ε) certificate.
//!
//! Over random small multi-layer inputs: the approximate solve cost is
//! bracketed by `exact_opt ≤ approx_cost ≤ (1+ε)·exact_opt` for every
//! ε ∈ {0.5, 0.1, 0.01}, the measured relative error of the reported
//! location (via the MWGD oracle) never exceeds ε, and ε → 0 degenerates
//! to the exact pipeline bit-for-bit.

use molq_core::prelude::*;
use proptest::prelude::*;

/// Distinct jittered-grid points so layers never contain duplicate
/// generators (which the Voronoi substrate rejects).
fn grid_points(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::btree_set((0i32..24, 0i32..24), min..=max).prop_map(|cells| {
        cells
            .into_iter()
            .map(|(i, j)| Point::new(3.0 + i as f64 * 4.0, 3.0 + j as f64 * 4.0))
            .collect()
    })
}

fn arb_sets() -> impl Strategy<Value = Vec<ObjectSet>> {
    prop::collection::vec((grid_points(2, 8), 1u32..=4), 2..=3).prop_map(|layers| {
        layers
            .into_iter()
            .enumerate()
            .map(|(i, (pts, w))| ObjectSet::uniform(&format!("t{i}"), w as f64, pts))
            .collect()
    })
}

use molq_geom::{Mbr, Point};

const BOUNDS: (f64, f64, f64, f64) = (0.0, 0.0, 100.0, 100.0);

fn bounds() -> Mbr {
    Mbr::new(BOUNDS.0, BOUNDS.1, BOUNDS.2, BOUNDS.3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn approx_cost_is_bracketed_by_the_certificate(sets in arb_sets()) {
        let query = MolqQuery::new(sets.clone(), bounds());
        let (exact_movd, exact_meta) = build_movd(
            &sets, bounds(), Boundary::Rrb, &BuildPlan::exact(), ExecConfig::serial(),
        ).unwrap();
        prop_assert_eq!(exact_meta.certified_factor(), 1.0);
        let exact = solve_prebuilt(&query, &exact_movd).unwrap();

        for epsilon in [0.5, 0.1, 0.01] {
            let (approx_movd, meta) = build_movd(
                &sets, bounds(), Boundary::Rrb, &BuildPlan::approx(epsilon), ExecConfig::serial(),
            ).unwrap();
            prop_assert!(meta.mode.is_approx());
            prop_assert!(meta.fully_certified(), "ε = {epsilon}: forced leaves");
            let approx = solve_prebuilt(&query, &approx_movd).unwrap();

            // The certificate, with a hair of Fermat–Weber stopping slack:
            // the approximate optimum can never beat the exact one, and can
            // never be worse than (1+ε) times it.
            let slack = 1.0 + 1e-6;
            prop_assert!(
                approx.cost >= exact.cost / slack,
                "ε = {epsilon}: approx {} beat exact {}", approx.cost, exact.cost,
            );
            prop_assert!(
                approx.cost <= (1.0 + epsilon) * exact.cost * slack,
                "ε = {epsilon}: approx {} exceeds (1+ε)·{}", approx.cost, exact.cost,
            );

            // The reported location is a real point whose true aggregate
            // cost measures the realized error — also ≤ ε.
            let realized = mwgd(approx.location, &query);
            prop_assert!(
                realized <= (1.0 + epsilon) * exact.cost * slack,
                "ε = {epsilon}: realized {} exceeds the bound", realized,
            );
        }
    }

    #[test]
    fn epsilon_zero_is_bit_identical_to_the_exact_pipeline(sets in arb_sets()) {
        let query = MolqQuery::new(sets.clone(), bounds());
        for boundary in [Boundary::Rrb, Boundary::Mbrb] {
            let direct = Movd::overlap_all_with(
                &sets, bounds(), boundary, ExecConfig::serial(),
            ).unwrap();
            let (piped, meta) = build_movd(
                &sets, bounds(), boundary, &BuildPlan::approx(0.0), ExecConfig::serial(),
            ).unwrap();
            prop_assert!(!meta.mode.is_approx());
            prop_assert_eq!(meta, BuildMeta::exact());
            prop_assert!(movd_bits_eq(&piped, &direct), "{boundary:?}");

            let a = solve_prebuilt(&query, &direct).unwrap();
            let b = solve_prebuilt(&query, &piped).unwrap();
            prop_assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            prop_assert_eq!(a.location.x.to_bits(), b.location.x.to_bits());
            prop_assert_eq!(a.location.y.to_bits(), b.location.y.to_bits());
        }
    }
}
