//! Thread-count determinism: every scan-layer answer must be bit-identical
//! at `threads ∈ {1, 2, 8}`, and the Cancelled partial-progress path must
//! keep its counters monotone and ≤ total at any thread count.

use molq_core::prelude::*;
use molq_fw::StoppingRule;
use molq_geom::{Mbr, Point};
use std::time::{Duration, Instant};

fn pseudo_set(name: &str, w_t: f64, n: usize, seed: u64) -> ObjectSet {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as f64 / u32::MAX as f64
    };
    ObjectSet::uniform(
        name,
        w_t,
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect(),
    )
}

fn query() -> MolqQuery {
    MolqQuery::new(
        vec![
            pseudo_set("a", 2.0, 24, 901),
            pseudo_set("b", 1.0, 26, 902),
            pseudo_set("c", 1.5, 22, 903),
        ],
        Mbr::new(0.0, 0.0, 100.0, 100.0),
    )
    .with_rule(StoppingRule::Either(1e-9, 50_000))
}

const THREADS: [usize; 3] = [1, 2, 8];

fn bits(p: Point) -> (u64, u64) {
    (p.x.to_bits(), p.y.to_bits())
}

#[test]
fn solve_is_bit_identical_across_thread_counts() {
    let q = query();
    let baseline = solve_movd_with(&q, Boundary::Rrb, ExecConfig::serial()).unwrap();
    for threads in THREADS {
        let ans = solve_movd_with(&q, Boundary::Rrb, ExecConfig::new(threads)).unwrap();
        assert_eq!(bits(ans.location), bits(baseline.location), "{threads}");
        assert_eq!(ans.cost.to_bits(), baseline.cost.to_bits(), "{threads}");
        assert_eq!(ans.ovr_count, baseline.ovr_count, "{threads}");
        assert_eq!(ans.movd_bytes, baseline.movd_bytes, "{threads}");
    }
}

#[test]
fn prebuilt_solve_is_bit_identical_across_thread_counts() {
    let q = query();
    let movd =
        Movd::overlap_all_with(&q.sets, q.bounds, Boundary::Rrb, ExecConfig::serial()).unwrap();
    let open = CancelToken::new();
    let baseline = solve_prebuilt_cancellable_with(&q, &movd, &open, ExecConfig::serial()).unwrap();
    for threads in THREADS {
        let ans =
            solve_prebuilt_cancellable_with(&q, &movd, &open, ExecConfig::new(threads)).unwrap();
        assert_eq!(bits(ans.location), bits(baseline.location), "{threads}");
        assert_eq!(ans.cost.to_bits(), baseline.cost.to_bits(), "{threads}");
    }
}

#[test]
fn rebuild_is_bit_identical_across_thread_counts() {
    let q = query();
    for mode in [Boundary::Rrb, Boundary::Mbrb] {
        let baseline =
            Movd::overlap_all_with(&q.sets, q.bounds, mode, ExecConfig::serial()).unwrap();
        for threads in THREADS {
            let movd =
                Movd::overlap_all_with(&q.sets, q.bounds, mode, ExecConfig::new(threads)).unwrap();
            assert_eq!(movd.ovrs, baseline.ovrs, "{mode:?} at {threads} threads");
        }
    }
}

#[test]
fn topk_is_bit_identical_across_thread_counts() {
    let q = query();
    let baseline = solve_topk_with(&q, Boundary::Rrb, 5, ExecConfig::serial()).unwrap();
    assert_eq!(baseline.candidates.len(), 5);
    for threads in THREADS {
        let ans = solve_topk_with(&q, Boundary::Rrb, 5, ExecConfig::new(threads)).unwrap();
        assert_eq!(ans.candidates.len(), baseline.candidates.len(), "{threads}");
        for (got, want) in ans.candidates.iter().zip(baseline.candidates.iter()) {
            assert_eq!(bits(got.location), bits(want.location), "{threads}");
            assert_eq!(got.cost.to_bits(), want.cost.to_bits(), "{threads}");
            assert_eq!(got.group, want.group, "{threads}");
        }
    }
}

#[test]
fn ssc_is_bit_identical_across_thread_counts() {
    let q = MolqQuery::new(
        vec![
            pseudo_set("a", 2.0, 9, 911),
            pseudo_set("b", 1.0, 8, 912),
            pseudo_set("c", 1.5, 7, 913),
        ],
        Mbr::new(0.0, 0.0, 100.0, 100.0),
    )
    .with_rule(StoppingRule::Either(1e-9, 50_000));
    let baseline = solve_ssc_with(&q, ExecConfig::serial()).unwrap();
    for threads in THREADS {
        let ans = solve_ssc_with(&q, ExecConfig::new(threads)).unwrap();
        assert_eq!(bits(ans.location), bits(baseline.location), "{threads}");
        assert_eq!(ans.cost.to_bits(), baseline.cost.to_bits(), "{threads}");
        assert_eq!(ans.group, baseline.group, "{threads}");
        assert_eq!(ans.combinations, baseline.combinations, "{threads}");
    }
}

#[test]
fn weighted_rrb_cancellable_matches_plain_and_cancels() {
    let q = query();
    let plain = solve_weighted_rrb(&q, 64).unwrap();
    for threads in THREADS {
        let open = CancelToken::new();
        let ans = solve_weighted_rrb_with(&q, 64, &open, ExecConfig::new(threads)).unwrap();
        assert_eq!(bits(ans.location), bits(plain.location), "{threads}");
        assert_eq!(ans.cost.to_bits(), plain.cost.to_bits(), "{threads}");

        // A pre-cancelled token stops before any work, at any thread count.
        let token = CancelToken::new();
        token.cancel();
        match solve_weighted_rrb_with(&q, 64, &token, ExecConfig::new(threads)) {
            Err(MolqError::Cancelled { completed, total }) => {
                assert_eq!(completed, 0, "{threads}");
                assert!(total > 0, "{threads}");
            }
            other => panic!("{threads}: expected Cancelled, got {other:?}"),
        }
    }
}

#[test]
fn cancelled_scans_report_monotone_progress_at_any_thread_count() {
    let q = query();
    let movd = Movd::overlap_all(&q.sets, q.bounds, Boundary::Rrb).unwrap();
    for threads in THREADS {
        let exec = ExecConfig::new(threads);

        // Pre-cancelled: zero progress, exact totals.
        let token = CancelToken::new();
        token.cancel();
        match solve_prebuilt_cancellable_with(&q, &movd, &token, exec) {
            Err(MolqError::Cancelled { completed, total }) => {
                assert_eq!(completed, 0, "{threads}");
                assert_eq!(total, movd.len(), "{threads}");
            }
            other => panic!("{threads}: expected Cancelled, got {other:?}"),
        }
        match solve_topk_prebuilt_cancellable_with(&q, &movd, 3, &token, exec) {
            Err(MolqError::Cancelled { completed, total }) => {
                assert_eq!(completed, 0, "{threads}");
                assert_eq!(total, movd.len(), "{threads}");
            }
            other => panic!("{threads}: expected Cancelled, got {other:?}"),
        }

        // Cancelled mid-scan by an expired deadline with a per-checkpoint
        // delay: progress stays within [0, total].
        let expiring = CancelToken::with_deadline(Instant::now() + Duration::from_micros(200))
            .with_checkpoint_delay(Duration::from_micros(100));
        match solve_prebuilt_cancellable_with(&q, &movd, &expiring, exec) {
            Err(MolqError::Cancelled { completed, total }) => {
                assert_eq!(total, movd.len(), "{threads}");
                assert!(completed <= total, "{threads}: {completed}/{total}");
            }
            Ok(_) => {} // the scan can win the race on a fast machine
            other => panic!("{threads}: unexpected {other:?}"),
        }
    }
}
