//! The parallel, cancellable execution layer behind every per-OVR scan.
//!
//! The Optimizer (Algorithm 5), the top-k scan, SSC's odometer scan, and the
//! server's `locate` disambiguation are all the same shape of work: evaluate
//! one independent problem per group under a shared, monotonically tightening
//! cost bound, checking a [`CancelToken`] as they go. [`GroupScan`] owns that
//! shape once — chunked iteration over the group indices, per-worker
//! [`BatchStats`] accumulation with a deterministic merge, cooperative
//! cancellation with the same `completed/total` partial-progress semantics as
//! the old sequential loops, and a scoped-thread pool (std only, modeled on
//! `OrdinaryVoronoi::build_parallel`). [`SharedBound`] is the lock-free cost
//! bound the workers share: an `AtomicU64` holding `f64` bits, tightened with
//! a compare-and-swap loop.
//!
//! # Determinism contract
//!
//! A scan's *answer* must not depend on the thread count. Two properties of
//! the cost-bound machinery make that achievable:
//!
//! * a Solved outcome's `(cost, location)` bits are independent of the bound
//!   the group was solved under — the bound only decides whether a group is
//!   skipped (prefiltered/pruned), never what its solution is;
//! * the globally best group can never be skipped, because every lower bound
//!   used for skipping is ≤ its own optimum, which is ≤ any value the shared
//!   bound can take.
//!
//! So callers emit every candidate whose cost is within the bound they read,
//! and reduce **by total order on `(cost, group index)`** rather than arrival
//! order. `threads = 1` runs the exact old sequential loop (per-item
//! checkpoints, same counters); any other thread count produces bit-identical
//! answers for inputs in general position (distinct group optima — with
//! exactly tied `f64` costs, which group's identical-cost location is
//! reported may differ). Work *counters* ([`BatchStats`]) are exact in serial
//! mode and scheduling-dependent telemetry in parallel mode, because how many
//! groups the bound skips depends on the order groups complete.

use crate::cancel::CancelToken;
use crate::error::MolqError;
use molq_fw::BatchStats;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Environment variable overriding the default thread count everywhere a
/// caller does not configure one explicitly (`ExecConfig::default`). CI runs
/// the full test suite under both `MOLQ_THREADS=1` and `MOLQ_THREADS=4` so a
/// serial/parallel divergence fails the build.
pub const THREADS_ENV: &str = "MOLQ_THREADS";

/// Below this many groups a parallel scan cannot recoup the scoped-pool
/// spawn cost, so [`GroupScan::run`] stays sequential regardless of the
/// configured thread count.
const MIN_PARALLEL_GROUPS: usize = 192;

/// Smallest chunk a worker claims: amortizes the shared-cursor fetch and the
/// per-chunk cancellation checkpoint.
const MIN_CHUNK: usize = 16;

/// Largest chunk a worker claims: bounds cancellation latency and keeps the
/// tail of a scan balanced.
const MAX_CHUNK: usize = 256;

/// Execution configuration for [`GroupScan`] (and the parallel MOVD
/// rebuild): how many worker threads a scan may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads (≥ 1). `1` is the exact sequential code path.
    pub threads: usize,
}

impl ExecConfig {
    /// Single-threaded execution — the exact old sequential code path.
    pub const fn serial() -> ExecConfig {
        ExecConfig { threads: 1 }
    }

    /// Explicit thread count (clamped to ≥ 1).
    pub fn new(threads: usize) -> ExecConfig {
        ExecConfig {
            threads: threads.max(1),
        }
    }

    /// One thread per available hardware core.
    pub fn auto() -> ExecConfig {
        ExecConfig::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The thread count requested via the [`THREADS_ENV`] environment
    /// variable, if set to a positive integer.
    pub fn from_env() -> Option<ExecConfig> {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .map(ExecConfig::new)
    }
}

/// [`THREADS_ENV`] when set, otherwise serial — library callers opt into
/// parallelism explicitly; the server defaults to [`ExecConfig::auto`].
impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig::from_env().unwrap_or(ExecConfig::serial())
    }
}

/// A lock-free shared cost bound: `f64` bits in an `AtomicU64`, tightened
/// with a compare-and-swap min loop. Proposals compare by numeric value, so
/// the bound is monotonically non-increasing; `NaN` proposals are rejected.
#[derive(Debug)]
pub struct SharedBound(AtomicU64);

impl SharedBound {
    /// A bound starting at `initial` (typically `f64::INFINITY`).
    pub fn new(initial: f64) -> SharedBound {
        SharedBound(AtomicU64::new(initial.to_bits()))
    }

    /// The current bound value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Tightens the bound to `value` if it improves on the current value.
    /// Returns `true` when the stored bound was lowered.
    pub fn propose(&self, value: f64) -> bool {
        if value.is_nan() {
            return false;
        }
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            if value >= f64::from_bits(current) {
                return false;
            }
            match self.0.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }
}

/// What a completed scan hands back: the emitted items and the merged work
/// counters.
#[derive(Debug)]
pub struct ScanOutput<T> {
    /// `(group index, emitted value)` pairs, ascending by group index.
    pub items: Vec<(usize, T)>,
    /// Work counters summed over all workers (exact in serial mode,
    /// scheduling-dependent in parallel mode — see the module docs).
    pub stats: BatchStats,
}

/// A cancellable scan over `0..total` group indices.
///
/// The visitor runs once per index and returns `Some(value)` to emit that
/// group's candidate or `None` to emit nothing. In serial mode
/// (`threads == 1`) the scan is the exact old per-site loop: one checkpoint
/// per group, failing with `Cancelled { completed: i, total }`. In parallel
/// mode, workers claim fixed-size chunks from a shared cursor, checkpoint
/// once per chunk, and keep the `completed` counter monotone and ≤ `total`.
#[derive(Debug)]
pub struct GroupScan<'a> {
    total: usize,
    config: ExecConfig,
    cancel: &'a CancelToken,
}

impl<'a> GroupScan<'a> {
    /// A scan over `0..total` under `config`, checking `cancel`
    /// cooperatively.
    pub fn new(total: usize, config: ExecConfig, cancel: &'a CancelToken) -> GroupScan<'a> {
        GroupScan {
            total,
            config,
            cancel,
        }
    }

    /// Runs the scan. Returns the emitted items (ascending by group index)
    /// and merged stats, or [`MolqError::Cancelled`] with partial-progress
    /// counters when the token fires first.
    pub fn run<T, F>(&self, visit: F) -> Result<ScanOutput<T>, MolqError>
    where
        T: Send,
        F: Fn(usize, &mut BatchStats) -> Option<T> + Sync,
    {
        // Spawning a scoped pool costs tens of microseconds; on tiny group
        // sets that overhead dominates the work itself (the BENCH_PR5
        // regression: 2–8 threads slower than 1). Below the work threshold
        // (and always at one effective worker — the configured thread count
        // capped at the host's cores, since the scan is CPU-bound and
        // oversubscription only adds overhead) run the exact sequential loop.
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let workers = self.config.threads.min(cores);
        if workers <= 1 || self.total < MIN_PARALLEL_GROUPS.max(2 * workers) {
            return self.run_serial(visit);
        }
        self.run_parallel(visit)
    }

    fn run_serial<T, F>(&self, visit: F) -> Result<ScanOutput<T>, MolqError>
    where
        F: Fn(usize, &mut BatchStats) -> Option<T>,
    {
        let mut items = Vec::new();
        let mut stats = BatchStats::default();
        for i in 0..self.total {
            if self.cancel.checkpoint() {
                return Err(MolqError::Cancelled {
                    completed: i,
                    total: self.total,
                });
            }
            if let Some(value) = visit(i, &mut stats) {
                items.push((i, value));
            }
        }
        Ok(ScanOutput { items, stats })
    }

    fn run_parallel<T, F>(&self, visit: F) -> Result<ScanOutput<T>, MolqError>
    where
        T: Send,
        F: Fn(usize, &mut BatchStats) -> Option<T> + Sync,
    {
        let total = self.total;
        // Same cores cap as `run` (which guarantees workers >= 2 here):
        // threads beyond the core count only add scheduling overhead, and
        // results are identical at any worker count.
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let workers = self.config.threads.min(cores).min(total).max(1);
        // Adaptive chunks: ~4 claims per worker keeps the pool balanced, the
        // floor amortizes the claim-cursor and checkpoint cost over enough
        // groups to matter, and the ceiling keeps cancellation latency low
        // on huge scans.
        let chunk = (total / (workers * 4)).clamp(MIN_CHUNK, MAX_CHUNK);
        let cursor = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let visit = &visit;
        let cancel = self.cancel;

        let mut per_worker: Vec<(Vec<(usize, T)>, BatchStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut items: Vec<(usize, T)> = Vec::new();
                        let mut stats = BatchStats::default();
                        loop {
                            if cancelled.load(Ordering::Relaxed) {
                                break;
                            }
                            if cancel.checkpoint() {
                                cancelled.store(true, Ordering::Relaxed);
                                break;
                            }
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= total {
                                break;
                            }
                            let end = (start + chunk).min(total);
                            for i in start..end {
                                if let Some(value) = visit(i, &mut stats) {
                                    items.push((i, value));
                                }
                            }
                            completed.fetch_add(end - start, Ordering::Relaxed);
                        }
                        (items, stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked"))
                .collect()
        });

        if cancelled.load(Ordering::Relaxed) {
            return Err(MolqError::Cancelled {
                completed: completed.load(Ordering::Relaxed).min(total),
                total,
            });
        }
        let mut items = Vec::with_capacity(per_worker.iter().map(|(v, _)| v.len()).sum());
        let mut stats = BatchStats::default();
        for (worker_items, worker_stats) in per_worker.drain(..) {
            items.extend(worker_items);
            stats.exact_groups += worker_stats.exact_groups;
            stats.prefiltered_groups += worker_stats.prefiltered_groups;
            stats.pruned_groups += worker_stats.pruned_groups;
            stats.iterations += worker_stats.iterations;
        }
        items.sort_unstable_by_key(|&(i, _)| i);
        Ok(ScanOutput { items, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configs() -> [ExecConfig; 3] {
        [ExecConfig::serial(), ExecConfig::new(2), ExecConfig::new(8)]
    }

    #[test]
    fn scan_emits_every_index_in_order() {
        for config in configs() {
            let never = CancelToken::never();
            let scan = GroupScan::new(100, config, &never);
            let out = scan.run(|i, _| Some(i * 3)).unwrap();
            assert_eq!(out.items.len(), 100, "{config:?}");
            for (expect, &(i, v)) in out.items.iter().enumerate() {
                assert_eq!((i, v), (expect, expect * 3));
            }
        }
    }

    #[test]
    fn scan_filters_and_counts_stats() {
        for config in configs() {
            let never = CancelToken::never();
            let scan = GroupScan::new(64, config, &never);
            let out = scan
                .run(|i, stats| {
                    stats.iterations += 1;
                    (i % 2 == 0).then_some(i)
                })
                .unwrap();
            assert_eq!(out.items.len(), 32, "{config:?}");
            assert!(out.items.iter().all(|&(i, v)| i == v && i % 2 == 0));
            assert_eq!(out.stats.iterations, 64, "{config:?}");
        }
    }

    #[test]
    fn empty_scan_returns_empty_output() {
        for config in configs() {
            let out = GroupScan::new(0, config, &CancelToken::never())
                .run(|i, _| Some(i))
                .unwrap();
            assert!(out.items.is_empty());
            assert_eq!(out.stats, BatchStats::default());
        }
    }

    #[test]
    fn precancelled_token_reports_zero_progress() {
        for config in configs() {
            let token = CancelToken::new();
            token.cancel();
            let scan = GroupScan::new(50, config, &token);
            match scan.run(|i, _| Some(i)) {
                Err(MolqError::Cancelled { completed, total }) => {
                    assert_eq!(completed, 0, "{config:?}");
                    assert_eq!(total, 50);
                }
                other => panic!("{config:?}: expected Cancelled, got {other:?}"),
            }
        }
    }

    #[test]
    fn midway_cancellation_keeps_counters_sane() {
        for config in configs() {
            let token = CancelToken::new();
            let fired = AtomicUsize::new(0);
            let scan = GroupScan::new(1000, config, &token);
            let result = scan.run(|i, _| {
                if fired.fetch_add(1, Ordering::Relaxed) == 100 {
                    token.cancel();
                }
                Some(i)
            });
            match result {
                Err(MolqError::Cancelled { completed, total }) => {
                    assert_eq!(total, 1000);
                    assert!(completed <= total, "{config:?}: {completed}/{total}");
                }
                other => panic!("{config:?}: expected Cancelled, got {other:?}"),
            }
        }
    }

    #[test]
    fn shared_bound_only_tightens() {
        let b = SharedBound::new(f64::INFINITY);
        assert_eq!(b.get(), f64::INFINITY);
        assert!(b.propose(10.0));
        assert!(!b.propose(11.0));
        assert_eq!(b.get(), 10.0);
        assert!(b.propose(2.5));
        assert_eq!(b.get(), 2.5);
        assert!(!b.propose(2.5));
        assert!(!b.propose(f64::NAN));
        assert_eq!(b.get(), 2.5);
    }

    #[test]
    fn shared_bound_converges_under_contention() {
        let b = SharedBound::new(f64::INFINITY);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let b = &b;
                scope.spawn(move || {
                    for i in 0..1000 {
                        b.propose(1.0 + ((t * 1000 + i) % 997) as f64);
                    }
                });
            }
        });
        assert_eq!(b.get(), 1.0);
    }

    #[test]
    fn env_config_parses_positive_integers() {
        // Don't touch the process environment (other tests run in parallel);
        // exercise the parse contract through new()/serial() instead.
        assert_eq!(ExecConfig::new(0).threads, 1);
        assert_eq!(ExecConfig::new(6).threads, 6);
        assert_eq!(ExecConfig::serial().threads, 1);
        assert!(ExecConfig::auto().threads >= 1);
    }
}
