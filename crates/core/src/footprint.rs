//! Deep memory accounting for MOVD structures.
//!
//! The paper's memory experiments (Fig 13, Fig 14(d)) compare how much the
//! two boundary representations store: RRB records every polygon vertex,
//! MBRB only two points per region but for more regions. This trait models
//! exactly that: payload bytes of coordinates, object references, and
//! container headers, independent of allocator slack.

use crate::movd::{Movd, Ovr};
use crate::region::Region;

/// Size of a `Vec` header (pointer + length + capacity).
const VEC_HEADER: usize = 24;

/// Deep payload size in bytes.
pub trait Footprint {
    /// Bytes needed to store the value's payload.
    fn footprint_bytes(&self) -> usize;
}

impl Footprint for Region {
    fn footprint_bytes(&self) -> usize {
        match self {
            // Polygon: vertex coordinates + Vec header.
            Region::Convex(p) => p.coord_count() * std::mem::size_of::<f64>() + VEC_HEADER,
            // MBR: exactly two points (four coordinates), stored inline.
            Region::Rect(_) => 4 * std::mem::size_of::<f64>(),
            // Multi-polygon: every component's vertices plus headers.
            Region::General(ps) => {
                ps.iter()
                    .map(|p| p.coord_count() * std::mem::size_of::<f64>() + VEC_HEADER)
                    .sum::<usize>()
                    + VEC_HEADER
            }
        }
    }
}

impl Footprint for Ovr {
    fn footprint_bytes(&self) -> usize {
        self.region.footprint_bytes()
            + self.pois.len() * std::mem::size_of::<crate::object::ObjectRef>()
            + VEC_HEADER
    }
}

impl Footprint for Movd {
    fn footprint_bytes(&self) -> usize {
        self.ovrs
            .iter()
            .map(Footprint::footprint_bytes)
            .sum::<usize>()
            + VEC_HEADER
            + 4 * std::mem::size_of::<f64>() // bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectRef;
    use molq_geom::{ConvexPolygon, Mbr};

    #[test]
    fn rect_is_cheaper_than_polygon_per_region() {
        let rect = Region::Rect(Mbr::new(0.0, 0.0, 1.0, 1.0));
        let poly = Region::Convex(ConvexPolygon::from_mbr(&Mbr::new(0.0, 0.0, 1.0, 1.0)));
        assert!(rect.footprint_bytes() < poly.footprint_bytes());
    }

    #[test]
    fn ovr_accounts_pois() {
        let mk = |n_pois: usize| Ovr {
            region: Region::Rect(Mbr::new(0.0, 0.0, 1.0, 1.0)),
            pois: (0..n_pois)
                .map(|i| ObjectRef { set: 0, index: i })
                .collect(),
        };
        assert!(mk(5).footprint_bytes() > mk(1).footprint_bytes());
    }

    #[test]
    fn movd_sums_ovrs() {
        let ovr = Ovr {
            region: Region::Rect(Mbr::new(0.0, 0.0, 1.0, 1.0)),
            pois: vec![ObjectRef { set: 0, index: 0 }],
        };
        let one = Movd {
            bounds: Mbr::new(0.0, 0.0, 1.0, 1.0),
            ovrs: vec![ovr.clone()],
        };
        let two = Movd {
            bounds: Mbr::new(0.0, 0.0, 1.0, 1.0),
            ovrs: vec![ovr.clone(), ovr],
        };
        assert!(two.footprint_bytes() > one.footprint_bytes());
    }
}
