//! The tiered, mode-aware MOVD build pipeline.
//!
//! Construction used to be a single hard-wired exact path
//! ([`Movd::overlap_all_with`]: per-set basic diagrams folded with the ⊕
//! plane sweep). This module stages it behind a [`BuildPlan`] that every
//! layer of the system threads through:
//!
//! * [`BuildMode::Exact`] runs the historical pipeline unchanged — its
//!   output is **bit-identical** to a direct [`Movd::overlap_all_with`]
//!   call, so every determinism suite and stored snapshot stays valid.
//! * [`BuildMode::Approx`] skips both exact clipping and the ⊕ sweep
//!   entirely: one joint quadtree (`molq_voronoi::approx`) is refined over
//!   all object sets until every leaf's per-type dominant object is
//!   certified within a `(1+ε)` weighted-distance factor, and the leaves
//!   are coalesced by their object group directly into OVRs. Construction
//!   is near-linear in the object count — the mode that scales to ~10⁶
//!   objects per layer.
//!
//! # The certified cost bound
//!
//! In an approximate MOVD every point `x` of a leaf satisfies
//! `WD(x, owner_t) ≤ (1+ε)·min_p WD(x, p)` per type `t` (see
//! `molq_voronoi::approx` for the certificate), so summing over types:
//! `WGD(x, G_leaf) ≤ (1+ε)·MWGD(x)`. The optimizer minimizes true group
//! costs over all groups, hence for the reported answer
//!
//! ```text
//! exact_opt ≤ approx_cost ≤ (1+ε) · exact_opt
//! ```
//!
//! (left: any group's WGD dominates MWGD pointwise; right: instantiate the
//! leaf certificate at the exact optimum's location). The factor is carried
//! as [`BuildMeta::certified_factor`] into answers, snapshots, and `/stats`.
//!
//! The per-type certificate is stated for the object-weight function `ς^o`;
//! it transfers to full `WD` for per-set-uniform type weights under both
//! `ς^t` families (multiplying by `w^t` preserves ratios; adding `w^t ≥ 0`
//! only slackens them). Sets with per-object type weights fall back to the
//! same nearest-by-`ς^o` group semantics the exact pipeline uses.

use crate::error::MolqError;
use crate::exec::ExecConfig;
use crate::movd::{Movd, Ovr};
use crate::object::{ObjectRef, ObjectSet};
use crate::region::{Boundary, Region};
use crate::weights::WeightFunction;
use molq_geom::Mbr;
use molq_voronoi::{refine_multi, ApproxConfig, ApproxLayer, WeightScheme, WeightedSite};
use std::collections::HashMap;

/// Which construction pipeline a dataset is built with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BuildMode {
    /// Exact clipping + plane-sweep overlap (the historical pipeline).
    Exact,
    /// Joint quadtree refinement with a `(1+ε)` dominance certificate.
    Approx {
        /// The approximation parameter ε > 0.
        epsilon: f64,
    },
}

impl BuildMode {
    /// Normalizes an optional ε into a mode: `None` or ε ≤ 0 is exact (so
    /// ε → 0 degenerates to the bit-identical exact pipeline), anything
    /// positive is approximate.
    pub fn from_epsilon(epsilon: Option<f64>) -> Self {
        match epsilon {
            Some(e) if e > 0.0 && e.is_finite() => BuildMode::Approx { epsilon: e },
            _ => BuildMode::Exact,
        }
    }

    /// The mode's ε (0 for exact).
    pub fn epsilon(&self) -> f64 {
        match self {
            BuildMode::Exact => 0.0,
            BuildMode::Approx { epsilon } => *epsilon,
        }
    }

    /// `true` for the approximate mode.
    pub fn is_approx(&self) -> bool {
        matches!(self, BuildMode::Approx { .. })
    }

    /// The certified approximation factor: answers cost at most this
    /// multiple of the true optimum (1 for exact).
    pub fn certified_factor(&self) -> f64 {
        1.0 + self.epsilon()
    }

    /// Bit-exact mode equality (ε compared by IEEE-754 bits) — the identity
    /// used to decide whether a stored snapshot matches a requested build.
    pub fn bits_eq(&self, other: &BuildMode) -> bool {
        match (self, other) {
            (BuildMode::Exact, BuildMode::Exact) => true,
            (BuildMode::Approx { epsilon: a }, BuildMode::Approx { epsilon: b }) => {
                a.to_bits() == b.to_bits()
            }
            _ => false,
        }
    }
}

/// A staged build request: the mode plus the refinement safety caps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildPlan {
    /// The construction mode.
    pub mode: BuildMode,
    /// Quadtree depth cap (approximate mode only).
    pub max_depth: u32,
    /// Visited-cell cap (approximate mode only).
    pub max_cells: usize,
}

impl BuildPlan {
    /// The exact plan.
    pub fn exact() -> Self {
        BuildPlan::for_mode(BuildMode::Exact)
    }

    /// A plan from an optional ε (normalized via [`BuildMode::from_epsilon`]).
    pub fn approx(epsilon: f64) -> Self {
        BuildPlan::for_mode(BuildMode::from_epsilon(Some(epsilon)))
    }

    /// A plan for a mode with the default caps.
    pub fn for_mode(mode: BuildMode) -> Self {
        BuildPlan {
            mode,
            max_depth: 40,
            max_cells: 1 << 30,
        }
    }
}

/// What a build produced: the mode it ran, its certified factor, and the
/// refinement counters (all zero for exact builds). Persisted alongside the
/// diagram so a restored snapshot knows how it was built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildMeta {
    /// The mode the diagram was built with.
    pub mode: BuildMode,
    /// Quadtree leaves emitted (0 for exact builds).
    pub leaves: u64,
    /// Quadtree cells visited (0 for exact builds).
    pub cells_visited: u64,
    /// Deepest refinement level reached (0 for exact builds).
    pub refinement_depth: u32,
    /// Leaves whose owners were forced by the safety caps instead of the
    /// certificate (0 means the whole diagram is certified).
    pub forced_leaves: u64,
}

impl BuildMeta {
    /// Metadata of an exact build.
    pub fn exact() -> Self {
        BuildMeta {
            mode: BuildMode::Exact,
            leaves: 0,
            cells_visited: 0,
            refinement_depth: 0,
            forced_leaves: 0,
        }
    }

    /// The certified approximation factor of answers over this diagram.
    pub fn certified_factor(&self) -> f64 {
        self.mode.certified_factor()
    }

    /// `true` when every leaf carries a certificate (vacuously true for
    /// exact builds).
    pub fn fully_certified(&self) -> bool {
        self.forced_leaves == 0
    }
}

/// Builds the MOVD of `sets` under `plan`. Exact plans delegate to
/// [`Movd::overlap_all_with`] (bit-identical, canonical order); approximate
/// plans refine one joint quadtree and lower its leaves into OVRs (also in
/// canonical order). Both return the metadata the rest of the pipeline
/// threads through.
pub fn build_movd(
    sets: &[ObjectSet],
    bounds: Mbr,
    boundary: Boundary,
    plan: &BuildPlan,
    exec: ExecConfig,
) -> Result<(Movd, BuildMeta), MolqError> {
    let BuildMode::Approx { epsilon } = plan.mode else {
        let movd = Movd::overlap_all_with(sets, bounds, boundary, exec)
            .map_err(|e| MolqError::InvalidQuery(e.to_string()))?;
        return Ok((movd, BuildMeta::exact()));
    };
    for (si, set) in sets.iter().enumerate() {
        if set.is_empty() {
            return Err(MolqError::InvalidQuery(format!(
                "object set {si} ({}) is empty",
                set.name
            )));
        }
        // NaN weights must fail too, so "not strictly positive" it is.
        if !set.objects.iter().all(|o| o.w_o > 0.0) {
            return Err(MolqError::InvalidQuery(format!(
                "object set {si} ({}) has a non-positive object weight",
                set.name
            )));
        }
    }
    let site_lists: Vec<Vec<WeightedSite>> = sets
        .iter()
        .map(|set| {
            set.objects
                .iter()
                .map(|o| WeightedSite::new(o.loc, o.w_o))
                .collect()
        })
        .collect();
    let layers: Vec<ApproxLayer> = site_lists
        .iter()
        .zip(sets)
        .map(|(sites, set)| ApproxLayer {
            sites,
            scheme: match set.object_weight_fn {
                WeightFunction::Multiplicative => WeightScheme::Multiplicative,
                WeightFunction::Additive => WeightScheme::Additive,
            },
        })
        .collect();
    let mut cfg = ApproxConfig::new(epsilon);
    cfg.max_depth = plan.max_depth;
    cfg.max_cells = plan.max_cells;

    // Coalesce leaves by object group: groups index OVRs in first-seen
    // (deterministic) order; canonicalize() then sorts exactly like the
    // exact pipeline does.
    let mut group_ids: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut groups: Vec<Vec<u32>> = Vec::new();
    let mut tiles: Vec<Vec<Mbr>> = Vec::new();
    let stats = refine_multi(&layers, bounds, &cfg, |rect, owners| {
        let id = *group_ids.entry(owners.to_vec()).or_insert_with(|| {
            groups.push(owners.to_vec());
            tiles.push(Vec::new());
            groups.len() - 1
        });
        tiles[id].push(rect);
    });

    let ovrs = groups
        .into_iter()
        .zip(tiles)
        .map(|(owners, rects)| Ovr {
            region: Region::from_tiles(rects),
            pois: owners
                .into_iter()
                .enumerate()
                .map(|(set, index)| ObjectRef {
                    set,
                    index: index as usize,
                })
                .collect(),
        })
        .collect();
    let mut movd = Movd { bounds, ovrs };
    movd.canonicalize();
    let meta = BuildMeta {
        mode: plan.mode,
        leaves: stats.leaves as u64,
        cells_visited: stats.cells_visited as u64,
        refinement_depth: stats.deepest,
        forced_leaves: stats.forced_leaves as u64,
    };
    Ok((movd, meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incr::movd_bits_eq;
    use crate::object::MolqQuery;
    use crate::solutions::movd_based::solve_prebuilt;
    use crate::weights::mwgd;
    use molq_geom::Point;

    fn pseudo_set(name: &str, n: usize, seed: u64) -> ObjectSet {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        ObjectSet::uniform(
            name,
            1.0 + (seed % 3) as f64,
            (0..n)
                .map(|_| Point::new(next() * 100.0, next() * 100.0))
                .collect(),
        )
    }

    fn bounds() -> Mbr {
        Mbr::new(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn mode_normalization() {
        assert!(!BuildMode::from_epsilon(None).is_approx());
        assert!(!BuildMode::from_epsilon(Some(0.0)).is_approx());
        assert!(!BuildMode::from_epsilon(Some(-1.0)).is_approx());
        assert!(!BuildMode::from_epsilon(Some(f64::NAN)).is_approx());
        let m = BuildMode::from_epsilon(Some(0.25));
        assert!(m.is_approx());
        assert_eq!(m.epsilon(), 0.25);
        assert_eq!(m.certified_factor(), 1.25);
        assert!(m.bits_eq(&BuildMode::Approx { epsilon: 0.25 }));
        assert!(!m.bits_eq(&BuildMode::Approx { epsilon: 0.5 }));
        assert!(!m.bits_eq(&BuildMode::Exact));
    }

    #[test]
    fn exact_plan_is_bit_identical_to_direct_overlap() {
        let sets = vec![pseudo_set("a", 12, 1), pseudo_set("b", 10, 2)];
        for mode in [Boundary::Rrb, Boundary::Mbrb] {
            let direct =
                Movd::overlap_all_with(&sets, bounds(), mode, ExecConfig::serial()).unwrap();
            let (piped, meta) = build_movd(
                &sets,
                bounds(),
                mode,
                &BuildPlan::exact(),
                ExecConfig::serial(),
            )
            .unwrap();
            assert!(movd_bits_eq(&piped, &direct));
            assert_eq!(meta, BuildMeta::exact());
            assert_eq!(meta.certified_factor(), 1.0);
        }
    }

    #[test]
    fn epsilon_zero_normalizes_to_exact() {
        let sets = vec![pseudo_set("a", 8, 3), pseudo_set("b", 9, 4)];
        let direct =
            Movd::overlap_all_with(&sets, bounds(), Boundary::Rrb, ExecConfig::serial()).unwrap();
        let (piped, meta) = build_movd(
            &sets,
            bounds(),
            Boundary::Rrb,
            &BuildPlan::approx(0.0),
            ExecConfig::serial(),
        )
        .unwrap();
        assert!(!meta.mode.is_approx());
        assert!(movd_bits_eq(&piped, &direct));
    }

    #[test]
    fn approx_build_tiles_bounds_and_groups_every_type() {
        let sets = vec![pseudo_set("a", 15, 5), pseudo_set("b", 12, 6)];
        let (movd, meta) = build_movd(
            &sets,
            bounds(),
            Boundary::Rrb,
            &BuildPlan::approx(0.25),
            ExecConfig::serial(),
        )
        .unwrap();
        assert!(meta.mode.is_approx());
        assert!(meta.fully_certified());
        assert!(meta.leaves >= movd.len() as u64);
        assert!((movd.total_area() - bounds().area()).abs() < 1e-6 * bounds().area());
        for ovr in &movd.ovrs {
            assert_eq!(ovr.pois.len(), sets.len());
            for (t, poi) in ovr.pois.iter().enumerate() {
                assert_eq!(poi.set, t);
                assert!(poi.index < sets[t].len());
            }
        }
        // Canonical order, same law as the exact pipeline.
        assert!(movd.ovrs.windows(2).all(|w| w[0].pois < w[1].pois));
    }

    #[test]
    fn approx_solve_cost_is_within_the_certified_factor() {
        let sets = vec![pseudo_set("a", 10, 7), pseudo_set("b", 8, 8)];
        let query = MolqQuery::new(sets.clone(), bounds());
        let epsilon = 0.1;
        let (exact_movd, _) = build_movd(
            &sets,
            bounds(),
            Boundary::Rrb,
            &BuildPlan::exact(),
            ExecConfig::serial(),
        )
        .unwrap();
        let (approx_movd, meta) = build_movd(
            &sets,
            bounds(),
            Boundary::Rrb,
            &BuildPlan::approx(epsilon),
            ExecConfig::serial(),
        )
        .unwrap();
        let exact = solve_prebuilt(&query, &exact_movd).unwrap();
        let approx = solve_prebuilt(&query, &approx_movd).unwrap();
        // exact_opt ≤ approx_cost ≤ (1+ε)·exact_opt, with a hair of
        // Fermat–Weber stopping-rule slack.
        let slack = 1.0 + 1e-6;
        assert!(approx.cost >= exact.cost / slack);
        assert!(approx.cost <= meta.certified_factor() * exact.cost * slack);
        // And the reported location's true MWGD certifies the measured error.
        let measured = approx.cost / mwgd(approx.location, &query) - 1.0;
        assert!(measured <= epsilon + 1e-9, "measured error {measured}");
    }

    #[test]
    fn approx_rejects_degenerate_sets() {
        let empty = ObjectSet::uniform("e", 1.0, Vec::new());
        assert!(build_movd(
            &[empty],
            bounds(),
            Boundary::Rrb,
            &BuildPlan::approx(0.5),
            ExecConfig::serial(),
        )
        .is_err());
    }
}
