//! Live MOVD maintenance: single-object insert/delete without a full
//! rebuild.
//!
//! A built MOVD is a pure function of the object sets: every OVR is the
//! intersection of one *chain* of basic-diagram cells (one cell per set,
//! identified by the OVR's `pois`), folded in set order by the ⊕ sweep.
//! Inserting or deleting one object only perturbs its own layer — cells of
//! the other layers are untouched — and within that layer only a bounded
//! neighbourhood of cells actually moves. [`LiveMovd`] exploits this:
//!
//! 1. patch the updated layer's basic diagram: uniform-weight layers keep
//!    an [`IncrementalVoronoi`] that re-clips only the cells the update can
//!    touch while staying bit-identical to the from-scratch build; weighted
//!    layers fall back to the exact from-scratch path
//!    ([`Movd::basic_with`]);
//! 2. bitwise-diff the old and new layer cells (raw IEEE-754 bits, the
//!    identity `molq-store` persists) to find the cells that moved;
//! 3. keep every OVR whose chain avoids the moved cells (their regions
//!    cannot have changed), re-derive only the chains through moved cells by
//!    replaying the ⊕ fold — [`fold_step`] reproduces the sweep's
//!    intersection *argument order*, which matters bitwise for
//!    convex–convex clips;
//! 4. splice kept + re-derived OVRs back into canonical order
//!    ([`Movd::canonicalize`]) and patch the locate grid in place
//!    ([`LocateGrid::patched`]).
//!
//! The invariant, checked by this module's tests and the store-level
//! proptests: **a patched [`LiveMovd`] is byte-identical to a from-scratch
//! rebuild of the same object sets** — same OVR order, same region bits,
//! same grid arrays.

use crate::arena::{MovdArena, PatchEntry};
use crate::error::MolqError;
use crate::exec::ExecConfig;
use crate::locate_grid::LocateGrid;
use crate::movd::{Movd, Ovr};
use crate::movd_index::MovdIndex;
use crate::object::{ObjectRef, ObjectSet, SpatialObject};
use crate::region::{Boundary, Region};
use molq_geom::Mbr;
use molq_voronoi::IncrementalVoronoi;
use std::cmp::Ordering;
use std::time::{Duration, Instant};

/// One live update to an object set.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// Insert `object` at the end of set `set` (its index becomes the set's
    /// previous length).
    Insert {
        /// Index of the target object set.
        set: usize,
        /// The object to insert.
        object: SpatialObject,
    },
    /// Remove the object at `index` from set `set`; later objects shift down
    /// by one.
    Remove {
        /// Index of the target object set.
        set: usize,
        /// Index of the object to remove.
        index: usize,
    },
}

/// What one applied update did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchStats {
    /// Basic-diagram cells of the updated layer whose bits changed (the
    /// cells whose chains were re-clipped).
    pub cells_reclipped: usize,
    /// OVRs carried over untouched (their chains avoid every moved cell).
    pub ovrs_kept: usize,
    /// OVRs re-derived by replaying the ⊕ fold over moved cells.
    pub ovrs_rederived: usize,
    /// `true` when the locate grid was patched in place; `false` when the
    /// grid resolution changed and it was rebuilt from scratch.
    pub grid_patched: bool,
    /// Contiguous old-arena segments bulk-copied into the patched arena
    /// (adjacent kept OVRs coalesce into one segment; fewer segments =
    /// cheaper copy-on-write).
    pub segments_copied: usize,
    /// Wall time of the whole patch.
    pub wall: Duration,
}

/// A built MOVD that accepts live single-object updates.
///
/// Holds the object sets, the per-set basic diagrams (the ⊕ operands), and
/// the canonical overlapped diagram with its locate grid. All state is kept
/// mutually consistent by [`LiveMovd::apply`]; failed updates leave the
/// state untouched.
#[derive(Debug, Clone)]
pub struct LiveMovd {
    sets: Vec<ObjectSet>,
    bounds: Mbr,
    mode: Boundary,
    exec: ExecConfig,
    layers: Vec<Movd>,
    /// Per set: the incrementally maintained ordinary diagram behind
    /// `layers[k]` when the set has uniform object weights; `None` for
    /// weighted sets, whose layers rebuild from scratch on every update.
    ivds: Vec<Option<IncrementalVoronoi>>,
    index: MovdIndex,
}

impl LiveMovd {
    /// Builds from scratch: basic diagrams, the ⊕ fold, the canonical order,
    /// and the locate grid — bit-identical to
    /// [`Movd::overlap_all_with`] + [`MovdIndex::build`].
    pub fn build(
        sets: Vec<ObjectSet>,
        bounds: Mbr,
        mode: Boundary,
        exec: ExecConfig,
    ) -> Result<Self, MolqError> {
        let mut layers = Vec::with_capacity(sets.len());
        let mut ivds = Vec::with_capacity(sets.len());
        let mut acc = Movd::identity(bounds);
        for (i, set) in sets.iter().enumerate() {
            let (basic, ivd) = layer_and_ivd(set, i, bounds, exec)?;
            acc = acc.overlap_with(&basic, mode, exec);
            layers.push(basic);
            ivds.push(ivd);
        }
        acc.canonicalize();
        let index = MovdIndex::build(acc);
        Ok(LiveMovd {
            sets,
            bounds,
            mode,
            exec,
            layers,
            ivds,
            index,
        })
    }

    /// Rehydrates from an already-built index (the snapshot-restore path):
    /// only the per-set basic diagrams are rebuilt — no ⊕ folds. An index in
    /// pre-canonical (sweep) order is normalized first, so diagrams saved by
    /// older builds still patch correctly.
    pub fn from_index(
        sets: Vec<ObjectSet>,
        index: MovdIndex,
        mode: Boundary,
        exec: ExecConfig,
    ) -> Result<Self, MolqError> {
        let bounds = index.bounds();
        let mut layers = Vec::with_capacity(sets.len());
        let mut ivds = Vec::with_capacity(sets.len());
        for (i, set) in sets.iter().enumerate() {
            let (basic, ivd) = layer_and_ivd(set, i, bounds, exec)?;
            layers.push(basic);
            ivds.push(ivd);
        }
        let canonical = (1..index.len()).all(|i| index.group(i - 1) <= index.group(i));
        let index = if canonical {
            index
        } else {
            let mut movd = index.movd().clone();
            movd.canonicalize();
            MovdIndex::build(movd)
        };
        Ok(LiveMovd {
            sets,
            bounds,
            mode,
            exec,
            layers,
            ivds,
            index,
        })
    }

    /// The current object sets.
    pub fn sets(&self) -> &[ObjectSet] {
        &self.sets
    }

    /// The search space.
    pub fn bounds(&self) -> Mbr {
        self.bounds
    }

    /// The boundary mode the diagram is maintained under.
    pub fn mode(&self) -> Boundary {
        self.mode
    }

    /// The execution configuration layer rebuilds run with.
    pub fn exec(&self) -> ExecConfig {
        self.exec
    }

    /// The canonical overlapped diagram.
    pub fn movd(&self) -> &Movd {
        self.index.movd()
    }

    /// The point-location index over the canonical diagram.
    pub fn index(&self) -> &MovdIndex {
        &self.index
    }

    /// The basic diagram of set `k` (one ⊕ operand).
    pub fn layer(&self, k: usize) -> &Movd {
        &self.layers[k]
    }

    /// Applies one update in place. On error (invalid set/index/object,
    /// duplicate coordinates, removing a set's last object) nothing changes.
    pub fn apply(&mut self, update: &Update) -> Result<PatchStats, MolqError> {
        let t0 = Instant::now();
        let (s, new_set, removed) = self.validated_new_set(update)?;

        // 1. The updated layer. A uniform-weight layer patches its
        //    incremental diagram (re-clipping only the cells the update can
        //    touch); anything else rebuilds through the from-scratch path.
        //    Both produce the exact bits `Movd::basic_with` would.
        //
        //    The diagram is taken out and mutated directly — its update
        //    checks all precede mutation, so putting it back on error
        //    restores the old state without paying a clone per patch.
        let (new_layer, new_ivd) = match (self.ivds[s].take(), new_set.has_uniform_object_weights())
        {
            (Some(mut ivd), true) => {
                let patched = match removed {
                    None => ivd.insert(new_set.objects.last().unwrap().loc),
                    Some(d) => ivd.remove(d),
                };
                if let Err(e) = patched {
                    self.ivds[s] = Some(ivd);
                    return Err(e.into());
                }
                (layer_from_ivd(&ivd, s), Some(ivd))
            }
            (old, _) => {
                self.ivds[s] = old;
                layer_and_ivd(&new_set, s, self.bounds, self.exec)?
            }
        };

        // 2. Bitwise diff under the index remap. Cell regions are keyed by
        //    site index; a removal shifts every later site down by one.
        let old_cells = cell_regions(&self.layers[s]);
        let new_cells = cell_regions(&new_layer);
        let old_len = self.sets[s].objects.len();
        // old site index -> new site index (None = the removed site).
        let old_to_new_site = |i: usize| -> Option<usize> {
            match removed {
                None => Some(i),
                Some(d) if i == d => None,
                Some(d) if i > d => Some(i - 1),
                Some(_) => Some(i),
            }
        };
        let mut moved: Vec<bool> = vec![false; new_set.objects.len()];
        for (j, new_region) in new_cells.iter().enumerate() {
            // The new site an insert appends has no old counterpart.
            let old_region = back_map(j, removed, old_len).and_then(|i| old_cells[i].as_ref());
            moved[j] = match (old_region, new_region) {
                (None, None) => false,
                (Some(a), Some(b)) => !region_bits_eq(a, b),
                _ => true,
            };
        }

        // 3. Re-derive the chains through every moved cell, sorted into
        //    canonical order (the keys are ready for the merge below).
        let moved_cells: Vec<usize> = (0..moved.len())
            .filter(|&j| moved[j] && new_cells[j].is_some())
            .collect();
        let cells_reclipped = moved.iter().filter(|&&m| m).count();
        let mut derived = Vec::new();
        for &j in &moved_cells {
            self.derive_chains(s, j, &new_layer, &mut derived);
        }
        let ovrs_rederived = derived.len();
        derived.sort_by(|a, b| a.pois.cmp(&b.pois));

        // 4. Keep OVRs whose layer-s cell kept its bits; drop chains through
        //    moved cells (re-derived above) or the removed site. Kept OVRs
        //    are a subsequence of the old canonical order and the site remap
        //    is strictly monotone, so merging the kept run with the sorted
        //    derived run — chain keys are unique — lands everything in
        //    canonical order without a full sort. The old index stays in
        //    place and is only *read*: kept geometry is bulk-copied out of
        //    its arena by the patch below, never re-encoded.
        let old_arena = self.index.arena();
        let old_ovr_count = old_arena.len();
        let mut entries: Vec<PatchEntry> = Vec::with_capacity(old_ovr_count + derived.len());
        let mut derived = derived.into_iter().peekable();
        let mut ovrs_kept = 0usize;
        for old_id in 0..old_ovr_count {
            let group = old_arena.group(old_id);
            let slot = group
                .iter()
                .position(|p| p.set == s)
                .expect("every OVR chain has one cell per set");
            let Some(j) = old_to_new_site(group[slot].index) else {
                continue; // chain through the removed site
            };
            if moved[j] {
                continue; // chain through a moved cell: re-derived above
            }
            let mut pois = group.to_vec();
            pois[slot].index = j;
            while derived.peek().is_some_and(|d| d.pois < pois) {
                entries.push(PatchEntry::New(derived.next().unwrap()));
            }
            entries.push(PatchEntry::Kept {
                old_id: old_id as u32,
                pois,
            });
            ovrs_kept += 1;
        }
        entries.extend(derived.map(PatchEntry::New));

        // 5. Canonical ids, copy-on-write arena, in-place grid patch.
        let mut old_to_new_id: Vec<Option<u32>> = vec![None; old_ovr_count];
        let mut inserted = Vec::new();
        for (new_id, entry) in entries.iter().enumerate() {
            match entry {
                PatchEntry::Kept { old_id, .. } => {
                    old_to_new_id[*old_id as usize] = Some(new_id as u32)
                }
                PatchEntry::New(_) => inserted.push(new_id as u32),
            }
        }
        let (arena, segments_copied) = MovdArena::from_patch(old_arena, self.bounds, &entries);
        let (grid, grid_patched) =
            match self
                .index
                .grid()
                .patched_arena(&arena, &old_to_new_id, &inserted)
            {
                Some(g) => (g, true),
                None => (LocateGrid::build_arena(&arena), false),
            };
        // Both grid arms reference only ids of `arena` by construction.
        let index = MovdIndex::from_arena(arena, grid)
            .expect("patched grid ids are in range by construction");

        self.sets[s] = new_set;
        self.layers[s] = new_layer;
        self.ivds[s] = new_ivd;
        self.index = index;
        Ok(PatchStats {
            cells_reclipped,
            ovrs_kept,
            ovrs_rederived,
            grid_patched,
            segments_copied,
            wall: t0.elapsed(),
        })
    }

    /// Validates `update` and produces the would-be new object set without
    /// touching `self`. Returns `(set index, new set, removed index)`.
    fn validated_new_set(
        &self,
        update: &Update,
    ) -> Result<(usize, ObjectSet, Option<usize>), MolqError> {
        let check_set = |s: usize| -> Result<(), MolqError> {
            if s >= self.sets.len() {
                return Err(MolqError::InvalidQuery(format!(
                    "set {s} out of range ({} sets)",
                    self.sets.len()
                )));
            }
            Ok(())
        };
        match update {
            Update::Insert { set, object } => {
                check_set(*set)?;
                if !object.loc.x.is_finite() || !object.loc.y.is_finite() {
                    return Err(MolqError::InvalidQuery(format!(
                        "object location {} is not finite",
                        object.loc
                    )));
                }
                if !(object.w_t.is_finite() && object.w_t > 0.0) {
                    return Err(MolqError::InvalidQuery(format!(
                        "type weight {} must be positive and finite",
                        object.w_t
                    )));
                }
                if !(object.w_o.is_finite() && object.w_o > 0.0) {
                    return Err(MolqError::InvalidQuery(format!(
                        "object weight {} must be positive and finite",
                        object.w_o
                    )));
                }
                let mut new_set = self.sets[*set].clone();
                new_set.objects.push(*object);
                Ok((*set, new_set, None))
            }
            Update::Remove { set, index } => {
                check_set(*set)?;
                let n = self.sets[*set].objects.len();
                if *index >= n {
                    return Err(MolqError::InvalidQuery(format!(
                        "object {index} out of range (set has {n} objects)"
                    )));
                }
                if n == 1 {
                    return Err(MolqError::InvalidQuery(
                        "cannot remove the last object of a set".into(),
                    ));
                }
                let mut new_set = self.sets[*set].clone();
                new_set.objects.remove(*index);
                Ok((*set, new_set, Some(*index)))
            }
        }
    }

    /// Replays the ⊕ fold for every chain through cell `cell` of layer `s`
    /// (taken from `new_layer`), appending the surviving OVRs to `out`.
    ///
    /// Candidate cells of the other layers are prefiltered to those whose
    /// MBR closed-overlaps the moved cell's MBR — the sweep pairs regions
    /// under exactly that predicate, so no surviving chain is missed.
    fn derive_chains(&self, s: usize, cell: usize, new_layer: &Movd, out: &mut Vec<Ovr>) {
        let cell_ovr = new_layer
            .ovrs
            .iter()
            .find(|o| o.pois[0].index == cell)
            .expect("moved cell is present in the new layer");
        let cell_mbr = cell_ovr.region.mbr();
        // Per layer: the candidate cells (layer s has exactly one).
        let candidates: Vec<Vec<&Ovr>> = (0..self.sets.len())
            .map(|k| {
                if k == s {
                    vec![cell_ovr]
                } else {
                    self.layers[k]
                        .ovrs
                        .iter()
                        .filter(|o| mbrs_closed_overlap(&o.region.mbr(), &cell_mbr))
                        .collect()
                }
            })
            .collect();
        let mut pois = Vec::with_capacity(self.sets.len());
        self.dfs(&candidates, 0, &Region::Rect(self.bounds), &mut pois, out);
    }

    fn dfs(
        &self,
        candidates: &[Vec<&Ovr>],
        k: usize,
        acc: &Region,
        pois: &mut Vec<ObjectRef>,
        out: &mut Vec<Ovr>,
    ) {
        if k == candidates.len() {
            out.push(Ovr {
                region: acc.clone(),
                pois: pois.clone(),
            });
            return;
        }
        for cell in &candidates[k] {
            if let Some(next) = fold_step(acc, &cell.region, self.mode) {
                pois.push(cell.pois[0]);
                self.dfs(candidates, k + 1, &next, pois, out);
                pois.pop();
            }
        }
    }
}

/// Builds set `s`'s basic layer together with its incremental diagram when
/// the set has uniform object weights (the diagram is then ordinary), or via
/// the weighted from-scratch path otherwise. The layer's bits equal
/// [`Movd::basic_with`]'s in both arms.
fn layer_and_ivd(
    set: &ObjectSet,
    s: usize,
    bounds: Mbr,
    exec: ExecConfig,
) -> Result<(Movd, Option<IncrementalVoronoi>), MolqError> {
    if set.has_uniform_object_weights() {
        let sites: Vec<_> = set.objects.iter().map(|o| o.loc).collect();
        let ivd = IncrementalVoronoi::build(&sites, bounds, exec.threads)?;
        let layer = layer_from_ivd(&ivd, s);
        Ok((layer, Some(ivd)))
    } else {
        Ok((Movd::basic_with(set, s, bounds, exec)?, None))
    }
}

/// The basic-layer [`Movd`] view of an incremental diagram — the same
/// non-empty-cell filter and `Region::Convex` wrapping as
/// [`Movd::basic_with`]'s ordinary arm, over bit-identical cells.
fn layer_from_ivd(ivd: &IncrementalVoronoi, set_index: usize) -> Movd {
    let ovrs = (0..ivd.len())
        .filter(|&i| !ivd.cell(i).is_empty())
        .map(|i| Ovr {
            region: Region::Convex(ivd.cell(i).clone()),
            pois: vec![ObjectRef {
                set: set_index,
                index: i,
            }],
        })
        .collect();
    Movd {
        bounds: *ivd.bounds(),
        ovrs,
    }
}

/// One ⊕ fold step, reproducing the sweep's intersection argument order.
///
/// The sweep (Algorithm 2) emits a pair when the *later-starting* region's
/// top edge enters the status structure, and intersects `later ∩ earlier`.
/// The accumulator is side 0 and the basic layer side 1, and at equal
/// `max_y` side 0's start event is processed first — so the basic cell is
/// the "current" region unless it starts strictly higher than the
/// accumulator. Convex–convex clipping is bitwise sensitive to this order;
/// replaying it is what keeps re-derived OVRs identical to swept ones.
pub fn fold_step(acc: &Region, basic: &Region, mode: Boundary) -> Option<Region> {
    if basic.mbr().max_y.total_cmp(&acc.mbr().max_y) != Ordering::Greater {
        basic.intersect(acc, mode)
    } else {
        acc.intersect(basic, mode)
    }
}

/// The cell regions of a basic layer, indexed by site: `None` for sites
/// whose clipped cell is empty (they own nothing inside the bounds).
fn cell_regions(layer: &Movd) -> Vec<Option<&Region>> {
    let n = layer
        .ovrs
        .iter()
        .map(|o| o.pois[0].index + 1)
        .max()
        .unwrap_or(0);
    let mut cells = vec![None; n];
    for ovr in &layer.ovrs {
        cells[ovr.pois[0].index] = Some(&ovr.region);
    }
    cells
}

/// New site index -> old site index (inverse of the update's remap).
fn back_map(j: usize, removed: Option<usize>, old_len: usize) -> Option<usize> {
    match removed {
        Some(d) => Some(if j >= d { j + 1 } else { j }),
        // Insert appends at old_len; earlier sites keep their index.
        None => (j < old_len).then_some(j),
    }
}

/// Closed-interval MBR overlap in both axes — the sweep's pairing predicate
/// (start events are processed before end events at equal `y`, and the
/// status query is inclusive in `x`).
fn mbrs_closed_overlap(a: &Mbr, b: &Mbr) -> bool {
    a.min_x <= b.max_x && b.min_x <= a.max_x && a.min_y <= b.max_y && b.min_y <= a.max_y
}

/// Bitwise region equality: same representation and identical IEEE-754 bits
/// for every coordinate — the identity `molq-store` persists (`PartialEq`
/// would conflate `-0.0` with `0.0`).
pub fn region_bits_eq(a: &Region, b: &Region) -> bool {
    fn pts_eq(a: &[molq_geom::Point], b: &[molq_geom::Point]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(p, q)| p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits())
    }
    match (a, b) {
        (Region::Convex(a), Region::Convex(b)) => pts_eq(a.vertices(), b.vertices()),
        (Region::Rect(a), Region::Rect(b)) => mbr_bits_eq(a, b),
        (Region::General(a), Region::General(b)) => {
            a.len() == b.len()
                && a.iter()
                    .zip(b)
                    .all(|(p, q)| pts_eq(p.vertices(), q.vertices()))
        }
        _ => false,
    }
}

fn mbr_bits_eq(a: &Mbr, b: &Mbr) -> bool {
    a.min_x.to_bits() == b.min_x.to_bits()
        && a.min_y.to_bits() == b.min_y.to_bits()
        && a.max_x.to_bits() == b.max_x.to_bits()
        && a.max_y.to_bits() == b.max_y.to_bits()
}

/// Bitwise MOVD equality: same bounds, same OVR order, same groups, same
/// region bits. This is exactly "the store would encode identical bytes"
/// for the MOVD section.
pub fn movd_bits_eq(a: &Movd, b: &Movd) -> bool {
    mbr_bits_eq(&a.bounds, &b.bounds)
        && a.ovrs.len() == b.ovrs.len()
        && a.ovrs
            .iter()
            .zip(&b.ovrs)
            .all(|(x, y)| x.pois == y.pois && region_bits_eq(&x.region, &y.region))
}

#[cfg(test)]
mod tests {
    use super::*;
    use molq_geom::Point;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    fn sets(n: usize) -> Vec<ObjectSet> {
        vec![
            ObjectSet::uniform("a", 1.0, pseudo_points(n, 11, 100.0)),
            ObjectSet::uniform("b", 2.0, pseudo_points(n, 22, 100.0)),
            ObjectSet::uniform("c", 1.5, pseudo_points(n, 33, 100.0)),
        ]
    }

    fn bounds() -> Mbr {
        Mbr::new(0.0, 0.0, 100.0, 100.0)
    }

    /// Fresh rebuild of `live`'s current object sets, for comparison.
    fn fresh(live: &LiveMovd) -> Movd {
        Movd::overlap_all_with(
            live.sets(),
            live.bounds(),
            live.mode(),
            ExecConfig::serial(),
        )
        .unwrap()
    }

    fn assert_identical_to_fresh(live: &LiveMovd) {
        let want = fresh(live);
        assert!(
            movd_bits_eq(live.movd(), &want),
            "patched MOVD diverged from fresh rebuild ({} vs {} OVRs)",
            live.movd().len(),
            want.len()
        );
        let want_grid = LocateGrid::build(&want);
        assert_eq!(live.index().grid().offsets(), want_grid.offsets());
        assert_eq!(live.index().grid().ids(), want_grid.ids());
        assert_eq!(live.index().grid().cols(), want_grid.cols());
        assert_eq!(live.index().grid().rows(), want_grid.rows());
    }

    #[test]
    fn build_matches_overlap_all() {
        for mode in [Boundary::Rrb, Boundary::Mbrb] {
            let live = LiveMovd::build(sets(12), bounds(), mode, ExecConfig::serial()).unwrap();
            assert_identical_to_fresh(&live);
        }
    }

    #[test]
    fn insert_patches_to_fresh_rebuild() {
        for mode in [Boundary::Rrb, Boundary::Mbrb] {
            let mut live = LiveMovd::build(sets(15), bounds(), mode, ExecConfig::serial()).unwrap();
            let stats = live
                .apply(&Update::Insert {
                    set: 1,
                    object: SpatialObject {
                        loc: Point::new(41.5, 58.25),
                        w_t: 2.0,
                        w_o: 1.0,
                    },
                })
                .unwrap();
            assert!(stats.cells_reclipped > 0);
            assert!(stats.ovrs_kept > 0, "a local insert must keep most OVRs");
            assert_identical_to_fresh(&live);
        }
    }

    #[test]
    fn remove_patches_to_fresh_rebuild() {
        for mode in [Boundary::Rrb, Boundary::Mbrb] {
            let mut live = LiveMovd::build(sets(15), bounds(), mode, ExecConfig::serial()).unwrap();
            let stats = live.apply(&Update::Remove { set: 0, index: 7 }).unwrap();
            assert!(stats.cells_reclipped > 0);
            assert_identical_to_fresh(&live);
        }
    }

    #[test]
    fn interleaved_sequence_stays_identical() {
        let mut live =
            LiveMovd::build(sets(10), bounds(), Boundary::Rrb, ExecConfig::serial()).unwrap();
        let updates = [
            Update::Insert {
                set: 0,
                object: SpatialObject {
                    loc: Point::new(3.0, 97.0),
                    w_t: 1.0,
                    w_o: 1.0,
                },
            },
            Update::Remove { set: 2, index: 0 },
            Update::Insert {
                set: 2,
                object: SpatialObject {
                    loc: Point::new(50.0, 50.0),
                    w_t: 1.5,
                    w_o: 1.0,
                },
            },
            Update::Remove { set: 0, index: 10 }, // the object just inserted
            Update::Remove { set: 1, index: 9 },
        ];
        for (i, u) in updates.iter().enumerate() {
            live.apply(u).unwrap_or_else(|e| panic!("update {i}: {e}"));
            assert_identical_to_fresh(&live);
        }
    }

    #[test]
    fn weighted_layers_patch_too() {
        // Non-uniform object weights: the layer is a weighted diagram with
        // Rect regions; the same diff/replay machinery must hold.
        let objs: Vec<SpatialObject> = pseudo_points(8, 44, 100.0)
            .into_iter()
            .enumerate()
            .map(|(i, loc)| SpatialObject {
                loc,
                w_t: 1.0,
                w_o: 1.0 + (i % 3) as f64,
            })
            .collect();
        let mut all = sets(8);
        all[1] = ObjectSet::weighted("w", objs, crate::weights::WeightFunction::Multiplicative);
        let mut live =
            LiveMovd::build(all, bounds(), Boundary::Mbrb, ExecConfig::serial()).unwrap();
        live.apply(&Update::Insert {
            set: 1,
            object: SpatialObject {
                loc: Point::new(10.0, 20.0),
                w_t: 1.0,
                w_o: 2.5,
            },
        })
        .unwrap();
        assert_identical_to_fresh(&live);
        live.apply(&Update::Remove { set: 1, index: 3 }).unwrap();
        assert_identical_to_fresh(&live);
    }

    #[test]
    fn weight_uniformity_flip_is_handled() {
        // Inserting a differently-weighted object flips the layer from an
        // ordinary to a weighted diagram: every cell changes representation.
        let mut live =
            LiveMovd::build(sets(8), bounds(), Boundary::Mbrb, ExecConfig::serial()).unwrap();
        let stats = live
            .apply(&Update::Insert {
                set: 0,
                object: SpatialObject {
                    loc: Point::new(33.0, 66.0),
                    w_t: 1.0,
                    w_o: 4.0,
                },
            })
            .unwrap();
        assert_eq!(stats.ovrs_kept, 0, "representation flip moves every cell");
        assert_identical_to_fresh(&live);
    }

    #[test]
    fn negative_zero_coordinates_round_trip() {
        let mut live =
            LiveMovd::build(sets(6), bounds(), Boundary::Rrb, ExecConfig::serial()).unwrap();
        live.apply(&Update::Insert {
            set: 0,
            object: SpatialObject {
                loc: Point::new(-0.0, 12.0),
                w_t: 1.0,
                w_o: 1.0,
            },
        })
        .unwrap();
        assert_identical_to_fresh(&live);
        let x = live.sets()[0].objects.last().unwrap().loc.x;
        assert_eq!(x.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn rejected_updates_leave_state_untouched() {
        let mut live =
            LiveMovd::build(sets(6), bounds(), Boundary::Rrb, ExecConfig::serial()).unwrap();
        let before = live.movd().clone();
        let dup = live.sets()[1].objects[2].loc;
        // Duplicate coordinates are rejected by Voronoi construction.
        let err = live
            .apply(&Update::Insert {
                set: 1,
                object: SpatialObject {
                    loc: dup,
                    w_t: 1.0,
                    w_o: 1.0,
                },
            })
            .unwrap_err();
        assert!(matches!(err, MolqError::Voronoi(_)), "{err}");
        // Out-of-range and invalid updates.
        for bad in [
            Update::Remove { set: 9, index: 0 },
            Update::Remove { set: 0, index: 99 },
            Update::Insert {
                set: 0,
                object: SpatialObject {
                    loc: Point::new(f64::NAN, 0.0),
                    w_t: 1.0,
                    w_o: 1.0,
                },
            },
            Update::Insert {
                set: 0,
                object: SpatialObject {
                    loc: Point::new(1.0, 1.0),
                    w_t: -1.0,
                    w_o: 1.0,
                },
            },
            Update::Insert {
                set: 0,
                object: SpatialObject {
                    loc: Point::new(1.0, 1.0),
                    w_t: 1.0,
                    w_o: 0.0,
                },
            },
        ] {
            assert!(matches!(live.apply(&bad), Err(MolqError::InvalidQuery(_))));
        }
        assert!(movd_bits_eq(live.movd(), &before));
        // Removing down to one object, then the last removal is rejected.
        let mut tiny = LiveMovd::build(
            vec![ObjectSet::uniform(
                "t",
                1.0,
                vec![Point::new(1.0, 1.0), Point::new(9.0, 9.0)],
            )],
            Mbr::new(0.0, 0.0, 10.0, 10.0),
            Boundary::Rrb,
            ExecConfig::serial(),
        )
        .unwrap();
        tiny.apply(&Update::Remove { set: 0, index: 0 }).unwrap();
        assert!(tiny.apply(&Update::Remove { set: 0, index: 0 }).is_err());
    }

    #[test]
    fn from_index_rehydrates_and_patches() {
        let built =
            LiveMovd::build(sets(10), bounds(), Boundary::Rrb, ExecConfig::serial()).unwrap();
        let mut live = LiveMovd::from_index(
            built.sets().to_vec(),
            built.index().clone(),
            Boundary::Rrb,
            ExecConfig::serial(),
        )
        .unwrap();
        assert!(movd_bits_eq(live.movd(), built.movd()));
        live.apply(&Update::Remove { set: 1, index: 4 }).unwrap();
        assert_identical_to_fresh(&live);
    }

    #[test]
    fn from_index_normalizes_sweep_ordered_diagrams() {
        // A diagram in raw sweep order (as an old snapshot would hold it)
        // must be re-canonicalized on rehydration.
        let s = sets(8);
        let b = bounds();
        let mut acc = Movd::identity(b);
        for (i, set) in s.iter().enumerate() {
            let basic = Movd::basic_with(set, i, b, ExecConfig::serial()).unwrap();
            acc = acc.overlap_with(&basic, Boundary::Rrb, ExecConfig::serial());
        }
        // `acc` is unsorted sweep output.
        let live = LiveMovd::from_index(
            s.clone(),
            MovdIndex::build(acc),
            Boundary::Rrb,
            ExecConfig::serial(),
        )
        .unwrap();
        let want = Movd::overlap_all_with(&s, b, Boundary::Rrb, ExecConfig::serial()).unwrap();
        assert!(movd_bits_eq(live.movd(), &want));
    }

    #[test]
    fn single_set_diagram_patches() {
        let mut live = LiveMovd::build(
            vec![ObjectSet::uniform("only", 1.0, pseudo_points(9, 77, 50.0))],
            Mbr::new(0.0, 0.0, 50.0, 50.0),
            Boundary::Rrb,
            ExecConfig::serial(),
        )
        .unwrap();
        live.apply(&Update::Insert {
            set: 0,
            object: SpatialObject {
                loc: Point::new(25.0, 25.0),
                w_t: 1.0,
                w_o: 1.0,
            },
        })
        .unwrap();
        assert_identical_to_fresh(&live);
        live.apply(&Update::Remove { set: 0, index: 2 }).unwrap();
        assert_identical_to_fresh(&live);
    }
}
