//! Cooperative cancellation for long-running query evaluation.
//!
//! The expensive MOLQ paths — the cost-bound Optimizer over every OVR, the
//! top-k scan, MBRB candidate disambiguation — are loops over thousands of
//! Fermat–Weber problems. A serving system cannot afford to let one of those
//! loops hold a worker hostage past its deadline, so each loop calls
//! [`CancelToken::checkpoint`] once per unit of work: a cheap check of an
//! `Arc`'d atomic flag plus (when armed) a monotonic-clock deadline. When
//! the checkpoint fires, the solver abandons the scan and returns
//! [`crate::error::MolqError::Cancelled`] carrying how far it got, so the
//! caller can report partial progress instead of nothing.
//!
//! The default token ([`CancelToken::never`]) carries no allocation and its
//! checkpoint compiles to a no-op branch, so library callers that do not
//! care about cancellation pay nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    /// Artificial per-checkpoint delay — a fault-injection hook that makes a
    /// query *actually* slow at its cancellation points, so timeout handling
    /// can be exercised deterministically.
    checkpoint_delay: Option<Duration>,
}

/// A cheap, cloneable cancellation handle checked at loop checkpoints.
///
/// Cancellation is cooperative: flipping the token (via [`cancel`] or an
/// expired deadline) does not interrupt anything by itself; the running
/// computation notices at its next [`checkpoint`] and unwinds with an error.
///
/// [`cancel`]: CancelToken::cancel
/// [`checkpoint`]: CancelToken::checkpoint
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that can never fire; its checkpoints are free.
    pub const fn never() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A manually-cancellable token (no deadline).
    pub fn new() -> CancelToken {
        CancelToken::build(None, None)
    }

    /// A token that fires once `deadline` passes (and can also be cancelled
    /// manually before that).
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken::build(Some(deadline), None)
    }

    fn build(deadline: Option<Instant>, checkpoint_delay: Option<Duration>) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline,
                checkpoint_delay,
            })),
        }
    }

    /// Adds an artificial delay executed at every checkpoint (fault
    /// injection for deterministic slow-query tests). No-op on
    /// [`CancelToken::never`].
    pub fn with_checkpoint_delay(self, delay: Duration) -> CancelToken {
        match self.inner {
            None => self,
            Some(inner) => CancelToken::build(inner.deadline, Some(delay)),
        }
    }

    /// Requests cancellation; the computation stops at its next checkpoint.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Relaxed);
        }
    }

    /// `true` once the token has been cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.flag.load(Ordering::Relaxed)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// The loop checkpoint: applies any injected delay, then reports whether
    /// the computation should stop. Callers typically translate `true` into
    /// [`crate::error::MolqError::Cancelled`] with their progress counters.
    #[must_use]
    pub fn checkpoint(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if let Some(delay) = inner.checkpoint_delay {
            std::thread::sleep(delay);
        }
        inner.flag.load(Ordering::Relaxed) || inner.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_is_free_and_never_fires() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        assert!(!t.checkpoint());
        t.cancel(); // no-op, not a panic
        assert!(!t.is_cancelled());
    }

    #[test]
    fn manual_cancellation_fires_on_all_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.checkpoint());
        t.cancel();
        assert!(clone.is_cancelled());
        assert!(clone.checkpoint());
    }

    #[test]
    fn deadline_fires_without_manual_cancel() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert!(t.checkpoint());
        let far = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!far.checkpoint());
    }

    #[test]
    fn checkpoint_delay_throttles() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600))
            .with_checkpoint_delay(Duration::from_millis(20));
        let start = Instant::now();
        assert!(!t.checkpoint());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }
}
