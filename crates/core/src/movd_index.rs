//! Point location over a built MOVD: "which objects serve this location?"
//!
//! Once the MOVD Overlapper has run, the diagram is a reusable data product:
//! any location can be mapped to the OVR containing it, whose `pois` are the
//! weighted-nearest object of every type (Property 5). The index owns the
//! diagram in its flat [`MovdArena`] form — the same buffers the snapshot
//! store persists verbatim and the group scan streams over — plus a
//! [`LocateGrid`] over the OVR MBRs that answers probes in near-constant
//! time. The pointer-based [`Movd`] view is materialized lazily (and at most
//! once) for callers that still want owned `Ovr` structures.

use std::sync::OnceLock;

use crate::arena::{MovdArena, KIND_RECT};
use crate::locate_grid::LocateGrid;
use crate::movd::{Movd, Ovr};
use molq_geom::{Mbr, Point};

/// A point-location index over a built MOVD.
#[derive(Debug, Clone)]
pub struct MovdIndex {
    arena: MovdArena,
    grid: LocateGrid,
    /// Lazily materialized pointer-based view, seeded eagerly on the build
    /// paths (where the caller hands us an owned [`Movd`] anyway) and filled
    /// on first use after a snapshot restore.
    movd: OnceLock<Movd>,
}

impl MovdIndex {
    /// Builds the index (a uniform candidate grid over the OVR MBRs).
    pub fn build(movd: Movd) -> Self {
        let grid = LocateGrid::build(&movd);
        let arena = MovdArena::from_movd(&movd);
        let cache = OnceLock::new();
        let _ = cache.set(movd);
        MovdIndex {
            arena,
            grid,
            movd: cache,
        }
    }

    /// Reassembles an index from a diagram and a previously-built grid;
    /// fails when the grid references OVR ids the diagram does not have.
    pub fn from_parts(movd: Movd, grid: LocateGrid) -> Result<Self, String> {
        if let Some(&bad) = grid.ids().iter().find(|&&id| id as usize >= movd.len()) {
            return Err(format!(
                "grid references OVR {bad} but the diagram has {}",
                movd.len()
            ));
        }
        let arena = MovdArena::from_movd(&movd);
        let cache = OnceLock::new();
        let _ = cache.set(movd);
        Ok(MovdIndex {
            arena,
            grid,
            movd: cache,
        })
    }

    /// Reassembles an index straight from arena buffers (the snapshot-load
    /// and live-patch paths — no pointer structures are built); fails when
    /// the grid references OVR ids the arena does not have.
    pub fn from_arena(arena: MovdArena, grid: LocateGrid) -> Result<Self, String> {
        if let Some(&bad) = grid.ids().iter().find(|&&id| id as usize >= arena.len()) {
            return Err(format!(
                "grid references OVR {bad} but the diagram has {}",
                arena.len()
            ));
        }
        Ok(MovdIndex {
            arena,
            grid,
            movd: OnceLock::new(),
        })
    }

    /// Decomposes the index into its diagram and grid.
    pub fn into_parts(self) -> (Movd, LocateGrid) {
        let movd = match self.movd.into_inner() {
            Some(m) => m,
            None => self.arena.to_movd(),
        };
        (movd, self.grid)
    }

    /// The underlying MOVD (materialized from the arena on first use).
    pub fn movd(&self) -> &Movd {
        self.movd.get_or_init(|| self.arena.to_movd())
    }

    /// The flat diagram buffers (single source of truth).
    pub fn arena(&self) -> &MovdArena {
        &self.arena
    }

    /// The point-location grid (exposed for snapshot serialization).
    pub fn grid(&self) -> &LocateGrid {
        &self.grid
    }

    /// Number of OVRs.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// `true` when the diagram holds no OVRs.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// The search space.
    pub fn bounds(&self) -> Mbr {
        self.arena.bounds()
    }

    /// The group of OVR `id` (one object per overlapped type).
    pub fn group(&self, id: usize) -> &[crate::object::ObjectRef] {
        self.arena.group(id)
    }

    /// The OVR containing `l`, if any.
    ///
    /// For exact (RRB) MOVDs this succeeds for every location in the search
    /// space (Property 3) and the returned `pois` are the weighted-nearest
    /// objects per type. For MBRB MOVDs the candidate rectangles are false
    /// positives supersets; exact region hits are preferred over bare
    /// rectangle hits, and ties within either class are broken
    /// deterministically towards the lowest OVR id. Callers who need the
    /// true serving group under MBRB should disambiguate the full
    /// [`locate_candidates`](Self::locate_candidates) list by evaluating
    /// actual group cost.
    pub fn locate(&self, l: Point) -> Option<&Ovr> {
        self.locate_id(l).map(|id| &self.movd().ovrs[id])
    }

    /// Like [`locate`](Self::locate), but returns the OVR's index into
    /// [`Movd::ovrs`].
    pub fn locate_id(&self, l: Point) -> Option<usize> {
        // Grid cells list candidates in ascending id order, so the first
        // exact-region hit is the lowest-id exact hit; rectangle hits only
        // matter when no exact region contains the probe.
        let mut rect_hit: Option<usize> = None;
        for &id in self.grid.candidates(l) {
            let id = id as usize;
            match self.arena.kind(id) {
                KIND_RECT => {
                    if rect_hit.is_none() && self.arena.contains(id, l) {
                        rect_hit = Some(id);
                    }
                }
                _ => {
                    if self.arena.contains(id, l) {
                        return Some(id);
                    }
                }
            }
        }
        rect_hit
    }

    /// Every OVR whose region contains `l`, in ascending OVR-id order.
    ///
    /// For exact MOVDs the list has at most one entry away from region
    /// boundaries. For MBRB MOVDs overlapping false-positive rectangles make
    /// multiple candidates common; callers disambiguate by evaluating the
    /// actual group cost of each candidate (as the server's `locate`
    /// endpoint does).
    pub fn locate_candidates(&self, l: Point) -> Vec<&Ovr> {
        let ids = self.locate_candidate_ids(l);
        let movd = self.movd();
        ids.into_iter().map(|id| &movd.ovrs[id]).collect()
    }

    /// Indices (into [`Movd::ovrs`]) of every OVR whose region contains `l`,
    /// ascending.
    pub fn locate_candidate_ids(&self, l: Point) -> Vec<usize> {
        self.grid
            .candidates(l)
            .iter()
            .map(|&id| id as usize)
            .filter(|&id| self.arena.contains(id, l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movd::Movd;
    use crate::object::ObjectSet;
    use crate::region::Boundary;
    use crate::weights::{mwgd, wgd};
    use crate::MolqQuery;
    use molq_geom::Mbr;

    fn pseudo_set(name: &str, n: usize, seed: u64) -> ObjectSet {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        ObjectSet::uniform(
            name,
            1.0,
            (0..n)
                .map(|_| Point::new(next() * 100.0, next() * 100.0))
                .collect(),
        )
    }

    #[test]
    fn locate_returns_the_weighted_nearest_group() {
        let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let sets = vec![pseudo_set("a", 15, 1), pseudo_set("b", 20, 2)];
        let query = MolqQuery::new(sets.clone(), bounds);
        let movd = Movd::overlap_all(&sets, bounds, Boundary::Rrb).unwrap();
        let index = MovdIndex::build(movd);
        for gi in 0..30 {
            let l = Point::new(
                (gi as f64 * 7.3 + 0.2) % 100.0,
                (gi as f64 * 13.1 + 0.7) % 100.0,
            );
            let ovr = index.locate(l).expect("RRB MOVD covers the space");
            // Property 5: the OVR's group realises MWGD at l.
            let via_group = wgd(l, &query, &ovr.pois);
            let direct = mwgd(l, &query);
            assert!(
                (via_group - direct).abs() < 1e-9 * direct.max(1.0),
                "at {l}: group {via_group} vs direct {direct}"
            );
        }
    }

    #[test]
    fn locate_outside_bounds_is_none_for_rrb() {
        let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let sets = vec![pseudo_set("a", 5, 3)];
        let movd = Movd::overlap_all(&sets, bounds, Boundary::Rrb).unwrap();
        let index = MovdIndex::build(movd);
        assert!(index.locate(Point::new(500.0, 500.0)).is_none());
    }

    #[test]
    fn mbrb_locate_is_deterministic_and_candidates_are_sorted() {
        let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let sets = vec![pseudo_set("a", 12, 6), pseudo_set("b", 12, 7)];
        let movd = Movd::overlap_all(&sets, bounds, Boundary::Mbrb).unwrap();
        let index = MovdIndex::build(movd);
        for gi in 0..40 {
            let l = Point::new(
                (gi as f64 * 11.7 + 0.3) % 100.0,
                (gi as f64 * 5.9 + 0.9) % 100.0,
            );
            let ids = index.locate_candidate_ids(l);
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "unsorted ids {ids:?}");
            // Every candidate really contains the probe, and the chosen OVR
            // is the lowest-id candidate (all regions are rectangles here).
            for &id in &ids {
                assert!(index.movd().ovrs[id].region.contains(l));
            }
            let chosen = index.locate_id(l);
            assert_eq!(chosen, ids.first().copied());
            // locate() agrees with locate_id().
            let by_ref = index.locate(l).map(|o| o as *const Ovr);
            let by_id = chosen.map(|id| &index.movd().ovrs[id] as *const Ovr);
            assert_eq!(by_ref, by_id);
        }
    }

    #[test]
    fn locate_candidates_matches_ids() {
        let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let sets = vec![pseudo_set("a", 10, 8), pseudo_set("b", 10, 9)];
        let movd = Movd::overlap_all(&sets, bounds, Boundary::Mbrb).unwrap();
        let index = MovdIndex::build(movd);
        let l = Point::new(42.0, 58.0);
        let by_ref = index.locate_candidates(l);
        let ids = index.locate_candidate_ids(l);
        assert_eq!(by_ref.len(), ids.len());
        for (o, id) in by_ref.iter().zip(&ids) {
            assert_eq!(*o as *const Ovr, &index.movd().ovrs[*id] as *const Ovr);
        }
    }

    #[test]
    fn mbrb_locate_returns_a_candidate() {
        let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let sets = vec![pseudo_set("a", 10, 4), pseudo_set("b", 10, 5)];
        let movd = Movd::overlap_all(&sets, bounds, Boundary::Mbrb).unwrap();
        let index = MovdIndex::build(movd);
        // Every in-bounds probe hits at least one rectangle (Property 3's
        // superset form).
        for gi in 0..10 {
            let l = Point::new(gi as f64 * 9.9 + 0.5, gi as f64 * 3.3 + 0.5);
            assert!(index.locate(l).is_some(), "no candidate at {l}");
        }
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let sets = vec![pseudo_set("a", 8, 10), pseudo_set("b", 8, 11)];
        let movd = Movd::overlap_all(&sets, bounds, Boundary::Rrb).unwrap();
        let built = MovdIndex::build(movd.clone());
        let reassembled = MovdIndex::from_parts(movd.clone(), built.grid().clone()).unwrap();
        for gi in 0..25 {
            let l = Point::new(
                (gi as f64 * 6.1 + 0.4) % 100.0,
                (gi as f64 * 9.7 + 0.8) % 100.0,
            );
            assert_eq!(built.locate_id(l), reassembled.locate_id(l));
            assert_eq!(
                built.locate_candidate_ids(l),
                reassembled.locate_candidate_ids(l)
            );
        }
        // A grid over a larger diagram must be rejected for a smaller one.
        let truncated = Movd {
            bounds,
            ovrs: movd.ovrs[..1].to_vec(),
        };
        assert!(MovdIndex::from_parts(truncated, built.grid().clone()).is_err());
    }

    #[test]
    fn from_arena_restores_without_pointer_structures() {
        let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let sets = vec![pseudo_set("a", 9, 12), pseudo_set("b", 9, 13)];
        let movd = Movd::overlap_all(&sets, bounds, Boundary::Rrb).unwrap();
        let built = MovdIndex::build(movd.clone());
        let restored = MovdIndex::from_arena(built.arena().clone(), built.grid().clone()).unwrap();
        for gi in 0..25 {
            let l = Point::new(
                (gi as f64 * 4.3 + 0.2) % 100.0,
                (gi as f64 * 8.9 + 0.6) % 100.0,
            );
            assert_eq!(built.locate_id(l), restored.locate_id(l));
        }
        // The lazy pointer view materializes bit-identically.
        assert!(crate::incr::movd_bits_eq(restored.movd(), &movd));
        // A grid over a larger diagram is rejected for a truncated arena.
        let truncated = MovdArena::from_movd(&Movd {
            bounds,
            ovrs: movd.ovrs[..1].to_vec(),
        });
        assert!(MovdIndex::from_arena(truncated, built.grid().clone()).is_err());
    }
}
