//! Error types for MOLQ evaluation.

use molq_voronoi::VoronoiError;

/// Everything that can go wrong answering a MOLQ.
#[derive(Debug, Clone, PartialEq)]
pub enum MolqError {
    /// The query failed validation (empty sets, non-positive weights,
    /// non-finite locations, empty search space).
    InvalidQuery(String),
    /// Voronoi construction failed (duplicate sites, …).
    Voronoi(VoronoiError),
    /// SSC refused to enumerate an explosive combination count.
    TooManyCombinations(u128),
    /// No candidate location was produced (cannot happen for valid queries;
    /// kept as an explicit error rather than a panic).
    NoCandidates,
    /// The evaluation was cancelled at a cooperative checkpoint (deadline
    /// expiry or explicit cancellation); carries how far the scan got so the
    /// caller can report partial progress.
    Cancelled {
        /// OVR groups fully processed before the cancellation fired.
        completed: usize,
        /// Total OVR groups the scan would have processed.
        total: usize,
    },
}

impl std::fmt::Display for MolqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MolqError::InvalidQuery(why) => write!(f, "invalid query: {why}"),
            MolqError::Voronoi(e) => write!(f, "Voronoi construction failed: {e}"),
            MolqError::TooManyCombinations(n) => write!(
                f,
                "SSC would enumerate {n} combinations; use the RRB/MBRB solutions"
            ),
            MolqError::NoCandidates => write!(f, "no candidate locations produced"),
            MolqError::Cancelled { completed, total } => write!(
                f,
                "evaluation cancelled after {completed} of {total} groups"
            ),
        }
    }
}

impl std::error::Error for MolqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MolqError::Voronoi(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VoronoiError> for MolqError {
    fn from(e: VoronoiError) -> Self {
        MolqError::Voronoi(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MolqError::InvalidQuery("empty set".into())
            .to_string()
            .contains("empty set"));
        assert!(MolqError::Voronoi(VoronoiError::DuplicateSites(1, 5))
            .to_string()
            .contains("duplicate"));
        assert!(MolqError::TooManyCombinations(1 << 40)
            .to_string()
            .contains("combinations"));
        assert_eq!(
            MolqError::Cancelled {
                completed: 3,
                total: 10
            }
            .to_string(),
            "evaluation cancelled after 3 of 10 groups"
        );
    }

    #[test]
    fn source_chains_voronoi_errors() {
        use std::error::Error;
        let e = MolqError::from(VoronoiError::NoSites);
        assert!(e.source().is_some());
        assert!(MolqError::NoCandidates.source().is_none());
    }
}
