//! OVR region representations: real convex regions (RRB), MBRs (MBRB), and
//! general multi-polygons (the weighted-diagram RRB path).

use molq_geom::clip::intersect_polygons;
use molq_geom::{ConvexPolygon, Mbr, Point, Polygon};

/// Which boundary representation the MOVD overlapper maintains — the paper's
/// two solutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// Real Region as Boundary: exact region intersection (Algorithm 3).
    Rrb,
    /// Minimum Bounding Rectangle as Boundary: rectangle intersection only
    /// (Algorithm 4); produces false positives but is `O(1)` per pair.
    Mbrb,
}

/// The shape attached to an overlapped Voronoi region.
#[derive(Debug, Clone, PartialEq)]
pub enum Region {
    /// An exact convex region (ordinary Voronoi cells and their
    /// intersections stay convex).
    Convex(ConvexPolygon),
    /// An MBR standing in for the region (the MBRB representation, also used
    /// for weighted-diagram dominance regions whose real boundary is not
    /// maintained).
    Rect(Mbr),
    /// A general region: a set of disjoint simple polygons (weighted-diagram
    /// dominance regions approximated by raster contours can be non-convex
    /// and disconnected). Intersections use the Greiner–Hormann clipper —
    /// the role the GPC library played in the paper.
    General(Vec<Polygon>),
}

impl Region {
    /// The region's bounding rectangle.
    pub fn mbr(&self) -> Mbr {
        match self {
            Region::Convex(p) => p.mbr(),
            Region::Rect(m) => *m,
            Region::General(ps) => ps.iter().fold(Mbr::EMPTY, |acc, p| acc.union(&p.mbr())),
        }
    }

    /// `true` when the region is empty.
    pub fn is_empty(&self) -> bool {
        match self {
            Region::Convex(p) => p.is_empty(),
            Region::Rect(m) => m.is_empty(),
            Region::General(ps) => ps.iter().all(|p| p.is_empty()),
        }
    }

    /// Region area (for `Rect`, the rectangle area).
    pub fn area(&self) -> f64 {
        match self {
            Region::Convex(p) => p.area(),
            Region::Rect(m) => m.area(),
            Region::General(ps) => ps.iter().map(|p| p.area()).sum(),
        }
    }

    /// `true` when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        match self {
            Region::Convex(poly) => poly.contains(p),
            Region::Rect(m) => m.contains(p),
            Region::General(ps) => ps.iter().any(|poly| poly.contains(p)),
        }
    }

    /// Intersects two regions under the given boundary mode.
    ///
    /// * `Rrb` — exact intersection; convex–convex stays convex. A `Rect`
    ///   meeting a `Convex` is clipped exactly (the rectangle *is* its
    ///   region); `Rect`–`Rect` intersects exactly.
    /// * `Mbrb` — rectangle intersection of the two MBRs (Algorithm 4,
    ///   line 5); the result is always a `Rect`.
    ///
    /// Returns `None` when the intersection is empty.
    pub fn intersect(&self, other: &Region, mode: Boundary) -> Option<Region> {
        match mode {
            Boundary::Mbrb => {
                let m = self.mbr().intersection(&other.mbr());
                (!m.is_empty()).then_some(Region::Rect(m))
            }
            Boundary::Rrb => match (self, other) {
                (Region::Convex(a), Region::Convex(b)) => {
                    let i = a.intersect(b);
                    (!i.is_empty()).then_some(Region::Convex(i))
                }
                (Region::Convex(a), Region::Rect(m)) | (Region::Rect(m), Region::Convex(a)) => {
                    let i = a.intersect(&ConvexPolygon::from_mbr(m));
                    (!i.is_empty()).then_some(Region::Convex(i))
                }
                (Region::Rect(a), Region::Rect(b)) => {
                    let m = a.intersection(b);
                    (!m.is_empty() && m.area() > 0.0).then_some(Region::Rect(m))
                }
                // General regions: Greiner–Hormann over every polygon pair.
                (a @ Region::General(_), b) | (a, b @ Region::General(_)) => {
                    let pa = a.to_polygons();
                    let pb = b.to_polygons();
                    let mut parts = Vec::new();
                    for x in &pa {
                        for y in &pb {
                            parts.extend(intersect_polygons(x, y));
                        }
                    }
                    parts.retain(|p| p.area() > 1e-12);
                    (!parts.is_empty()).then_some(Region::General(parts))
                }
            },
        }
    }

    /// Number of stored `f64` coordinates — the paper's memory accounting
    /// unit (an MBR costs two points; a polygon all its vertices).
    pub fn coord_count(&self) -> usize {
        match self {
            Region::Convex(p) => p.coord_count(),
            Region::Rect(_) => 4,
            Region::General(ps) => ps.iter().map(|p| p.coord_count()).sum(),
        }
    }

    /// A region from a union of axis-aligned tiles (the approximate build's
    /// quadtree leaves): one rectangle stays a [`Region::Rect`], several
    /// become a [`Region::General`] of rectangle rings.
    pub fn from_tiles(tiles: Vec<Mbr>) -> Region {
        match <[Mbr; 1]>::try_from(tiles) {
            Ok([only]) => Region::Rect(only),
            Err(tiles) => Region::General(
                tiles
                    .into_iter()
                    .map(|m| Polygon::new(m.corners().to_vec()))
                    .collect(),
            ),
        }
    }

    /// The region as a set of simple polygons (rectangles and convex regions
    /// convert; `General` borrows its parts).
    pub fn to_polygons(&self) -> Vec<Polygon> {
        match self {
            Region::Convex(p) => vec![Polygon::new(p.vertices().to_vec())],
            Region::Rect(m) => {
                if m.is_empty() {
                    Vec::new()
                } else {
                    vec![Polygon::new(m.corners().to_vec())]
                }
            }
            Region::General(ps) => ps.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq(x0: f64, y0: f64, x1: f64, y1: f64) -> Region {
        Region::Convex(ConvexPolygon::from_mbr(&Mbr::new(x0, y0, x1, y1)))
    }

    #[test]
    fn rrb_convex_intersection_is_exact() {
        let a = sq(0.0, 0.0, 2.0, 2.0);
        let b = sq(1.0, 1.0, 3.0, 3.0);
        let i = a.intersect(&b, Boundary::Rrb).unwrap();
        assert!((i.area() - 1.0).abs() < 1e-12);
        assert!(matches!(i, Region::Convex(_)));
    }

    #[test]
    fn mbrb_intersection_returns_rect() {
        let a = sq(0.0, 0.0, 2.0, 2.0);
        let b = sq(1.0, 1.0, 3.0, 3.0);
        let i = a.intersect(&b, Boundary::Mbrb).unwrap();
        assert!(matches!(i, Region::Rect(_)));
        assert_eq!(i.mbr(), Mbr::new(1.0, 1.0, 2.0, 2.0));
    }

    #[test]
    fn mbrb_produces_false_positives() {
        // Two triangles whose real shapes are disjoint but whose MBRs
        // overlap.
        let t1 = Region::Convex(ConvexPolygon::from_ccw(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 4.0),
        ]));
        let t2 = Region::Convex(ConvexPolygon::from_ccw(vec![
            Point::new(4.0, 1.0),
            Point::new(4.0, 4.0),
            Point::new(1.0, 4.0),
        ]));
        assert!(t1.intersect(&t2, Boundary::Rrb).is_none());
        assert!(t1.intersect(&t2, Boundary::Mbrb).is_some());
    }

    #[test]
    fn disjoint_regions_are_none_in_both_modes() {
        let a = sq(0.0, 0.0, 1.0, 1.0);
        let b = sq(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersect(&b, Boundary::Rrb).is_none());
        assert!(a.intersect(&b, Boundary::Mbrb).is_none());
    }

    #[test]
    fn shared_edge_is_dropped_by_rrb() {
        let a = sq(0.0, 0.0, 1.0, 1.0);
        let b = sq(1.0, 0.0, 2.0, 1.0);
        // Real regions only touch: no overlapping area.
        assert!(a.intersect(&b, Boundary::Rrb).is_none());
        // MBRB keeps the degenerate rectangle (false positive by design).
        assert!(a.intersect(&b, Boundary::Mbrb).is_some());
    }

    #[test]
    fn coord_counts() {
        assert_eq!(sq(0.0, 0.0, 1.0, 1.0).coord_count(), 8);
        assert_eq!(Region::Rect(Mbr::new(0.0, 0.0, 1.0, 1.0)).coord_count(), 4);
    }

    #[test]
    fn contains_dispatches() {
        let r = sq(0.0, 0.0, 2.0, 2.0);
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(!r.contains(Point::new(3.0, 1.0)));
        let m = Region::Rect(Mbr::new(0.0, 0.0, 2.0, 2.0));
        assert!(m.contains(Point::new(2.0, 2.0)));
    }

    #[test]
    fn general_region_intersection() {
        use molq_geom::Polygon;
        // An L-shaped general region intersected with a square.
        let l = Region::General(vec![Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 3.0),
            Point::new(0.0, 3.0),
        ])]);
        let sq = sq(0.5, 0.5, 2.5, 2.5);
        let i = l.intersect(&sq, Boundary::Rrb).unwrap();
        // Inside [0.5,2.5]^2 the L covers x∈[0.5,2.5],y∈[0.5,1] plus
        // x∈[0.5,1],y∈[1,2.5]: 1.0 + 0.75 = 1.75.
        assert!((i.area() - 1.75).abs() < 1e-6, "area {}", i.area());
        assert!(matches!(i, Region::General(_)));
        // MBRB mode still works on general regions.
        let m = l.intersect(&sq, Boundary::Mbrb).unwrap();
        assert!(matches!(m, Region::Rect(_)));
    }

    #[test]
    fn general_multi_component() {
        use molq_geom::Polygon;
        let two_islands = Region::General(vec![
            Polygon::new(Mbr::new(0.0, 0.0, 1.0, 1.0).corners().to_vec()),
            Polygon::new(Mbr::new(4.0, 4.0, 5.0, 5.0).corners().to_vec()),
        ]);
        assert!((two_islands.area() - 2.0).abs() < 1e-12);
        assert!(two_islands.contains(Point::new(0.5, 0.5)));
        assert!(two_islands.contains(Point::new(4.5, 4.5)));
        assert!(!two_islands.contains(Point::new(2.5, 2.5)));
        assert_eq!(two_islands.mbr(), Mbr::new(0.0, 0.0, 5.0, 5.0));
        assert_eq!(two_islands.coord_count(), 16);
        // A band crossing both islands keeps both components.
        let band = sq(-1.0, 0.2, 6.0, 4.8);
        let i = two_islands.intersect(&band, Boundary::Rrb).unwrap();
        molq_geom::assert_matches!(i, Region::General(ps) => assert_eq!(ps.len(), 2));
    }

    #[test]
    fn rect_convex_mixed_rrb() {
        let tri = Region::Convex(ConvexPolygon::from_ccw(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 4.0),
        ]));
        let rect = Region::Rect(Mbr::new(1.0, 1.0, 5.0, 5.0));
        let i = tri.intersect(&rect, Boundary::Rrb).unwrap();
        // Triangle x+y<=4 clipped to [1,5]^2: triangle (1,1),(3,1),(1,3), area 2.
        assert!((i.area() - 2.0).abs() < 1e-9, "area {}", i.area());
    }
}
