//! Search-space pruning during MOVD overlapping — the paper's stated future
//! work ("pruning the search space by filtering out the impossible POI
//! combinations during the MOVD overlapping").
//!
//! Strategy: a cheap probe pass evaluates `MWGD` at a coarse grid of
//! locations, giving a global upper bound `Ubound` before any overlap work.
//! During the sequential ⊕ fold, every intermediate OVR carries a *partial*
//! group (objects of the types overlapped so far); the partial weighted
//! distance
//!
//! ```text
//! lb(OVR) = Σ_{p ∈ pois} weight(p) · mindist(OVR.mbr, p.loc) + constants
//! ```
//!
//! lower-bounds `WGD(l, G)` for every location `l` in the OVR and every
//! completion `G` of the partial group (remaining types only add
//! non-negative terms). OVRs with `lb > Ubound` can never contain the
//! optimum, so they are dropped *before* the next, more expensive overlap
//! round — shrinking both the intermediate diagrams and the final
//! Fermat–Weber workload.

use crate::error::MolqError;
use crate::movd::{Movd, Ovr};
use crate::object::MolqQuery;
use crate::region::Boundary;
use crate::solutions::movd_based::MovdAnswer;
use crate::weights::mwgd;
use molq_fw::{solve_group_bounded, BatchStats, GroupOutcome};
use molq_geom::Point;

/// Statistics of the pruning pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// OVRs dropped across all fold rounds.
    pub pruned_ovrs: usize,
    /// OVRs surviving into the final MOVD.
    pub final_ovrs: usize,
}

/// Answer of the pruned MOVD solve.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedAnswer {
    /// The standard answer fields.
    pub answer: MovdAnswer,
    /// Pruning counters.
    pub prune: PruneStats,
    /// The probe-pass upper bound that drove the pruning.
    pub ubound: f64,
}

/// The partial-group lower bound of an OVR.
fn ovr_lower_bound(query: &MolqQuery, ovr: &Ovr) -> f64 {
    let mbr = ovr.region.mbr();
    let (pts, constant) = query.fw_terms(&ovr.pois);
    constant
        + pts
            .iter()
            .map(|p| p.weight * mbr.min_dist(p.loc))
            .sum::<f64>()
}

/// Upper bound from probing `MWGD` on a `k × k` grid plus the center.
fn probe_ubound(query: &MolqQuery, k: usize) -> f64 {
    let b = &query.bounds;
    let mut best = mwgd(b.center(), query);
    for i in 0..k {
        for j in 0..k {
            let p = Point::new(
                b.min_x + b.width() * (i as f64 + 0.5) / k as f64,
                b.min_y + b.height() * (j as f64 + 0.5) / k as f64,
            );
            best = best.min(mwgd(p, query));
        }
    }
    best
}

/// Solves the query through the MOVD pipeline with inter-round OVR pruning.
///
/// Exact: the dropped OVRs provably cannot contain the optimum, so the
/// answer matches [`crate::solutions::movd_based::solve_movd`].
pub fn solve_pruned(query: &MolqQuery, mode: Boundary) -> Result<PrunedAnswer, MolqError> {
    query.validate()?;
    let ubound = probe_ubound(query, 4);
    let mut prune = PruneStats::default();

    let mut acc = Movd::identity(query.bounds);
    for (i, set) in query.sets.iter().enumerate() {
        let basic = Movd::basic(set, i, query.bounds)?;
        let mut next = acc.overlap(&basic, mode);
        let before = next.len();
        next.ovrs
            .retain(|ovr| ovr_lower_bound(query, ovr) <= ubound);
        prune.pruned_ovrs += before - next.len();
        acc = next;
    }
    prune.final_ovrs = acc.len();

    // Cost-bound optimizer over the surviving OVRs, seeded with the probe
    // bound (a valid upper bound on the optimum).
    let mut cbound = ubound;
    let mut best: Option<Point> = None;
    let mut stats = BatchStats::default();
    for ovr in &acc.ovrs {
        let (pts, constant) = query.fw_terms(&ovr.pois);
        if let GroupOutcome::Solved(sol) =
            solve_group_bounded(&pts, constant, query.rule, cbound, &mut stats)
        {
            if sol.cost <= cbound {
                cbound = sol.cost;
                best = Some(sol.location);
            }
        }
    }
    // The probe bound might never be beaten if a probe location is already
    // optimal to within the stopping tolerance; fall back to the best probe.
    let location = match best {
        Some(l) => l,
        None => {
            // Re-run the probe to recover the argmin.
            let b = &query.bounds;
            let mut best_p = b.center();
            let mut best_c = mwgd(best_p, query);
            for i in 0..4 {
                for j in 0..4 {
                    let p = Point::new(
                        b.min_x + b.width() * (i as f64 + 0.5) / 4.0,
                        b.min_y + b.height() * (j as f64 + 0.5) / 4.0,
                    );
                    let c = mwgd(p, query);
                    if c < best_c {
                        best_c = c;
                        best_p = p;
                    }
                }
            }
            best_p
        }
    };

    Ok(PrunedAnswer {
        answer: MovdAnswer {
            location,
            cost: cbound,
            ovr_count: acc.len(),
            movd_bytes: crate::footprint::Footprint::footprint_bytes(&acc),
            certified_factor: 1.0,
            stats,
        },
        prune,
        ubound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectSet;
    use crate::solutions::movd_based::{solve_movd, solve_rrb};
    use molq_fw::StoppingRule;
    use molq_geom::Mbr;

    fn pseudo_set(name: &str, w_t: f64, n: usize, seed: u64) -> ObjectSet {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        ObjectSet::uniform(
            name,
            w_t,
            (0..n)
                .map(|_| molq_geom::Point::new(next() * 100.0, next() * 100.0))
                .collect(),
        )
    }

    fn query(sizes: [usize; 3]) -> MolqQuery {
        MolqQuery::new(
            vec![
                pseudo_set("a", 2.0, sizes[0], 41),
                pseudo_set("b", 1.0, sizes[1], 42),
                pseudo_set("c", 3.0, sizes[2], 43),
            ],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        )
        .with_rule(StoppingRule::Either(1e-9, 50_000))
    }

    #[test]
    fn pruned_matches_unpruned_rrb() {
        let q = query([10, 12, 9]);
        let plain = solve_rrb(&q).unwrap();
        let pruned = solve_pruned(&q, Boundary::Rrb).unwrap();
        assert!(
            (plain.cost - pruned.answer.cost).abs() < 1e-6 * plain.cost,
            "plain {} vs pruned {}",
            plain.cost,
            pruned.answer.cost
        );
    }

    #[test]
    fn pruned_matches_unpruned_mbrb() {
        let q = query([8, 8, 8]);
        let plain = solve_movd(&q, Boundary::Mbrb).unwrap();
        let pruned = solve_pruned(&q, Boundary::Mbrb).unwrap();
        assert!((plain.cost - pruned.answer.cost).abs() < 1e-6 * plain.cost);
    }

    #[test]
    fn pruning_actually_drops_ovrs() {
        let q = query([20, 20, 20]);
        let plain = solve_rrb(&q).unwrap();
        let pruned = solve_pruned(&q, Boundary::Rrb).unwrap();
        assert!(
            pruned.prune.pruned_ovrs > 0,
            "no OVRs pruned (probe ubound {})",
            pruned.ubound
        );
        assert!(pruned.answer.ovr_count < plain.ovr_count);
        // And still the same answer.
        assert!((plain.cost - pruned.answer.cost).abs() < 1e-6 * plain.cost);
    }

    #[test]
    fn ubound_is_a_valid_upper_bound() {
        let q = query([10, 10, 10]);
        let pruned = solve_pruned(&q, Boundary::Rrb).unwrap();
        assert!(pruned.answer.cost <= pruned.ubound * (1.0 + 1e-12));
    }
}
