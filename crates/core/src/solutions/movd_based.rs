//! The MOVD-based solutions (§5): VD Generator → MOVD Overlapper →
//! cost-bound Optimizer, with either the RRB or the MBRB boundary
//! representation.

use crate::arena::{FwLanes, MovdArena};
use crate::cancel::CancelToken;
use crate::error::MolqError;
use crate::exec::{ExecConfig, GroupScan, SharedBound};
use crate::footprint::Footprint;
use crate::movd::Movd;
use crate::object::MolqQuery;
use crate::region::Boundary;
use molq_fw::{solve_group_bounded, BatchStats, GroupOutcome};
use molq_geom::Point;

/// Answer of an MOVD-based solve, with the instrumentation the experiments
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct MovdAnswer {
    /// The optimal location.
    pub location: Point,
    /// `MWGD` at the optimal location.
    pub cost: f64,
    /// Number of OVRs the overlapper produced (Fig 12 / Fig 14(c)).
    pub ovr_count: usize,
    /// Deep memory footprint of the final MOVD in bytes (Fig 13 / Fig 14(d)).
    pub movd_bytes: usize,
    /// The certified approximation factor of the diagram the answer was
    /// computed over: `cost ≤ certified_factor · exact_opt`. Exactly `1.0`
    /// for exact diagrams; `1 + ε` for approximate builds (the serving layer
    /// stamps it from the snapshot's build metadata).
    pub certified_factor: f64,
    /// Optimizer work counters.
    pub stats: BatchStats,
}

impl MovdAnswer {
    /// The answer with its certified approximation factor stamped on —
    /// called by the serving layer with the snapshot's build metadata.
    pub fn with_certified_factor(mut self, factor: f64) -> MovdAnswer {
        self.certified_factor = factor;
        self
    }

    /// A lower bound on the true optimal cost implied by the certificate:
    /// `cost / certified_factor ≤ exact_opt ≤ cost`.
    pub fn cost_lower_bound(&self) -> f64 {
        self.cost / self.certified_factor
    }
}

/// Solves the query through the MOVD pipeline with the given boundary mode.
pub fn solve_movd(query: &MolqQuery, mode: Boundary) -> Result<MovdAnswer, MolqError> {
    solve_movd_with(query, mode, ExecConfig::default())
}

/// [`solve_movd`] with an explicit execution configuration: both the MOVD
/// rebuild (pairwise overlap intersections) and the Optimizer scan use
/// `exec.threads` workers.
pub fn solve_movd_with(
    query: &MolqQuery,
    mode: Boundary,
    exec: ExecConfig,
) -> Result<MovdAnswer, MolqError> {
    query.validate()?;
    let movd = Movd::overlap_all_with(&query.sets, query.bounds, mode, exec)?;
    optimize(query, &movd, &CancelToken::never(), exec)
}

/// The Real Region as Boundary solution (§5.2).
pub fn solve_rrb(query: &MolqQuery) -> Result<MovdAnswer, MolqError> {
    solve_movd(query, Boundary::Rrb)
}

/// The Minimum Bounding Rectangle as Boundary solution (§5.3).
pub fn solve_mbrb(query: &MolqQuery) -> Result<MovdAnswer, MolqError> {
    solve_movd(query, Boundary::Mbrb)
}

/// Runs the cost-bound Optimizer (Algorithm 5) over an already-built MOVD.
///
/// This is the serving-path entry point: a long-lived system builds the
/// MOVD once (the expensive part) and answers every subsequent optimal-
/// location query from the prebuilt diagram. The `movd` must have been built
/// from `query`'s object sets.
pub fn solve_prebuilt(query: &MolqQuery, movd: &Movd) -> Result<MovdAnswer, MolqError> {
    solve_prebuilt_cancellable(query, movd, &CancelToken::never())
}

/// [`solve_prebuilt`] with cooperative cancellation: the Optimizer checks
/// `cancel` once per OVR group and returns [`MolqError::Cancelled`] (with
/// progress counters) when the token has fired — so a serving deadline
/// actually stops the work instead of letting it run to completion.
pub fn solve_prebuilt_cancellable(
    query: &MolqQuery,
    movd: &Movd,
    cancel: &CancelToken,
) -> Result<MovdAnswer, MolqError> {
    solve_prebuilt_cancellable_with(query, movd, cancel, ExecConfig::default())
}

/// [`solve_prebuilt_cancellable`] with an explicit execution configuration.
pub fn solve_prebuilt_cancellable_with(
    query: &MolqQuery,
    movd: &Movd,
    cancel: &CancelToken,
    exec: ExecConfig,
) -> Result<MovdAnswer, MolqError> {
    query.validate()?;
    optimize(query, movd, cancel, exec)
}

/// The general RRB solution for queries with *non-uniform object weights*:
/// weighted dominance regions are approximated by dilated raster contours
/// (supersets of the true regions, so the answer stays exact) and
/// intersected with the Greiner–Hormann clipper — the configuration where
/// the paper used the GPC library. `raster_res` trades false positives for
/// raster cost (64–256 is typical).
pub fn solve_weighted_rrb(query: &MolqQuery, raster_res: usize) -> Result<MovdAnswer, MolqError> {
    solve_weighted_rrb_cancellable(query, raster_res, &CancelToken::never())
}

/// [`solve_weighted_rrb`] with cooperative cancellation, so weighted queries
/// respect serving deadlines like `solve`/`topk`/`locate` do. The build phase
/// checks `cancel` once per object set (reporting `completed/total` in sets);
/// the Optimizer scan checks it per group as usual.
pub fn solve_weighted_rrb_cancellable(
    query: &MolqQuery,
    raster_res: usize,
    cancel: &CancelToken,
) -> Result<MovdAnswer, MolqError> {
    solve_weighted_rrb_with(query, raster_res, cancel, ExecConfig::default())
}

/// [`solve_weighted_rrb_cancellable`] with an explicit execution
/// configuration.
pub fn solve_weighted_rrb_with(
    query: &MolqQuery,
    raster_res: usize,
    cancel: &CancelToken,
    exec: ExecConfig,
) -> Result<MovdAnswer, MolqError> {
    query.validate()?;
    let mut movd = Movd::identity(query.bounds);
    for (i, set) in query.sets.iter().enumerate() {
        if cancel.checkpoint() {
            return Err(MolqError::Cancelled {
                completed: i,
                total: query.sets.len(),
            });
        }
        let basic = Movd::basic_approx(set, i, query.bounds, raster_res)?;
        movd = movd.overlap_with(&basic, Boundary::Rrb, exec);
    }
    optimize(query, &movd, cancel, exec)
}

/// Runs the Optimizer over an arena-backed diagram with prebuilt cost lanes
/// (the serving path: the server pins one [`FwLanes`] per snapshot, so
/// every solve streams contiguous weighted-point runs instead of
/// re-deriving Fermat–Weber terms per group).
///
/// Answers are bit-identical to
/// [`solve_prebuilt_cancellable_with`] on the equivalent pointer-based
/// diagram: the lanes hold exactly the values [`MolqQuery::fw_terms`]
/// produces, and the scan/merge machinery is shared.
pub fn solve_arena_cancellable_with(
    query: &MolqQuery,
    arena: &MovdArena,
    lanes: &FwLanes,
    cancel: &CancelToken,
    exec: ExecConfig,
) -> Result<MovdAnswer, MolqError> {
    query.validate()?;
    optimize_lanes(query, lanes, arena.footprint_bytes(), cancel, exec)
}

/// The Optimizer: one Fermat–Weber problem per OVR, sharing a global cost
/// bound (Algorithm 5), executed on the [`GroupScan`] layer. Correctness
/// does not require the local optimum to stay inside its OVR (§5.3, Fig 7):
/// each candidate's `WGD` upper-bounds the global optimum, and the OVR
/// containing the true optimum contributes a candidate at least as good.
fn optimize(
    query: &MolqQuery,
    movd: &Movd,
    cancel: &CancelToken,
    exec: ExecConfig,
) -> Result<MovdAnswer, MolqError> {
    // MBRB false positives can merge fewer types than the query has only
    // if a type's diagram failed to cover the OVR — impossible by
    // Property 3 — so every OVR group has one object per type.
    let lanes = FwLanes::from_movd(query, movd);
    optimize_lanes(query, &lanes, movd.footprint_bytes(), cancel, exec)
}

/// Shared Optimizer core over the SoA cost lanes.
///
/// Determinism: a candidate is emitted whenever its cost is within the bound
/// it was solved under (`<=`, so equal-cost candidates all survive), and the
/// winner is the minimum by `(cost, group index)` — which is exactly the
/// group the old sequential strict-`<` update would have kept.
fn optimize_lanes(
    query: &MolqQuery,
    lanes: &FwLanes,
    movd_bytes: usize,
    cancel: &CancelToken,
    exec: ExecConfig,
) -> Result<MovdAnswer, MolqError> {
    let bound = SharedBound::new(f64::INFINITY);
    let scan = GroupScan::new(lanes.len(), exec, cancel);
    let out = scan.run(|i, stats| {
        let (pts, constant) = lanes.group(i);
        let cbound = bound.get();
        match solve_group_bounded(pts, constant, query.rule, cbound, stats) {
            GroupOutcome::Solved(sol) if sol.cost <= cbound => {
                bound.propose(sol.cost);
                Some((sol.cost, sol.location))
            }
            _ => None,
        }
    })?;

    let mut best: Option<(f64, Point)> = None;
    for &(_, (cost, location)) in &out.items {
        if best.map_or(true, |(c, _)| cost < c) {
            best = Some((cost, location));
        }
    }
    let (cost, location) = best.ok_or(MolqError::NoCandidates)?;
    Ok(MovdAnswer {
        location,
        cost,
        ovr_count: lanes.len(),
        movd_bytes,
        certified_factor: 1.0,
        stats: out.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectSet;
    use crate::solutions::ssc::solve_ssc;
    use crate::weights::mwgd;
    use molq_fw::StoppingRule;
    use molq_geom::{Mbr, Point};

    fn pseudo_set(name: &str, w_t: f64, n: usize, seed: u64) -> ObjectSet {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        ObjectSet::uniform(
            name,
            w_t,
            (0..n)
                .map(|_| Point::new(next() * 100.0, next() * 100.0))
                .collect(),
        )
    }

    fn three_type_query(sizes: [usize; 3]) -> MolqQuery {
        MolqQuery::new(
            vec![
                pseudo_set("a", 2.0, sizes[0], 101),
                pseudo_set("b", 1.0, sizes[1], 202),
                pseudo_set("c", 3.0, sizes[2], 303),
            ],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        )
        .with_rule(StoppingRule::Either(1e-9, 50_000))
    }

    #[test]
    fn rrb_matches_ssc() {
        let q = three_type_query([5, 6, 4]);
        let ssc = solve_ssc(&q).unwrap();
        let rrb = solve_rrb(&q).unwrap();
        assert!(
            (ssc.cost - rrb.cost).abs() < 1e-6 * ssc.cost,
            "ssc {} vs rrb {}",
            ssc.cost,
            rrb.cost
        );
    }

    #[test]
    fn mbrb_matches_ssc() {
        let q = three_type_query([5, 6, 4]);
        let ssc = solve_ssc(&q).unwrap();
        let mbrb = solve_mbrb(&q).unwrap();
        assert!(
            (ssc.cost - mbrb.cost).abs() < 1e-6 * ssc.cost,
            "ssc {} vs mbrb {}",
            ssc.cost,
            mbrb.cost
        );
    }

    #[test]
    fn prebuilt_solve_matches_fresh_solve() {
        let q = three_type_query([6, 5, 7]);
        let movd = Movd::overlap_all(&q.sets, q.bounds, Boundary::Rrb).unwrap();
        let fresh = solve_rrb(&q).unwrap();
        // Serving path: solve twice from the same prebuilt diagram.
        for _ in 0..2 {
            let served = solve_prebuilt(&q, &movd).unwrap();
            assert_eq!(served.location, fresh.location);
            assert_eq!(served.cost, fresh.cost);
            assert_eq!(served.ovr_count, fresh.ovr_count);
        }
    }

    #[test]
    fn arena_solve_is_bit_identical_to_pointer_solve() {
        let q = three_type_query([6, 5, 7]);
        for mode in [Boundary::Rrb, Boundary::Mbrb] {
            let movd = Movd::overlap_all(&q.sets, q.bounds, mode).unwrap();
            let arena = MovdArena::from_movd(&movd);
            let lanes = FwLanes::from_arena(&q, &arena);
            for threads in [1, 4] {
                let exec = ExecConfig { threads };
                let pointer =
                    solve_prebuilt_cancellable_with(&q, &movd, &CancelToken::never(), exec)
                        .unwrap();
                let via_arena =
                    solve_arena_cancellable_with(&q, &arena, &lanes, &CancelToken::never(), exec)
                        .unwrap();
                assert_eq!(pointer.location.x.to_bits(), via_arena.location.x.to_bits());
                assert_eq!(pointer.location.y.to_bits(), via_arena.location.y.to_bits());
                assert_eq!(pointer.cost.to_bits(), via_arena.cost.to_bits());
                assert_eq!(pointer.ovr_count, via_arena.ovr_count);
                assert_eq!(pointer.movd_bytes, via_arena.movd_bytes);
            }
        }
    }

    #[test]
    fn cancelled_solve_stops_with_partial_progress() {
        let q = three_type_query([6, 5, 7]);
        let movd = Movd::overlap_all(&q.sets, q.bounds, Boundary::Rrb).unwrap();

        // A pre-cancelled token stops before any group.
        let token = CancelToken::new();
        token.cancel();
        match solve_prebuilt_cancellable(&q, &movd, &token) {
            Err(MolqError::Cancelled { completed, total }) => {
                assert_eq!(completed, 0);
                assert_eq!(total, movd.len());
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }

        // An expired deadline stops mid-scan too (first checkpoint).
        let expired = CancelToken::with_deadline(std::time::Instant::now());
        assert!(matches!(
            solve_prebuilt_cancellable(&q, &movd, &expired),
            Err(MolqError::Cancelled { .. })
        ));

        // A token that never fires matches the plain solve exactly.
        let fresh = solve_prebuilt(&q, &movd).unwrap();
        let open = CancelToken::new();
        let answered = solve_prebuilt_cancellable(&q, &movd, &open).unwrap();
        assert_eq!(fresh.location, answered.location);
        assert_eq!(fresh.cost, answered.cost);
    }

    #[test]
    fn rrb_evaluates_far_fewer_groups_than_ssc() {
        let q = three_type_query([10, 10, 10]);
        let rrb = solve_rrb(&q).unwrap();
        // SSC would enumerate 1000 combinations; the MOVD filters most.
        assert!(
            (rrb.ovr_count as u128) < q.combination_count() / 2,
            "ovr count {} vs {} combinations",
            rrb.ovr_count,
            q.combination_count()
        );
    }

    #[test]
    fn mbrb_produces_more_ovrs_but_same_answer() {
        let q = three_type_query([8, 8, 8]);
        let rrb = solve_rrb(&q).unwrap();
        let mbrb = solve_mbrb(&q).unwrap();
        assert!(mbrb.ovr_count >= rrb.ovr_count);
        assert!((rrb.cost - mbrb.cost).abs() < 1e-6 * rrb.cost);
    }

    #[test]
    fn answer_cost_equals_mwgd_at_location() {
        let q = three_type_query([7, 5, 6]);
        for solve in [solve_rrb, solve_mbrb] {
            let ans = solve(&q).unwrap();
            let direct = mwgd(ans.location, &q);
            assert!(
                (ans.cost - direct).abs() < 1e-6 * direct.max(1.0),
                "cost {} vs mwgd {}",
                ans.cost,
                direct
            );
        }
    }

    #[test]
    fn beats_dense_grid_scan() {
        let q = three_type_query([6, 6, 6]);
        let ans = solve_rrb(&q).unwrap();
        let mut grid_best = f64::INFINITY;
        for i in 0..=100 {
            for j in 0..=100 {
                grid_best = grid_best.min(mwgd(Point::new(i as f64, j as f64), &q));
            }
        }
        assert!(
            ans.cost <= grid_best + 1e-6,
            "{} vs {}",
            ans.cost,
            grid_best
        );
    }

    #[test]
    fn single_type_query_works() {
        // One type: the answer is at (weighted) distance 0 from some object.
        let q = MolqQuery::new(
            vec![pseudo_set("a", 1.0, 10, 5)],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        );
        let ans = solve_rrb(&q).unwrap();
        assert!(ans.cost < 1e-9);
    }

    #[test]
    fn weighted_rrb_matches_ssc_on_nonuniform_weights() {
        use crate::object::SpatialObject;
        use crate::weights::WeightFunction;
        // Two types with genuinely non-uniform object weights: the basic
        // diagrams are weighted, exercising the General-region RRB path.
        let mut s = 77u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        let mut mk = |name: &str, n: usize, w_t: f64| {
            let objects = (0..n)
                .map(|_| SpatialObject {
                    loc: Point::new(next() * 100.0, next() * 100.0),
                    w_t,
                    w_o: 0.5 + next() * 2.0,
                })
                .collect();
            ObjectSet::weighted(name, objects, WeightFunction::Multiplicative)
        };
        let q = MolqQuery::new(
            vec![mk("a", 6, 2.0), mk("b", 7, 1.0)],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        )
        .with_rule(StoppingRule::Either(1e-9, 50_000));
        let ssc = solve_ssc(&q).unwrap();
        let wrrb = solve_weighted_rrb(&q, 96).unwrap();
        let mbrb = solve_mbrb(&q).unwrap();
        let tol = 1e-6 * ssc.cost;
        assert!(
            (ssc.cost - wrrb.cost).abs() < tol,
            "ssc {} wrrb {}",
            ssc.cost,
            wrrb.cost
        );
        assert!(
            (ssc.cost - mbrb.cost).abs() < tol,
            "ssc {} mbrb {}",
            ssc.cost,
            mbrb.cost
        );
        // The approximated real regions filter better than bare MBRs.
        assert!(wrrb.ovr_count <= mbrb.ovr_count);
    }

    #[test]
    fn weighted_rrb_keeps_subraster_bubbles() {
        use crate::object::SpatialObject;
        use crate::weights::WeightFunction;
        // Regression: a very heavy site's dominance bubble is smaller than a
        // raster cell; the object must still reach the optimizer (via its
        // analytic MBR fallback), not be silently dropped.
        let a = ObjectSet::weighted(
            "a",
            vec![
                SpatialObject {
                    loc: Point::new(20.0, 50.0),
                    w_t: 1.0,
                    w_o: 1.0,
                },
                // Bubble radius shrinks with the weight ratio: w_o = 200
                // against a neighbour at distance ~30 leaves well under one
                // 96-cell raster pixel of a 100-unit domain.
                SpatialObject {
                    loc: Point::new(50.0, 50.0),
                    w_t: 1.0,
                    w_o: 200.0,
                },
            ],
            WeightFunction::Multiplicative,
        );
        let b = ObjectSet::uniform(
            "b",
            1.0,
            vec![Point::new(50.0, 50.5), Point::new(90.0, 90.0)],
        );
        let q = MolqQuery::new(vec![a, b], Mbr::new(0.0, 0.0, 100.0, 100.0))
            .with_rule(StoppingRule::Either(1e-9, 50_000));
        let ssc = solve_ssc(&q).unwrap();
        let wrrb = solve_weighted_rrb(&q, 96).unwrap();
        assert!(
            (ssc.cost - wrrb.cost).abs() < 1e-6 * ssc.cost.max(1.0),
            "ssc {} vs wrrb {}",
            ssc.cost,
            wrrb.cost
        );
    }

    #[test]
    fn four_types_agree_across_solutions() {
        let q = MolqQuery::new(
            vec![
                pseudo_set("a", 1.0, 4, 11),
                pseudo_set("b", 2.0, 4, 12),
                pseudo_set("c", 1.5, 4, 13),
                pseudo_set("d", 0.5, 4, 14),
            ],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        )
        .with_rule(StoppingRule::Either(1e-6, 50_000));
        let ssc = solve_ssc(&q).unwrap();
        let rrb = solve_rrb(&q).unwrap();
        let mbrb = solve_mbrb(&q).unwrap();
        let tol = 1e-3 * ssc.cost;
        assert!(
            (ssc.cost - rrb.cost).abs() < tol,
            "{} {}",
            ssc.cost,
            rrb.cost
        );
        assert!(
            (ssc.cost - mbrb.cost).abs() < tol,
            "{} {}",
            ssc.cost,
            mbrb.cost
        );
    }
}
