//! The three MOLQ solutions: SSC (Algorithm 1) and the MOVD-based RRB/MBRB
//! pipeline (§5) with the cost-bound optimizer (Algorithm 5).

pub mod movd_based;
pub mod pruned;
pub mod ssc;
pub mod tiled;
pub mod topk;
