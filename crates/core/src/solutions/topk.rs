//! Top-k optimal locations.
//!
//! Planners rarely want a single coordinate: land may be unavailable, prices
//! differ, stakeholders veto. This extension returns the `k` best *distinct*
//! candidate locations, each being the Fermat–Weber optimum of some
//! overlapped Voronoi region's object group, ranked by `MWGD`.
//!
//! The cost-bound machinery generalises cleanly: the pruning bound is the
//! current k-th best cost instead of the single best.

use crate::arena::{FwLanes, GroupSource, MovdArena};
use crate::cancel::CancelToken;
use crate::error::MolqError;
use crate::exec::{ExecConfig, GroupScan, SharedBound};
use crate::movd::Movd;
use crate::object::{MolqQuery, ObjectRef};
use crate::region::Boundary;
use molq_fw::{solve_group_bounded, BatchStats, GroupOutcome};
use molq_geom::Point;
use std::sync::Mutex;

/// One ranked candidate location.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The location.
    pub location: Point,
    /// `MWGD` at the location (the group's `WGD`).
    pub cost: f64,
    /// The serving object group (one object per type).
    pub group: Vec<ObjectRef>,
}

/// Answer of a top-k solve.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKAnswer {
    /// The `k` (or fewer, when the diagram has fewer distinct groups)
    /// best candidates, ascending by cost.
    pub candidates: Vec<Candidate>,
    /// OVRs the overlapper produced.
    pub ovr_count: usize,
    /// The certified approximation factor of the diagram (see
    /// `MovdAnswer::certified_factor`): every candidate's cost is at most
    /// this multiple of the best cost any group could achieve at its rank.
    pub certified_factor: f64,
    /// Optimizer work counters.
    pub stats: BatchStats,
}

impl TopKAnswer {
    /// The answer with its certified approximation factor stamped on —
    /// called by the serving layer with the snapshot's build metadata.
    pub fn with_certified_factor(mut self, factor: f64) -> TopKAnswer {
        self.certified_factor = factor;
        self
    }
}

/// Minimum separation between reported locations, as a fraction of the
/// search-space diagonal — distinct candidates should be *usefully*
/// distinct, not the same corner reached from two adjacent OVRs.
const DISTINCT_FRACTION: f64 = 1e-6;

/// Solves the query and returns the `k` best distinct candidate locations.
pub fn solve_topk(query: &MolqQuery, mode: Boundary, k: usize) -> Result<TopKAnswer, MolqError> {
    solve_topk_with(query, mode, k, ExecConfig::default())
}

/// [`solve_topk`] with an explicit execution configuration: both the MOVD
/// rebuild and the top-k scan use `exec.threads` workers.
pub fn solve_topk_with(
    query: &MolqQuery,
    mode: Boundary,
    k: usize,
    exec: ExecConfig,
) -> Result<TopKAnswer, MolqError> {
    query.validate()?;
    let movd = Movd::overlap_all_with(&query.sets, query.bounds, mode, exec)?;
    solve_topk_prebuilt_cancellable_with(query, &movd, k, &CancelToken::never(), exec)
}

/// Top-k over an already-built MOVD (the serving-path counterpart of
/// [`solve_topk`]; see `crate::solutions::movd_based::solve_prebuilt`).
pub fn solve_topk_prebuilt(
    query: &MolqQuery,
    movd: &Movd,
    k: usize,
) -> Result<TopKAnswer, MolqError> {
    solve_topk_prebuilt_cancellable(query, movd, k, &CancelToken::never())
}

/// [`solve_topk_prebuilt`] with cooperative cancellation: checks `cancel`
/// once per OVR group and returns [`MolqError::Cancelled`] (with progress
/// counters) when the token has fired.
pub fn solve_topk_prebuilt_cancellable(
    query: &MolqQuery,
    movd: &Movd,
    k: usize,
    cancel: &CancelToken,
) -> Result<TopKAnswer, MolqError> {
    solve_topk_prebuilt_cancellable_with(query, movd, k, cancel, ExecConfig::default())
}

/// [`solve_topk_prebuilt_cancellable`] with an explicit execution
/// configuration, on the [`GroupScan`] layer.
///
/// Top-k selection is order-sensitive (spatial dedup can merge candidates),
/// so the scan emits *every* solved, contained candidate and the final
/// ranking is decided by replaying them in group-index order through
/// [`admit`] — exactly what the sequential loop would do. During the scan, a
/// mutex-guarded ranking maintained with the same admission rules feeds the
/// k-th-best cost into a [`SharedBound`] used purely for pruning: the list
/// only ever improves, so that bound is monotonically non-increasing and can
/// never prune a candidate that belongs in the final top-k.
pub fn solve_topk_prebuilt_cancellable_with(
    query: &MolqQuery,
    movd: &Movd,
    k: usize,
    cancel: &CancelToken,
    exec: ExecConfig,
) -> Result<TopKAnswer, MolqError> {
    query.validate()?;
    let lanes = FwLanes::from_movd(query, movd);
    topk_impl(query, movd, &lanes, k, cancel, exec)
}

/// Top-k over an arena-backed diagram with prebuilt cost lanes (the serving
/// path — see `solve_arena_cancellable_with`). Bit-identical to
/// [`solve_topk_prebuilt_cancellable_with`] on the equivalent pointer-based
/// diagram: groups, containment decisions, and Fermat–Weber terms all come
/// from the same kernels.
pub fn solve_topk_arena_cancellable_with(
    query: &MolqQuery,
    arena: &MovdArena,
    lanes: &FwLanes,
    k: usize,
    cancel: &CancelToken,
    exec: ExecConfig,
) -> Result<TopKAnswer, MolqError> {
    query.validate()?;
    topk_impl(query, arena, lanes, k, cancel, exec)
}

fn topk_impl<S: GroupSource>(
    query: &MolqQuery,
    src: &S,
    lanes: &FwLanes,
    k: usize,
    cancel: &CancelToken,
    exec: ExecConfig,
) -> Result<TopKAnswer, MolqError> {
    assert!(k >= 1, "k must be at least 1");
    let min_sep =
        DISTINCT_FRACTION * (query.bounds.width().powi(2) + query.bounds.height().powi(2)).sqrt();

    let ranking: Mutex<Vec<Candidate>> = Mutex::new(Vec::with_capacity(k + 1));
    let bound = SharedBound::new(f64::INFINITY);
    let scan = GroupScan::new(src.source_len(), exec, cancel);
    let out = scan.run(|i, stats| {
        // Prune against the current k-th best (∞ until the list fills).
        let kth = bound.get();
        let (pts, constant) = lanes.group(i);
        let GroupOutcome::Solved(sol) = solve_group_bounded(pts, constant, query.rule, kth, stats)
        else {
            return None;
        };
        // The unconstrained Fermat–Weber optimum is only a valid candidate
        // inside the group's own OVR: there Property 5 makes the group the
        // minimal server, so the reported cost is the true MWGD at the
        // location. Outside, another group serves more cheaply and that
        // region's own solve covers the area.
        if !src.source_contains(i, sol.location) {
            return None;
        }
        if sol.cost < kth {
            // Feed the pruning bound; groups are attached only in the replay.
            let mut list = ranking.lock().expect("ranking mutex poisoned");
            admit(&mut list, sol.location, sol.cost, &[], k, min_sep);
            if list.len() == k {
                bound.propose(list[k - 1].cost);
            }
        }
        Some((sol.location, sol.cost))
    })?;

    let mut best: Vec<Candidate> = Vec::with_capacity(k + 1);
    for &(i, (location, cost)) in &out.items {
        admit(&mut best, location, cost, src.source_group(i), k, min_sep);
    }
    if best.is_empty() {
        return Err(MolqError::NoCandidates);
    }
    Ok(TopKAnswer {
        candidates: best,
        ovr_count: src.source_len(),
        certified_factor: 1.0,
        stats: out.stats,
    })
}

/// Admits one candidate into a cost-ascending top-k list, preserving the
/// invariant that the list is sorted at all times — so `best[k-1].cost` is
/// always the true k-th best pruning bound.
///
/// A near-coincident cheaper candidate *replaces* its existing twin by
/// remove-and-reinsert rather than in-place mutation: mutating `cost` in
/// place would leave the list non-ascending until the next sort, corrupting
/// the bound and the final ranking.
fn admit(
    best: &mut Vec<Candidate>,
    location: Point,
    cost: f64,
    group: &[ObjectRef],
    k: usize,
    min_sep: f64,
) {
    let kth = if best.len() < k {
        f64::INFINITY
    } else {
        best[k - 1].cost
    };
    if cost >= kth {
        return;
    }
    // Spatial dedup: keep the cheaper of two near-coincident candidates.
    if let Some(pos) = best
        .iter()
        .position(|c| c.location.dist(location) <= min_sep)
    {
        if cost >= best[pos].cost {
            return;
        }
        best.remove(pos);
    }
    let at = best.partition_point(|c| c.cost <= cost);
    best.insert(
        at,
        Candidate {
            location,
            cost,
            group: group.to_vec(),
        },
    );
    best.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectSet;
    use crate::solutions::movd_based::solve_rrb;
    use crate::weights::mwgd;
    use molq_fw::StoppingRule;
    use molq_geom::Mbr;

    fn pseudo_set(name: &str, w_t: f64, n: usize, seed: u64) -> ObjectSet {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        ObjectSet::uniform(
            name,
            w_t,
            (0..n)
                .map(|_| Point::new(next() * 100.0, next() * 100.0))
                .collect(),
        )
    }

    fn query() -> MolqQuery {
        MolqQuery::new(
            vec![
                pseudo_set("a", 2.0, 12, 81),
                pseudo_set("b", 1.0, 14, 82),
                pseudo_set("c", 1.5, 10, 83),
            ],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        )
        .with_rule(StoppingRule::Either(1e-9, 50_000))
    }

    #[test]
    fn top1_matches_solve_rrb() {
        let q = query();
        let single = solve_rrb(&q).unwrap();
        let topk = solve_topk(&q, Boundary::Rrb, 1).unwrap();
        assert_eq!(topk.candidates.len(), 1);
        assert!(
            (topk.candidates[0].cost - single.cost).abs() < 1e-9 * single.cost,
            "{} vs {}",
            topk.candidates[0].cost,
            single.cost
        );
    }

    #[test]
    fn candidates_are_sorted_distinct_and_consistent() {
        let q = query();
        let topk = solve_topk(&q, Boundary::Rrb, 5).unwrap();
        assert_eq!(topk.candidates.len(), 5);
        for w in topk.candidates.windows(2) {
            assert!(w[0].cost <= w[1].cost);
            assert!(w[0].location.dist(w[1].location) > 1e-9);
        }
        // Reported costs equal the direct MWGD at each location.
        for c in &topk.candidates {
            let direct = mwgd(c.location, &q);
            assert!(
                (c.cost - direct).abs() < 1e-6 * direct.max(1.0),
                "cost {} vs mwgd {}",
                c.cost,
                direct
            );
        }
    }

    #[test]
    fn prebuilt_topk_matches_fresh_topk() {
        let q = query();
        let movd = Movd::overlap_all(&q.sets, q.bounds, Boundary::Rrb).unwrap();
        let fresh = solve_topk(&q, Boundary::Rrb, 4).unwrap();
        let served = solve_topk_prebuilt(&q, &movd, 4).unwrap();
        assert_eq!(fresh.candidates, served.candidates);
    }

    #[test]
    fn mbrb_topk_matches_rrb_topk_costs() {
        let q = query();
        let a = solve_topk(&q, Boundary::Rrb, 3).unwrap();
        let b = solve_topk(&q, Boundary::Mbrb, 3).unwrap();
        for (x, y) in a.candidates.iter().zip(b.candidates.iter()) {
            assert!(
                (x.cost - y.cost).abs() < 1e-6 * x.cost.max(1.0),
                "{} vs {}",
                x.cost,
                y.cost
            );
        }
    }

    #[test]
    fn arena_topk_is_bit_identical_to_pointer_topk() {
        let q = query();
        for mode in [Boundary::Rrb, Boundary::Mbrb] {
            let movd = Movd::overlap_all(&q.sets, q.bounds, mode).unwrap();
            let arena = MovdArena::from_movd(&movd);
            let lanes = FwLanes::from_arena(&q, &arena);
            for threads in [1, 4] {
                let exec = ExecConfig { threads };
                let pointer =
                    solve_topk_prebuilt_cancellable_with(&q, &movd, 4, &CancelToken::never(), exec)
                        .unwrap();
                let via_arena = solve_topk_arena_cancellable_with(
                    &q,
                    &arena,
                    &lanes,
                    4,
                    &CancelToken::never(),
                    exec,
                )
                .unwrap();
                assert_eq!(pointer.candidates, via_arena.candidates);
                assert_eq!(pointer.ovr_count, via_arena.ovr_count);
            }
        }
    }

    #[test]
    fn cancelled_topk_reports_progress() {
        let q = query();
        let movd = Movd::overlap_all(&q.sets, q.bounds, Boundary::Rrb).unwrap();
        let token = CancelToken::new();
        token.cancel();
        match solve_topk_prebuilt_cancellable(&q, &movd, 3, &token) {
            Err(crate::error::MolqError::Cancelled { completed, total }) => {
                assert_eq!(completed, 0);
                assert_eq!(total, movd.len());
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // An open token answers identically to the plain call.
        let open = CancelToken::new();
        assert_eq!(
            solve_topk_prebuilt(&q, &movd, 3).unwrap().candidates,
            solve_topk_prebuilt_cancellable(&q, &movd, 3, &open)
                .unwrap()
                .candidates
        );
    }

    #[test]
    fn cheaper_duplicate_into_full_list_stays_sorted() {
        // Regression for the ordering bug: admitting a cheaper near-twin of
        // an already-ranked candidate must keep the list cost-ascending (the
        // old in-place `existing.cost = ...` mutation left it unsorted, so
        // `best[k-1].cost` — the pruning bound — could be wrong).
        let k = 3;
        let min_sep = 0.5;
        let mut best = Vec::new();
        for (i, cost) in [1.0, 2.0, 3.0].into_iter().enumerate() {
            admit(
                &mut best,
                Point::new(10.0 * i as f64, 0.0),
                cost,
                &[],
                k,
                min_sep,
            );
        }
        assert_eq!(best.len(), k);
        // A near-coincident twin of the worst (cost 3.0 at x = 20) arrives
        // cheaper than everything: it must replace its twin AND move to the
        // front, leaving the bound at 2.0 — not stay third with cost 0.5.
        admit(&mut best, Point::new(20.1, 0.0), 0.5, &[], k, min_sep);
        assert_eq!(best.len(), k);
        let costs: Vec<f64> = best.iter().map(|c| c.cost).collect();
        assert_eq!(costs, vec![0.5, 1.0, 2.0]);
        assert!(best.windows(2).all(|w| w[0].cost <= w[1].cost));
        // The replaced twin is gone, not duplicated.
        assert_eq!(
            best.iter()
                .filter(|c| c.location.dist(Point::new(20.1, 0.0)) <= min_sep)
                .count(),
            1
        );
        // And a more expensive near-twin never downgrades an entry.
        admit(&mut best, Point::new(0.05, 0.0), 1.5, &[], k, min_sep);
        let costs: Vec<f64> = best.iter().map(|c| c.cost).collect();
        assert_eq!(costs, vec![0.5, 1.0, 2.0]);
    }

    #[test]
    fn k_larger_than_groups_returns_what_exists() {
        let q = MolqQuery::new(
            vec![pseudo_set("a", 1.0, 2, 9)],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        );
        let topk = solve_topk(&q, Boundary::Rrb, 10).unwrap();
        assert!(topk.candidates.len() <= 2);
        assert!(!topk.candidates.is_empty());
    }
}
