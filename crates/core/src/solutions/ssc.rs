//! The Sequential Scan Combinations baseline (Algorithm 1).
//!
//! Enumerates every object combination `G ∈ P₁ × … × Pₙ`, computes the
//! Fermat–Weber optimum of each, and keeps the best. The exact two-point
//! optimum of each combination's first two objects provides the upper-bound
//! filter of lines 4–5, and the cost-bound prune of Algorithm 5 is applied
//! inside the iteration (§5.4: "the cost-bound approach can be used in the
//! SSC solution as well").

use crate::cancel::CancelToken;
use crate::error::MolqError;
use crate::exec::{ExecConfig, GroupScan, SharedBound};
use crate::object::{MolqQuery, ObjectRef};
use molq_fw::{solve_group_bounded, BatchStats, GroupOutcome};
use molq_geom::Point;

/// Answer of the SSC baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct SscAnswer {
    /// The optimal location.
    pub location: Point,
    /// `MWGD` at the optimal location (= the winning group's `WGD`).
    pub cost: f64,
    /// The winning combination.
    pub group: Vec<ObjectRef>,
    /// Combinations enumerated (`∏|Pᵢ|`).
    pub combinations: u128,
    /// Work counters (prefiltered counts are the Algorithm 1 line-5 skips).
    pub stats: BatchStats,
}

/// Solves the query by sequential scan (Algorithm 1).
///
/// Cost grows with `∏|Pᵢ|`; the caller is expected to keep set sizes small
/// (this is the paper's baseline, not a practical solution).
pub fn solve_ssc(query: &MolqQuery) -> Result<SscAnswer, MolqError> {
    solve_ssc_with(query, ExecConfig::default())
}

/// [`solve_ssc`] with an explicit execution configuration: the combination
/// scan runs on the [`GroupScan`] layer. Each scan index decodes to the
/// odometer's digits (mixed radix, last set fastest), so the enumeration
/// order — and with it the serial answer — is exactly Algorithm 1's.
pub fn solve_ssc_with(query: &MolqQuery, exec: ExecConfig) -> Result<SscAnswer, MolqError> {
    query.validate()?;
    let combos = query.combination_count();
    if combos > 50_000_000 {
        return Err(MolqError::TooManyCombinations(combos));
    }

    let ubound = SharedBound::new(f64::INFINITY);
    let never = CancelToken::never();
    let scan = GroupScan::new(combos as usize, exec, &never);
    let out = scan
        .run(|i, stats| {
            let group = decode_combo(query, i);
            let (pts, constant) = query.fw_terms(&group);
            let bound = ubound.get();
            match solve_group_bounded(&pts, constant, query.rule, bound, stats) {
                GroupOutcome::Solved(sol) if sol.cost <= bound => {
                    ubound.propose(sol.cost);
                    Some((sol.cost, sol.location))
                }
                _ => None,
            }
        })
        .expect("never-token scan cannot be cancelled");

    // Reduce by (cost, combination index): the first combination achieving
    // the global minimum, as the sequential strict-< update would keep.
    let mut best: Option<(usize, f64, Point)> = None;
    for &(i, (cost, location)) in &out.items {
        if best.map_or(true, |(_, c, _)| cost < c) {
            best = Some((i, cost, location));
        }
    }
    let (winner, cost, location) = best.expect("at least one combination solved");
    Ok(SscAnswer {
        location,
        cost,
        group: decode_combo(query, winner),
        combinations: combos,
        stats: out.stats,
    })
}

/// Decodes a combination index into the odometer's object group: the index
/// is the mixed-radix number whose least-significant digit is the last set
/// (the digit Algorithm 1's odometer increments first).
fn decode_combo(query: &MolqQuery, mut index: usize) -> Vec<ObjectRef> {
    let n = query.sets.len();
    let mut group: Vec<ObjectRef> = (0..n).map(|s| ObjectRef { set: s, index: 0 }).collect();
    for s in (0..n).rev() {
        let len = query.sets[s].len();
        group[s].index = index % len;
        index /= len;
    }
    group
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectSet;
    use crate::weights::mwgd;
    use molq_fw::StoppingRule;
    use molq_geom::{Mbr, Point};

    fn pseudo_set(name: &str, w_t: f64, n: usize, seed: u64) -> ObjectSet {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        ObjectSet::uniform(
            name,
            w_t,
            (0..n)
                .map(|_| Point::new(next() * 100.0, next() * 100.0))
                .collect(),
        )
    }

    #[test]
    fn single_combination() {
        let a = ObjectSet::uniform("a", 1.0, vec![Point::new(0.0, 0.0)]);
        let b = ObjectSet::uniform("b", 1.0, vec![Point::new(10.0, 0.0)]);
        let q = MolqQuery::new(vec![a, b], Mbr::new(0.0, 0.0, 10.0, 10.0));
        let ans = solve_ssc(&q).unwrap();
        assert_eq!(ans.combinations, 1);
        // Equal weights: anywhere on the segment is optimal, cost = 10.
        assert!((ans.cost - 10.0).abs() < 1e-9);
    }

    #[test]
    fn answer_cost_matches_mwgd_at_location() {
        let q = MolqQuery::new(
            vec![
                pseudo_set("a", 2.0, 4, 1),
                pseudo_set("b", 1.0, 5, 2),
                pseudo_set("c", 3.0, 3, 3),
            ],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        )
        .with_rule(StoppingRule::Either(1e-9, 50_000));
        let ans = solve_ssc(&q).unwrap();
        assert_eq!(ans.combinations, 60);
        let direct = mwgd(ans.location, &q);
        assert!(
            (ans.cost - direct).abs() < 1e-6 * direct.max(1.0),
            "cost {} vs mwgd {}",
            ans.cost,
            direct
        );
    }

    #[test]
    fn beats_dense_grid_scan() {
        let q = MolqQuery::new(
            vec![pseudo_set("a", 1.0, 5, 7), pseudo_set("b", 2.0, 5, 8)],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        )
        .with_rule(StoppingRule::Either(1e-9, 50_000));
        let ans = solve_ssc(&q).unwrap();
        let mut grid_best = f64::INFINITY;
        for i in 0..=50 {
            for j in 0..=50 {
                let p = Point::new(i as f64 * 2.0, j as f64 * 2.0);
                grid_best = grid_best.min(mwgd(p, &q));
            }
        }
        assert!(
            ans.cost <= grid_best + 1e-6,
            "{} vs {}",
            ans.cost,
            grid_best
        );
    }

    #[test]
    fn filter_reduces_work() {
        let q = MolqQuery::new(
            vec![
                pseudo_set("a", 1.0, 8, 21),
                pseudo_set("b", 1.0, 8, 22),
                pseudo_set("c", 1.0, 8, 23),
                pseudo_set("d", 1.0, 8, 24),
            ],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        );
        let ans = solve_ssc(&q).unwrap();
        assert!(
            ans.stats.prefiltered_groups + ans.stats.pruned_groups > 0,
            "no filtering happened: {:?}",
            ans.stats
        );
    }

    #[test]
    fn refuses_explosive_products() {
        let q = MolqQuery::new(
            vec![
                pseudo_set("a", 1.0, 5000, 1),
                pseudo_set("b", 1.0, 5000, 2),
                pseudo_set("c", 1.0, 5000, 3),
            ],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        );
        assert!(solve_ssc(&q).is_err());
    }
}
