//! The Sequential Scan Combinations baseline (Algorithm 1).
//!
//! Enumerates every object combination `G ∈ P₁ × … × Pₙ`, computes the
//! Fermat–Weber optimum of each, and keeps the best. The exact two-point
//! optimum of each combination's first two objects provides the upper-bound
//! filter of lines 4–5, and the cost-bound prune of Algorithm 5 is applied
//! inside the iteration (§5.4: "the cost-bound approach can be used in the
//! SSC solution as well").

use crate::error::MolqError;
use crate::object::{MolqQuery, ObjectRef};
use molq_fw::{solve_group_bounded, BatchStats, GroupOutcome};
use molq_geom::Point;

/// Answer of the SSC baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct SscAnswer {
    /// The optimal location.
    pub location: Point,
    /// `MWGD` at the optimal location (= the winning group's `WGD`).
    pub cost: f64,
    /// The winning combination.
    pub group: Vec<ObjectRef>,
    /// Combinations enumerated (`∏|Pᵢ|`).
    pub combinations: u128,
    /// Work counters (prefiltered counts are the Algorithm 1 line-5 skips).
    pub stats: BatchStats,
}

/// Solves the query by sequential scan (Algorithm 1).
///
/// Cost grows with `∏|Pᵢ|`; the caller is expected to keep set sizes small
/// (this is the paper's baseline, not a practical solution).
pub fn solve_ssc(query: &MolqQuery) -> Result<SscAnswer, MolqError> {
    query.validate()?;
    let combos = query.combination_count();
    if combos > 50_000_000 {
        return Err(MolqError::TooManyCombinations(combos));
    }

    let n = query.sets.len();
    let mut idx = vec![0usize; n];
    let mut group: Vec<ObjectRef> = (0..n).map(|s| ObjectRef { set: s, index: 0 }).collect();
    let mut ubound = f64::INFINITY;
    let mut best: Option<(Point, Vec<ObjectRef>)> = None;
    let mut stats = BatchStats::default();

    loop {
        for (s, &i) in idx.iter().enumerate() {
            group[s] = ObjectRef { set: s, index: i };
        }
        let (pts, constant) = query.fw_terms(&group);
        match solve_group_bounded(&pts, constant, query.rule, ubound, &mut stats) {
            GroupOutcome::Solved(sol) => {
                if sol.cost < ubound {
                    ubound = sol.cost;
                    best = Some((sol.location, group.clone()));
                }
            }
            GroupOutcome::Prefiltered | GroupOutcome::Pruned => {}
        }

        // Odometer increment over the cartesian product.
        let mut k = n;
        loop {
            if k == 0 {
                let (location, group) = best.expect("at least one combination solved");
                return Ok(SscAnswer {
                    location,
                    cost: ubound,
                    group,
                    combinations: combos,
                    stats,
                });
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < query.sets[k].len() {
                break;
            }
            idx[k] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectSet;
    use crate::weights::mwgd;
    use molq_fw::StoppingRule;
    use molq_geom::{Mbr, Point};

    fn pseudo_set(name: &str, w_t: f64, n: usize, seed: u64) -> ObjectSet {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        ObjectSet::uniform(
            name,
            w_t,
            (0..n)
                .map(|_| Point::new(next() * 100.0, next() * 100.0))
                .collect(),
        )
    }

    #[test]
    fn single_combination() {
        let a = ObjectSet::uniform("a", 1.0, vec![Point::new(0.0, 0.0)]);
        let b = ObjectSet::uniform("b", 1.0, vec![Point::new(10.0, 0.0)]);
        let q = MolqQuery::new(vec![a, b], Mbr::new(0.0, 0.0, 10.0, 10.0));
        let ans = solve_ssc(&q).unwrap();
        assert_eq!(ans.combinations, 1);
        // Equal weights: anywhere on the segment is optimal, cost = 10.
        assert!((ans.cost - 10.0).abs() < 1e-9);
    }

    #[test]
    fn answer_cost_matches_mwgd_at_location() {
        let q = MolqQuery::new(
            vec![
                pseudo_set("a", 2.0, 4, 1),
                pseudo_set("b", 1.0, 5, 2),
                pseudo_set("c", 3.0, 3, 3),
            ],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        )
        .with_rule(StoppingRule::Either(1e-9, 50_000));
        let ans = solve_ssc(&q).unwrap();
        assert_eq!(ans.combinations, 60);
        let direct = mwgd(ans.location, &q);
        assert!(
            (ans.cost - direct).abs() < 1e-6 * direct.max(1.0),
            "cost {} vs mwgd {}",
            ans.cost,
            direct
        );
    }

    #[test]
    fn beats_dense_grid_scan() {
        let q = MolqQuery::new(
            vec![pseudo_set("a", 1.0, 5, 7), pseudo_set("b", 2.0, 5, 8)],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        )
        .with_rule(StoppingRule::Either(1e-9, 50_000));
        let ans = solve_ssc(&q).unwrap();
        let mut grid_best = f64::INFINITY;
        for i in 0..=50 {
            for j in 0..=50 {
                let p = Point::new(i as f64 * 2.0, j as f64 * 2.0);
                grid_best = grid_best.min(mwgd(p, &q));
            }
        }
        assert!(
            ans.cost <= grid_best + 1e-6,
            "{} vs {}",
            ans.cost,
            grid_best
        );
    }

    #[test]
    fn filter_reduces_work() {
        let q = MolqQuery::new(
            vec![
                pseudo_set("a", 1.0, 8, 21),
                pseudo_set("b", 1.0, 8, 22),
                pseudo_set("c", 1.0, 8, 23),
                pseudo_set("d", 1.0, 8, 24),
            ],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        );
        let ans = solve_ssc(&q).unwrap();
        assert!(
            ans.stats.prefiltered_groups + ans.stats.pruned_groups > 0,
            "no filtering happened: {:?}",
            ans.stats
        );
    }

    #[test]
    fn refuses_explosive_products() {
        let q = MolqQuery::new(
            vec![
                pseudo_set("a", 1.0, 5000, 1),
                pseudo_set("b", 1.0, 5000, 2),
                pseudo_set("c", 1.0, 5000, 3),
            ],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        );
        assert!(solve_ssc(&q).is_err());
    }
}
