//! Tiled (bounded-memory) MOLQ evaluation — the paper's other future-work
//! direction: "using disk-based techniques that load a portion of data into
//! the main memory".
//!
//! The search space is partitioned into a `t × t` grid of tiles. For each
//! tile, every type's basic MOVD is clipped to the tile rectangle and the ⊕
//! fold plus the cost-bound optimizer run tile-locally, sharing one global
//! upper bound across tiles (the order visits tiles center-out, so a good
//! bound is usually found early and later tiles prune aggressively). Peak
//! memory is the largest *tile* MOVD rather than the full-space MOVD —
//! exactly the effect a disk-resident implementation would buy — while the
//! answer remains identical because Voronoi cells that intersect a tile are
//! retained (a location in the tile is served by the same nearest objects
//! whether or not the diagram was clipped).

use crate::error::MolqError;
use crate::footprint::Footprint;
use crate::movd::{Movd, Ovr};
use crate::object::MolqQuery;
use crate::region::{Boundary, Region};
use molq_fw::{solve_group_bounded, BatchStats, GroupOutcome};
use molq_geom::{ConvexPolygon, Mbr, Point};

/// Answer of the tiled solve, with the peak per-tile footprint the tiling is
/// designed to bound.
#[derive(Debug, Clone, PartialEq)]
pub struct TiledAnswer {
    /// The optimal location.
    pub location: Point,
    /// `MWGD` at the optimal location.
    pub cost: f64,
    /// Number of tiles processed.
    pub tiles: usize,
    /// Largest single-tile MOVD footprint in bytes (the memory high-water
    /// mark a disk-based implementation would need in RAM).
    pub peak_tile_bytes: usize,
    /// Total OVRs across all tiles.
    pub total_ovrs: usize,
    /// Optimizer work counters.
    pub stats: BatchStats,
}

/// Clips every OVR of a basic MOVD to a tile rectangle, dropping OVRs that
/// miss the tile.
fn clip_to_tile(movd: &Movd, tile: &Mbr) -> Movd {
    let tile_poly = ConvexPolygon::from_mbr(tile);
    let ovrs = movd
        .ovrs
        .iter()
        .filter_map(|ovr| {
            let region = match &ovr.region {
                Region::Convex(p) => {
                    let clipped = p.intersect(&tile_poly);
                    if clipped.is_empty() {
                        return None;
                    }
                    Region::Convex(clipped)
                }
                Region::Rect(m) => {
                    let i = m.intersection(tile);
                    if i.is_empty() {
                        return None;
                    }
                    Region::Rect(i)
                }
                general @ Region::General(_) => {
                    // Clip through the general intersection path.
                    general.intersect(&Region::Rect(*tile), crate::region::Boundary::Rrb)?
                }
            };
            Some(Ovr {
                region,
                pois: ovr.pois.clone(),
            })
        })
        .collect();
    Movd {
        bounds: *tile,
        ovrs,
    }
}

/// Solves the query tile by tile with bounded per-tile memory.
///
/// `tiles_per_side` ≥ 1; `1` degenerates to the plain MOVD solution.
pub fn solve_tiled(
    query: &MolqQuery,
    mode: Boundary,
    tiles_per_side: usize,
) -> Result<TiledAnswer, MolqError> {
    assert!(tiles_per_side >= 1, "need at least one tile");
    query.validate()?;
    let b = &query.bounds;

    // Basic diagrams are built once (they are the "on-disk" inputs a paged
    // implementation would stream); only their tile clips are held "in RAM"
    // together.
    let basics: Vec<Movd> = query
        .sets
        .iter()
        .enumerate()
        .map(|(i, set)| Movd::basic(set, i, *b).map_err(MolqError::from))
        .collect::<Result<_, MolqError>>()?;

    // Visit tiles center-out so a competitive bound appears early.
    let t = tiles_per_side;
    let mut order: Vec<(usize, usize)> = (0..t).flat_map(|i| (0..t).map(move |j| (i, j))).collect();
    let c = (t as f64 - 1.0) / 2.0;
    order.sort_by(|a, b| {
        let da = (a.0 as f64 - c).abs() + (a.1 as f64 - c).abs();
        let db = (b.0 as f64 - c).abs() + (b.1 as f64 - c).abs();
        da.total_cmp(&db)
    });

    let (tw, th) = (b.width() / t as f64, b.height() / t as f64);
    let mut cbound = f64::INFINITY;
    let mut best: Option<Point> = None;
    let mut stats = BatchStats::default();
    let mut peak_tile_bytes = 0usize;
    let mut total_ovrs = 0usize;

    for (i, j) in order {
        // Snap the outermost edges to the exact bounds so accumulated
        // floating-point error can never leave an uncovered sliver at the
        // domain boundary.
        let max_x = if i + 1 == t {
            b.max_x
        } else {
            b.min_x + (i + 1) as f64 * tw
        };
        let max_y = if j + 1 == t {
            b.max_y
        } else {
            b.min_y + (j + 1) as f64 * th
        };
        let tile = Mbr::new(
            b.min_x + i as f64 * tw,
            b.min_y + j as f64 * th,
            max_x,
            max_y,
        );
        let mut acc = Movd::identity(tile);
        for basic in &basics {
            let clipped = clip_to_tile(basic, &tile);
            acc = acc.overlap(&clipped, mode);
        }
        peak_tile_bytes = peak_tile_bytes.max(acc.footprint_bytes());
        total_ovrs += acc.len();
        for ovr in &acc.ovrs {
            let (pts, constant) = query.fw_terms(&ovr.pois);
            if let GroupOutcome::Solved(sol) =
                solve_group_bounded(&pts, constant, query.rule, cbound, &mut stats)
            {
                if sol.cost < cbound {
                    cbound = sol.cost;
                    best = Some(sol.location);
                }
            }
        }
    }

    let location = best.ok_or(MolqError::NoCandidates)?;
    Ok(TiledAnswer {
        location,
        cost: cbound,
        tiles: t * t,
        peak_tile_bytes,
        total_ovrs,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectSet;
    use crate::solutions::movd_based::solve_rrb;
    use molq_fw::StoppingRule;

    fn pseudo_set(name: &str, w_t: f64, n: usize, seed: u64) -> ObjectSet {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        ObjectSet::uniform(
            name,
            w_t,
            (0..n)
                .map(|_| Point::new(next() * 100.0, next() * 100.0))
                .collect(),
        )
    }

    fn query() -> MolqQuery {
        MolqQuery::new(
            vec![
                pseudo_set("a", 2.0, 15, 61),
                pseudo_set("b", 1.0, 18, 62),
                pseudo_set("c", 1.5, 12, 63),
            ],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        )
        .with_rule(StoppingRule::Either(1e-9, 50_000))
    }

    #[test]
    fn single_tile_matches_plain_rrb() {
        let q = query();
        let plain = solve_rrb(&q).unwrap();
        let tiled = solve_tiled(&q, Boundary::Rrb, 1).unwrap();
        assert!((plain.cost - tiled.cost).abs() < 1e-9 * plain.cost);
    }

    #[test]
    fn many_tiles_same_answer() {
        let q = query();
        let plain = solve_rrb(&q).unwrap();
        for t in [2usize, 3, 5] {
            let tiled = solve_tiled(&q, Boundary::Rrb, t).unwrap();
            assert!(
                (plain.cost - tiled.cost).abs() < 1e-6 * plain.cost,
                "t={t}: plain {} vs tiled {}",
                plain.cost,
                tiled.cost
            );
        }
    }

    #[test]
    fn tiling_bounds_peak_memory() {
        let q = MolqQuery::new(
            vec![pseudo_set("a", 1.0, 80, 71), pseudo_set("b", 1.0, 80, 72)],
            Mbr::new(0.0, 0.0, 100.0, 100.0),
        );
        let whole = solve_tiled(&q, Boundary::Rrb, 1).unwrap();
        let tiled = solve_tiled(&q, Boundary::Rrb, 4).unwrap();
        assert!(
            tiled.peak_tile_bytes < whole.peak_tile_bytes / 2,
            "tiled {} vs whole {}",
            tiled.peak_tile_bytes,
            whole.peak_tile_bytes
        );
        assert!((whole.cost - tiled.cost).abs() < 1e-6 * whole.cost);
    }

    #[test]
    fn mbrb_mode_tiles_too() {
        let q = query();
        let plain = solve_rrb(&q).unwrap();
        let tiled = solve_tiled(&q, Boundary::Mbrb, 3).unwrap();
        assert!((plain.cost - tiled.cost).abs() < 1e-6 * plain.cost);
    }
}
