//! The MOLQ core: the OVD/MOVD model and the paper's three query solutions.
//!
//! This crate implements the primary contribution of *"Multi-Criteria Optimal
//! Location Query with Overlapping Voronoi Diagrams"* (EDBT 2014):
//!
//! * the weighted-distance query model (Eqs. 1–4): [`weights`], [`object`],
//! * the Overlapped Voronoi Diagram model (§4): [`movd`] with the ⊕ overlap
//!   operation and its algebraic laws,
//! * the plane-sweep overlap of Algorithm 2 with the **RRB** (real-region,
//!   Algorithm 3) and **MBRB** (minimum-bounding-rectangle, Algorithm 4)
//!   event handlers: [`sweep`],
//! * the three MOLQ solutions (§3, §5): [`solutions::ssc`] (Sequential Scan
//!   Combinations, Algorithm 1) and the MOVD-based
//!   [`solutions::movd_based`] RRB/MBRB pipeline with the cost-bound
//!   optimizer of Algorithm 5,
//! * deep memory accounting for the paper's memory experiments:
//!   [`footprint`].
//!
//! # Quick start
//!
//! ```
//! use molq_core::prelude::*;
//! use molq_geom::{Mbr, Point};
//!
//! let bounds = Mbr::new(0.0, 0.0, 10.0, 10.0);
//! let schools = ObjectSet::uniform("schools", 2.0, vec![
//!     Point::new(2.0, 2.0), Point::new(8.0, 3.0),
//! ]);
//! let shops = ObjectSet::uniform("shops", 1.0, vec![
//!     Point::new(3.0, 8.0), Point::new(7.0, 7.0),
//! ]);
//! let query = MolqQuery::new(vec![schools, shops], bounds);
//! let answer = solve_rrb(&query).unwrap();
//! assert!(bounds.contains(answer.location));
//! ```

pub mod arena;
pub mod build;
pub mod cancel;
pub mod error;
pub mod exec;
pub mod footprint;
pub mod incr;
pub mod locate_grid;
pub mod movd;
pub mod movd_index;
pub mod object;
pub mod region;
pub mod solutions;
pub mod sweep;
pub mod weights;

/// Convenient re-exports of the public API.
pub mod prelude {
    pub use crate::arena::{ArenaBufferBytes, FwLanes, GroupSource, MovdArena, PatchEntry};
    pub use crate::build::{build_movd, BuildMeta, BuildMode, BuildPlan};
    pub use crate::cancel::CancelToken;
    pub use crate::error::MolqError;
    pub use crate::exec::{ExecConfig, GroupScan, ScanOutput, SharedBound};
    pub use crate::footprint::Footprint;
    pub use crate::incr::{movd_bits_eq, region_bits_eq, LiveMovd, PatchStats, Update};
    pub use crate::locate_grid::LocateGrid;
    pub use crate::movd::{Movd, Ovr};
    pub use crate::movd_index::MovdIndex;
    pub use crate::object::{MolqQuery, ObjectRef, ObjectSet, SpatialObject};
    pub use crate::region::{Boundary, Region};
    pub use crate::solutions::movd_based::{
        solve_arena_cancellable_with, solve_mbrb, solve_movd, solve_movd_with, solve_prebuilt,
        solve_prebuilt_cancellable, solve_prebuilt_cancellable_with, solve_rrb, solve_weighted_rrb,
        solve_weighted_rrb_cancellable, solve_weighted_rrb_with, MovdAnswer,
    };
    pub use crate::solutions::pruned::{solve_pruned, PrunedAnswer};
    pub use crate::solutions::ssc::{solve_ssc, solve_ssc_with};
    pub use crate::solutions::tiled::{solve_tiled, TiledAnswer};
    pub use crate::solutions::topk::{
        solve_topk, solve_topk_arena_cancellable_with, solve_topk_prebuilt,
        solve_topk_prebuilt_cancellable, solve_topk_prebuilt_cancellable_with, solve_topk_with,
        Candidate, TopKAnswer,
    };
    pub use crate::weights::{mwgd, wd, wgd, WeightFunction};
}

pub use prelude::*;
