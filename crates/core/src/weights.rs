//! Weight functions and the weighted-distance query model (Eqs. 1–4).

use crate::object::{MolqQuery, ObjectRef, SpatialObject};
use molq_geom::Point;

/// A monotone weight function `ς(d, w)`, applied to either the object weight
/// (`ς^o`) or the type weight (`ς^t`).
///
/// The paper's convention is that smaller weighted distances are better and
/// "more preferred objects have smaller weights".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightFunction {
    /// `ς(d, w) = d · w` — the multiplicatively-based function used in every
    /// experiment of the paper.
    #[default]
    Multiplicative,
    /// `ς(d, w) = d + w`.
    Additive,
}

impl WeightFunction {
    /// Applies the function.
    #[inline]
    pub fn apply(&self, d: f64, w: f64) -> f64 {
        match self {
            WeightFunction::Multiplicative => d * w,
            WeightFunction::Additive => d + w,
        }
    }
}

/// Weighted distance `WD(q, p) = ς^t(ς^o(d(q, p.l), p.w^o), p.w^t)` (Eq. 1).
#[inline]
pub fn wd(q: Point, p: &SpatialObject, tf: WeightFunction, of: WeightFunction) -> f64 {
    tf.apply(of.apply(q.dist(p.loc), p.w_o), p.w_t)
}

/// Weighted group distance `WGD(q, G) = Σ WD(q, pᵢ)` (Eq. 2), where the
/// group holds one object per type.
pub fn wgd(q: Point, query: &MolqQuery, group: &[ObjectRef]) -> f64 {
    group
        .iter()
        .map(|r| {
            let set = &query.sets[r.set];
            wd(
                q,
                &set.objects[r.index],
                query.type_weight_fn,
                set.object_weight_fn,
            )
        })
        .sum()
}

/// Minimum weighted group distance `MWGD(q, E)` (Eq. 3): for each type, the
/// closest object in weighted distance; summed. Evaluated directly in
/// `O(Σ|Pᵢ|)` — the ground-truth oracle the solutions are tested against.
pub fn mwgd(q: Point, query: &MolqQuery) -> f64 {
    query
        .sets
        .iter()
        .map(|set| {
            set.objects
                .iter()
                .map(|p| wd(q, p, query.type_weight_fn, set.object_weight_fn))
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

/// The group of per-type weighted-nearest objects at `q` (the argmin version
/// of [`mwgd`]).
pub fn nearest_group(q: Point, query: &MolqQuery) -> Vec<ObjectRef> {
    query
        .sets
        .iter()
        .enumerate()
        .map(|(si, set)| {
            let best = set
                .objects
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    wd(q, a, query.type_weight_fn, set.object_weight_fn).total_cmp(&wd(
                        q,
                        b,
                        query.type_weight_fn,
                        set.object_weight_fn,
                    ))
                })
                .expect("object sets are non-empty")
                .0;
            ObjectRef {
                set: si,
                index: best,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectSet;
    use molq_geom::Mbr;

    fn query() -> MolqQuery {
        let a = ObjectSet::uniform("a", 2.0, vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let b = ObjectSet::uniform("b", 1.0, vec![Point::new(0.0, 5.0), Point::new(10.0, 5.0)]);
        MolqQuery::new(vec![a, b], Mbr::new(0.0, 0.0, 10.0, 10.0))
    }

    #[test]
    fn weight_functions() {
        assert_eq!(WeightFunction::Multiplicative.apply(3.0, 2.0), 6.0);
        assert_eq!(WeightFunction::Additive.apply(3.0, 2.0), 5.0);
    }

    #[test]
    fn wd_composes_both_functions() {
        let p = SpatialObject {
            loc: Point::new(0.0, 0.0),
            w_t: 2.0,
            w_o: 3.0,
        };
        // Multiplicative ς^t and ς^o: d · w_o · w_t.
        let q = Point::new(4.0, 0.0);
        assert_eq!(
            wd(
                q,
                &p,
                WeightFunction::Multiplicative,
                WeightFunction::Multiplicative
            ),
            24.0
        );
        // Additive ς^o then multiplicative ς^t: (d + w_o) · w_t.
        assert_eq!(
            wd(
                q,
                &p,
                WeightFunction::Multiplicative,
                WeightFunction::Additive
            ),
            14.0
        );
    }

    #[test]
    fn mwgd_picks_per_type_minimum() {
        let q = query();
        // At (0,0): nearest of set a is (0,0) with wd 0; nearest of set b is
        // (0,5) with wd 5.
        assert_eq!(mwgd(Point::new(0.0, 0.0), &q), 5.0);
        // At (10,2.5): set a -> (10,0) wd 2.5*2 = 5; set b -> (10,5) wd 2.5.
        assert_eq!(mwgd(Point::new(10.0, 2.5), &q), 7.5);
    }

    #[test]
    fn nearest_group_matches_mwgd() {
        let q = query();
        for p in [
            Point::new(1.0, 1.0),
            Point::new(9.0, 9.0),
            Point::new(5.0, 5.0),
        ] {
            let g = nearest_group(p, &q);
            assert_eq!(wgd(p, &q, &g), mwgd(p, &q));
        }
    }

    #[test]
    fn wgd_is_sum_over_group() {
        let q = query();
        let g = vec![
            ObjectRef { set: 0, index: 1 },
            ObjectRef { set: 1, index: 0 },
        ];
        let p = Point::new(0.0, 0.0);
        // (10,0) with w_t=2: 20; (0,5) with w_t=1: 5.
        assert_eq!(wgd(p, &q, &g), 25.0);
    }
}
