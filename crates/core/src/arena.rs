//! Contiguous arena layout for a built MOVD.
//!
//! A pointer-rich [`Movd`] scatters every OVR's polygon vertices, group
//! references, and per-region `Vec` headers across the heap: the per-group
//! scan pays a cache miss per hop and the snapshot store re-encodes the
//! structures one by one. [`MovdArena`] flattens the whole diagram into six
//! flat buffers in CSR style (the same layout discipline as
//! [`crate::locate_grid::LocateGrid`]):
//!
//! ```text
//! kinds      [n]          region kind per OVR (convex / rect / general)
//! poly_off   [n + 1]      OVR i owns polygons poly_off[i]..poly_off[i+1]
//! vert_off   [npolys + 1] polygon p owns verts vert_off[p]..vert_off[p+1]
//! verts      [nverts]     every polygon vertex, in OVR order
//! group_off  [n + 1]      OVR i owns pois group_off[i]..group_off[i+1]
//! pois       [npois]      every group member, in OVR order
//! ```
//!
//! A `Rect` region is stored as one two-vertex "polygon" (min corner, max
//! corner), so all three representations share the vertex buffer. The arena
//! is bit-exact: [`MovdArena::to_movd`] reconstructs a diagram whose every
//! IEEE-754 coordinate equals the original's, and the snapshot store
//! (`molq-store`) writes the buffers verbatim — save is a bulk copy, restore
//! is [`MovdArena::from_raw`] validation plus a bulk copy.
//!
//! [`FwLanes`] is the derived (never persisted) SoA cost block: per group
//! one contiguous run of Fermat–Weber weighted points plus an additive
//! constant, precomputed from a query so the optimizer scan streams over
//! flat `f64` lanes instead of chasing `ObjectRef`s through the object sets.

use crate::movd::{Movd, Ovr};
use crate::object::{MolqQuery, ObjectRef};
use crate::region::Region;
use molq_fw::WeightedPoint;
use molq_geom::{convex_contains, ring_contains, ConvexPolygon, Mbr, Point, Polygon};

/// Region kind tag: exact convex region ([`Region::Convex`]).
pub const KIND_CONVEX: u8 = 0;
/// Region kind tag: bounding rectangle ([`Region::Rect`]).
pub const KIND_RECT: u8 = 1;
/// Region kind tag: general multi-polygon ([`Region::General`]).
pub const KIND_GENERAL: u8 = 2;

/// Size of a `Vec` header — kept in the byte accounting so the arena reports
/// the same `movd_bytes` the pointer layout did (see [`crate::footprint`]).
const VEC_HEADER: usize = 24;

/// A complete MOVD flattened into contiguous index-based buffers.
///
/// Invariants (validated by [`MovdArena::from_raw`]):
/// * `poly_off` and `group_off` have `len() + 1` entries, start at 0, are
///   non-decreasing, and end at the owned buffer's length;
/// * `vert_off` has `poly_off[n] + 1` entries with the same CSR shape over
///   `verts`;
/// * every kind is one of the three tags; convex and rect OVRs own exactly
///   one polygon, and a rect polygon has exactly two vertices.
///
/// Group (`pois`) ordering is *not* an invariant — diagrams in pre-canonical
/// sweep order are representable, exactly as they were with [`Movd`].
#[derive(Debug, Clone, PartialEq)]
pub struct MovdArena {
    bounds: Mbr,
    kinds: Vec<u8>,
    poly_off: Vec<u32>,
    vert_off: Vec<u32>,
    verts: Vec<Point>,
    group_off: Vec<u32>,
    pois: Vec<ObjectRef>,
}

/// Byte sizes of the arena's buffers (reported by `/stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaBufferBytes {
    /// `kinds` buffer bytes.
    pub kinds: usize,
    /// `poly_off` buffer bytes.
    pub poly_off: usize,
    /// `vert_off` buffer bytes.
    pub vert_off: usize,
    /// `verts` buffer bytes.
    pub verts: usize,
    /// `group_off` buffer bytes.
    pub group_off: usize,
    /// `pois` buffer bytes.
    pub pois: usize,
}

impl ArenaBufferBytes {
    /// Sum over all buffers.
    pub fn total(&self) -> usize {
        self.kinds + self.poly_off + self.vert_off + self.verts + self.group_off + self.pois
    }
}

/// One entry of an incremental patch: either an OVR carried over from the
/// old arena (geometry copied bit-for-bit, group re-targeted through the
/// site remap) or a freshly re-derived OVR.
#[derive(Debug, Clone)]
pub enum PatchEntry {
    /// Keep old OVR `old_id`'s region; its group becomes `pois`.
    Kept {
        /// Id in the old arena whose geometry is copied.
        old_id: u32,
        /// The (remapped) group of the kept OVR.
        pois: Vec<ObjectRef>,
    },
    /// A re-derived OVR, encoded from scratch.
    New(Ovr),
}

impl MovdArena {
    /// Flattens a pointer-based diagram. Lossless: every vertex coordinate
    /// keeps its exact bits and [`MovdArena::to_movd`] inverts it.
    pub fn from_movd(movd: &Movd) -> Self {
        let n = movd.ovrs.len();
        let mut a = MovdArena::with_capacity(movd.bounds, n);
        for ovr in &movd.ovrs {
            a.push_region(&ovr.region);
            a.push_group(&ovr.pois);
        }
        a
    }

    fn with_capacity(bounds: Mbr, n: usize) -> Self {
        let mut a = MovdArena {
            bounds,
            kinds: Vec::with_capacity(n),
            poly_off: Vec::with_capacity(n + 1),
            vert_off: Vec::with_capacity(n + 1),
            verts: Vec::new(),
            group_off: Vec::with_capacity(n + 1),
            pois: Vec::new(),
        };
        a.poly_off.push(0);
        a.vert_off.push(0);
        a.group_off.push(0);
        a
    }

    fn push_poly(&mut self, verts: &[Point]) {
        self.verts.extend_from_slice(verts);
        self.vert_off.push(self.verts.len() as u32);
    }

    fn push_region(&mut self, region: &Region) {
        match region {
            Region::Convex(p) => {
                self.kinds.push(KIND_CONVEX);
                self.push_poly(p.vertices());
            }
            Region::Rect(m) => {
                self.kinds.push(KIND_RECT);
                self.push_poly(&[Point::new(m.min_x, m.min_y), Point::new(m.max_x, m.max_y)]);
            }
            Region::General(ps) => {
                self.kinds.push(KIND_GENERAL);
                for p in ps {
                    self.push_poly(p.vertices());
                }
            }
        }
        self.poly_off.push(self.vert_off.len() as u32 - 1);
    }

    fn push_group(&mut self, pois: &[ObjectRef]) {
        self.pois.extend_from_slice(pois);
        self.group_off.push(self.pois.len() as u32);
    }

    /// Reassembles an arena from raw buffers (the snapshot-restore path),
    /// validating every CSR invariant so later indexing cannot go out of
    /// bounds. Group object references are *not* range-checked here — the
    /// store validates them against the object sets it decodes alongside.
    pub fn from_raw(
        bounds: Mbr,
        kinds: Vec<u8>,
        poly_off: Vec<u32>,
        vert_off: Vec<u32>,
        verts: Vec<Point>,
        group_off: Vec<u32>,
        pois: Vec<ObjectRef>,
    ) -> Result<Self, String> {
        let n = kinds.len();
        let check_csr = |off: &[u32], end: usize, name: &str| -> Result<(), String> {
            if off.len() != n + 1 {
                return Err(format!(
                    "arena {name} has {} entries for {n} OVRs (want {})",
                    off.len(),
                    n + 1
                ));
            }
            if off[0] != 0 || *off.last().expect("non-empty") as usize != end {
                return Err(format!("arena {name} must start at 0 and end at {end}"));
            }
            if off.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("arena {name} must be non-decreasing"));
            }
            Ok(())
        };
        check_csr(&poly_off, vert_off.len().saturating_sub(1), "poly_off")?;
        check_csr(&group_off, pois.len(), "group_off")?;
        let npolys = *poly_off.last().expect("validated") as usize;
        if vert_off.len() != npolys + 1 {
            return Err(format!(
                "arena vert_off has {} entries for {npolys} polygons (want {})",
                vert_off.len(),
                npolys + 1
            ));
        }
        if vert_off[0] != 0 || *vert_off.last().expect("non-empty") as usize != verts.len() {
            return Err(format!(
                "arena vert_off must start at 0 and end at {}",
                verts.len()
            ));
        }
        if vert_off.windows(2).any(|w| w[0] > w[1]) {
            return Err("arena vert_off must be non-decreasing".into());
        }
        for (i, &kind) in kinds.iter().enumerate() {
            let polys = (poly_off[i + 1] - poly_off[i]) as usize;
            match kind {
                KIND_CONVEX => {
                    if polys != 1 {
                        return Err(format!("convex OVR {i} has {polys} polygons (want 1)"));
                    }
                }
                KIND_RECT => {
                    if polys != 1 {
                        return Err(format!("rect OVR {i} has {polys} polygons (want 1)"));
                    }
                    let p = poly_off[i] as usize;
                    let nv = (vert_off[p + 1] - vert_off[p]) as usize;
                    if nv != 2 {
                        return Err(format!("rect OVR {i} has {nv} vertices (want 2)"));
                    }
                }
                KIND_GENERAL => {}
                other => return Err(format!("OVR {i} has unknown region kind {other}")),
            }
        }
        Ok(MovdArena {
            bounds,
            kinds,
            poly_off,
            vert_off,
            verts,
            group_off,
            pois,
        })
    }

    /// Reconstructs the pointer-based diagram, bit-identical to the one the
    /// arena was built from (same constructors the old snapshot decode used).
    pub fn to_movd(&self) -> Movd {
        let ovrs = (0..self.len())
            .map(|i| {
                let region = match self.kinds[i] {
                    KIND_CONVEX => {
                        Region::Convex(ConvexPolygon::from_ccw(self.poly(i, 0).to_vec()))
                    }
                    KIND_RECT => Region::Rect(self.rect(i)),
                    _ => Region::General(self.polys(i).map(|v| Polygon::new(v.to_vec())).collect()),
                };
                Ovr {
                    region,
                    pois: self.group(i).to_vec(),
                }
            })
            .collect();
        Movd {
            bounds: self.bounds,
            ovrs,
        }
    }

    /// Number of OVRs.
    #[inline]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` when the diagram holds no OVRs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The search space.
    #[inline]
    pub fn bounds(&self) -> Mbr {
        self.bounds
    }

    /// Region kind tag of OVR `i`.
    #[inline]
    pub fn kind(&self, i: usize) -> u8 {
        self.kinds[i]
    }

    /// The group of OVR `i` (one object per overlapped type).
    #[inline]
    pub fn group(&self, i: usize) -> &[ObjectRef] {
        &self.pois[self.group_off[i] as usize..self.group_off[i + 1] as usize]
    }

    /// Vertex slice of polygon `j` (0-based within OVR `i`).
    #[inline]
    fn poly(&self, i: usize, j: usize) -> &[Point] {
        let p = self.poly_off[i] as usize + j;
        &self.verts[self.vert_off[p] as usize..self.vert_off[p + 1] as usize]
    }

    /// All polygon vertex slices of OVR `i`.
    pub fn polys(&self, i: usize) -> impl Iterator<Item = &[Point]> {
        let lo = self.poly_off[i] as usize;
        let hi = self.poly_off[i + 1] as usize;
        (lo..hi).map(move |p| &self.verts[self.vert_off[p] as usize..self.vert_off[p + 1] as usize])
    }

    /// The rectangle of a [`KIND_RECT`] OVR, bit-exact (no re-derivation
    /// from vertex ordering, which would lose `-0.0` vs `0.0`).
    fn rect(&self, i: usize) -> Mbr {
        let v = self.poly(i, 0);
        Mbr {
            min_x: v[0].x,
            min_y: v[0].y,
            max_x: v[1].x,
            max_y: v[1].y,
        }
    }

    /// OVR `i`'s bounding rectangle — same bits as
    /// [`Region::mbr`] on the reconstructed region.
    pub fn ovr_mbr(&self, i: usize) -> Mbr {
        match self.kinds[i] {
            KIND_CONVEX => Mbr::of_points(self.poly(i, 0).iter().copied()),
            KIND_RECT => self.rect(i),
            _ => self.polys(i).fold(Mbr::EMPTY, |acc, v| {
                acc.union(&Mbr::of_points(v.iter().copied()))
            }),
        }
    }

    /// `true` when `p` lies in OVR `i`'s region — same decision as
    /// [`Region::contains`] on the reconstructed region (shared slice
    /// kernels).
    pub fn contains(&self, i: usize, p: Point) -> bool {
        match self.kinds[i] {
            KIND_CONVEX => convex_contains(self.poly(i, 0), p),
            KIND_RECT => self.rect(i).contains(p),
            _ => self.polys(i).any(|v| ring_contains(v, p)),
        }
    }

    /// Raw buffer accessors for the snapshot store (bulk write path).
    #[inline]
    pub fn kinds(&self) -> &[u8] {
        &self.kinds
    }
    /// See [`MovdArena::kinds`].
    #[inline]
    pub fn poly_off(&self) -> &[u32] {
        &self.poly_off
    }
    /// See [`MovdArena::kinds`].
    #[inline]
    pub fn vert_off(&self) -> &[u32] {
        &self.vert_off
    }
    /// See [`MovdArena::kinds`].
    #[inline]
    pub fn verts(&self) -> &[Point] {
        &self.verts
    }
    /// See [`MovdArena::kinds`].
    #[inline]
    pub fn group_off(&self) -> &[u32] {
        &self.group_off
    }
    /// See [`MovdArena::kinds`].
    #[inline]
    pub fn pois(&self) -> &[ObjectRef] {
        &self.pois
    }

    /// Byte sizes of the flat buffers, for `/stats`.
    pub fn buffer_bytes(&self) -> ArenaBufferBytes {
        ArenaBufferBytes {
            kinds: self.kinds.len(),
            poly_off: self.poly_off.len() * 4,
            vert_off: self.vert_off.len() * 4,
            verts: self.verts.len() * 16,
            group_off: self.group_off.len() * 4,
            pois: self.pois.len() * std::mem::size_of::<ObjectRef>(),
        }
    }

    /// Deep payload bytes of the *pointer-based* diagram this arena
    /// represents — the paper's memory-accounting number
    /// ([`crate::footprint::Footprint`]), computed from counts so answers
    /// report the same `movd_bytes` they always did.
    pub fn footprint_bytes(&self) -> usize {
        let mut total = VEC_HEADER + 4 * std::mem::size_of::<f64>(); // ovrs header + bounds
        for i in 0..self.len() {
            let region = match self.kinds[i] {
                KIND_RECT => 4 * std::mem::size_of::<f64>(),
                KIND_CONVEX => {
                    let nv = (self.vert_off[self.poly_off[i] as usize + 1]
                        - self.vert_off[self.poly_off[i] as usize])
                        as usize;
                    nv * 2 * std::mem::size_of::<f64>() + VEC_HEADER
                }
                _ => {
                    let polys = self.poly_off[i] as usize..self.poly_off[i + 1] as usize;
                    polys
                        .map(|p| {
                            (self.vert_off[p + 1] - self.vert_off[p]) as usize
                                * 2
                                * std::mem::size_of::<f64>()
                                + VEC_HEADER
                        })
                        .sum::<usize>()
                        + VEC_HEADER
                }
            };
            let group = (self.group_off[i + 1] - self.group_off[i]) as usize;
            total += region + group * std::mem::size_of::<ObjectRef>() + VEC_HEADER;
        }
        total
    }

    /// Builds a patched arena by copy-on-write: `Kept` entries bulk-copy
    /// their geometry segments out of `old` (bit-identical to what a
    /// from-scratch rebuild would encode, because kept regions are exactly
    /// the regions whose bits did not move), `New` entries encode their
    /// regions from scratch. Returns the arena and the number of contiguous
    /// old-arena segments copied (adjacent kept OVRs coalesce into one
    /// segment — the number a `memcpy`-style implementation would issue).
    pub fn from_patch(old: &MovdArena, bounds: Mbr, entries: &[PatchEntry]) -> (Self, usize) {
        let mut a = MovdArena::with_capacity(bounds, entries.len());
        let mut segments = 0usize;
        let mut prev_kept: Option<u32> = None;
        for e in entries {
            match e {
                PatchEntry::Kept { old_id, pois } => {
                    let i = *old_id as usize;
                    if prev_kept != Some(old_id.wrapping_sub(1)) {
                        segments += 1;
                    }
                    prev_kept = Some(*old_id);
                    a.kinds.push(old.kinds[i]);
                    for p in old.poly_off[i] as usize..old.poly_off[i + 1] as usize {
                        let lo = old.vert_off[p] as usize;
                        let hi = old.vert_off[p + 1] as usize;
                        a.verts.extend_from_slice(&old.verts[lo..hi]);
                        a.vert_off.push(a.verts.len() as u32);
                    }
                    a.poly_off.push(a.vert_off.len() as u32 - 1);
                    a.push_group(pois);
                }
                PatchEntry::New(ovr) => {
                    prev_kept = None;
                    a.push_region(&ovr.region);
                    a.push_group(&ovr.pois);
                }
            }
        }
        (a, segments)
    }
}

/// The derived SoA cost block: per OVR group, a contiguous run of
/// Fermat–Weber weighted points and the additive constant of the group's
/// `WGD` under a fixed query (see [`MolqQuery::fw_terms`]). Query-dependent,
/// cheap to build, never persisted — a server pins one per (snapshot,
/// query) so every solve/topk scan streams flat lanes.
#[derive(Debug, Clone)]
pub struct FwLanes {
    group_off: Vec<u32>,
    pts: Vec<WeightedPoint>,
    consts: Vec<f64>,
}

impl FwLanes {
    fn build<'a>(query: &MolqQuery, groups: impl Iterator<Item = &'a [ObjectRef]>) -> Self {
        let mut lanes = FwLanes {
            group_off: vec![0],
            pts: Vec::new(),
            consts: Vec::new(),
        };
        for group in groups {
            let (pts, constant) = query.fw_terms(group);
            lanes.pts.extend_from_slice(&pts);
            lanes.group_off.push(lanes.pts.len() as u32);
            lanes.consts.push(constant);
        }
        lanes
    }

    /// Lanes for a pointer-based diagram.
    pub fn from_movd(query: &MolqQuery, movd: &Movd) -> Self {
        FwLanes::build(query, movd.ovrs.iter().map(|o| o.pois.as_slice()))
    }

    /// Lanes for an arena-backed diagram — identical values to
    /// [`FwLanes::from_movd`] on the reconstructed diagram (both funnel
    /// through [`MolqQuery::fw_terms`] per group).
    pub fn from_arena(query: &MolqQuery, arena: &MovdArena) -> Self {
        FwLanes::build(query, (0..arena.len()).map(|i| arena.group(i)))
    }

    /// Number of groups.
    #[inline]
    pub fn len(&self) -> usize {
        self.consts.len()
    }

    /// `true` when no groups are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.consts.is_empty()
    }

    /// Group `i`'s weighted points and additive constant.
    #[inline]
    pub fn group(&self, i: usize) -> (&[WeightedPoint], f64) {
        (
            &self.pts[self.group_off[i] as usize..self.group_off[i + 1] as usize],
            self.consts[i],
        )
    }
}

/// Read access to a diagram's groups and regions — the shape the solver
/// kernels need, implemented by both the pointer layout and the arena so
/// one optimizer serves both paths with identical decisions.
pub trait GroupSource: Sync {
    /// Number of OVRs.
    fn source_len(&self) -> usize;
    /// Group of OVR `i`.
    fn source_group(&self, i: usize) -> &[ObjectRef];
    /// `true` when `p` lies in OVR `i`'s region.
    fn source_contains(&self, i: usize, p: Point) -> bool;
}

impl GroupSource for Movd {
    fn source_len(&self) -> usize {
        self.ovrs.len()
    }
    fn source_group(&self, i: usize) -> &[ObjectRef] {
        &self.ovrs[i].pois
    }
    fn source_contains(&self, i: usize, p: Point) -> bool {
        self.ovrs[i].region.contains(p)
    }
}

impl GroupSource for MovdArena {
    fn source_len(&self) -> usize {
        self.len()
    }
    fn source_group(&self, i: usize) -> &[ObjectRef] {
        self.group(i)
    }
    fn source_contains(&self, i: usize, p: Point) -> bool {
        self.contains(i, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::Footprint;
    use crate::incr::movd_bits_eq;
    use crate::object::ObjectSet;
    use crate::region::Boundary;

    fn pseudo_set(name: &str, n: usize, seed: u64) -> ObjectSet {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        ObjectSet::uniform(
            name,
            1.0,
            (0..n)
                .map(|_| Point::new(next() * 100.0, next() * 100.0))
                .collect(),
        )
    }

    fn built(mode: Boundary) -> Movd {
        let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let sets = vec![pseudo_set("a", 10, 1), pseudo_set("b", 12, 2)];
        Movd::overlap_all(&sets, bounds, mode).unwrap()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        for mode in [Boundary::Rrb, Boundary::Mbrb] {
            let movd = built(mode);
            let arena = MovdArena::from_movd(&movd);
            assert!(movd_bits_eq(&arena.to_movd(), &movd));
        }
    }

    #[test]
    fn mixed_kinds_round_trip_including_special_floats() {
        let movd = Movd {
            bounds: Mbr::new(0.0, 0.0, 10.0, 10.0),
            ovrs: vec![
                Ovr {
                    region: Region::Convex(ConvexPolygon::from_ccw(vec![
                        Point::new(-0.0, 0.0),
                        Point::new(5e-324, 1.0),
                        Point::new(1e300, 2.0),
                    ])),
                    pois: vec![ObjectRef { set: 0, index: 3 }],
                },
                Ovr {
                    region: Region::Rect(Mbr::EMPTY),
                    pois: vec![ObjectRef { set: 1, index: 0 }],
                },
                Ovr {
                    region: Region::General(vec![
                        Polygon::new(vec![
                            Point::new(0.0, 0.0),
                            Point::new(1.0, -0.0),
                            Point::new(0.5, 1.0),
                        ]),
                        Polygon::new(Vec::new()),
                    ]),
                    pois: Vec::new(),
                },
            ],
        };
        let arena = MovdArena::from_movd(&movd);
        assert!(movd_bits_eq(&arena.to_movd(), &movd));
        // The empty rect survives with its exact ±inf bits.
        assert!(arena.ovr_mbr(1).is_empty());
    }

    #[test]
    fn views_match_the_pointer_layout() {
        for mode in [Boundary::Rrb, Boundary::Mbrb] {
            let movd = built(mode);
            let arena = MovdArena::from_movd(&movd);
            assert_eq!(arena.len(), movd.len());
            assert_eq!(arena.footprint_bytes(), movd.footprint_bytes());
            for (i, ovr) in movd.ovrs.iter().enumerate() {
                assert_eq!(arena.group(i), ovr.pois.as_slice());
                let am = arena.ovr_mbr(i);
                let rm = ovr.region.mbr();
                assert_eq!(
                    [
                        am.min_x.to_bits(),
                        am.min_y.to_bits(),
                        am.max_x.to_bits(),
                        am.max_y.to_bits()
                    ],
                    [
                        rm.min_x.to_bits(),
                        rm.min_y.to_bits(),
                        rm.max_x.to_bits(),
                        rm.max_y.to_bits()
                    ],
                );
                for gi in 0..40 {
                    let p = Point::new(
                        (gi as f64 * 7.7 + 0.1) % 100.0,
                        (gi as f64 * 3.9 + 0.6) % 100.0,
                    );
                    assert_eq!(arena.contains(i, p), ovr.region.contains(p));
                }
            }
        }
    }

    #[test]
    fn lanes_agree_between_sources() {
        let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let sets = vec![pseudo_set("a", 8, 5), pseudo_set("b", 9, 6)];
        let query = MolqQuery::new(sets.clone(), bounds);
        let movd = Movd::overlap_all(&sets, bounds, Boundary::Rrb).unwrap();
        let arena = MovdArena::from_movd(&movd);
        let a = FwLanes::from_movd(&query, &movd);
        let b = FwLanes::from_arena(&query, &arena);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            let (pa, ca) = a.group(i);
            let (pb, cb) = b.group(i);
            assert_eq!(ca.to_bits(), cb.to_bits());
            assert_eq!(pa.len(), pb.len());
            for (x, y) in pa.iter().zip(pb) {
                assert_eq!(x.weight.to_bits(), y.weight.to_bits());
                assert_eq!(x.loc.x.to_bits(), y.loc.x.to_bits());
                assert_eq!(x.loc.y.to_bits(), y.loc.y.to_bits());
            }
            // And both match a direct fw_terms call.
            let (direct, c) = query.fw_terms(arena.group(i));
            assert_eq!(c.to_bits(), ca.to_bits());
            assert_eq!(direct.len(), pa.len());
        }
    }

    #[test]
    fn from_raw_rejects_malformed_buffers() {
        let movd = built(Boundary::Rrb);
        let good = MovdArena::from_movd(&movd);
        let parts = |a: &MovdArena| {
            (
                a.bounds(),
                a.kinds().to_vec(),
                a.poly_off().to_vec(),
                a.vert_off().to_vec(),
                a.verts().to_vec(),
                a.group_off().to_vec(),
                a.pois().to_vec(),
            )
        };
        let (b, k, po, vo, v, go, p) = parts(&good);
        assert!(MovdArena::from_raw(
            b,
            k.clone(),
            po.clone(),
            vo.clone(),
            v.clone(),
            go.clone(),
            p.clone()
        )
        .is_ok());
        // Truncated poly offsets.
        assert!(MovdArena::from_raw(
            b,
            k.clone(),
            po[..po.len() - 1].to_vec(),
            vo.clone(),
            v.clone(),
            go.clone(),
            p.clone()
        )
        .is_err());
        // Unsorted group offsets.
        let mut bad_go = go.clone();
        if bad_go.len() > 2 {
            bad_go.swap(1, 2);
        }
        assert!(MovdArena::from_raw(
            b,
            k.clone(),
            po.clone(),
            vo.clone(),
            v.clone(),
            bad_go,
            p.clone()
        )
        .is_err());
        // Offsets pointing past the vertex buffer.
        let mut bad_vo = vo.clone();
        *bad_vo.last_mut().unwrap() += 7;
        assert!(MovdArena::from_raw(
            b,
            k.clone(),
            po.clone(),
            bad_vo,
            v.clone(),
            go.clone(),
            p.clone()
        )
        .is_err());
        // Unknown kind tag.
        let mut bad_k = k.clone();
        bad_k[0] = 9;
        assert!(MovdArena::from_raw(b, bad_k, po, vo, v, go, p).is_err());
    }

    #[test]
    fn patch_copies_kept_segments_bit_identically() {
        let movd = built(Boundary::Rrb);
        let old = MovdArena::from_movd(&movd);
        // Keep everything except OVR 2, insert one new OVR at the end.
        let mut entries: Vec<PatchEntry> = (0..old.len())
            .filter(|&i| i != 2)
            .map(|i| PatchEntry::Kept {
                old_id: i as u32,
                pois: old.group(i).to_vec(),
            })
            .collect();
        entries.push(PatchEntry::New(Ovr {
            region: Region::Rect(Mbr::new(1.0, 1.0, 2.0, 2.0)),
            pois: vec![ObjectRef { set: 0, index: 0 }],
        }));
        let (patched, segments) = MovdArena::from_patch(&old, old.bounds(), &entries);
        // One gap at old id 2 splits the kept run into two segments.
        assert_eq!(segments, 2);
        assert_eq!(patched.len(), old.len());
        // Rebuild the same diagram from the pointer layout and compare bits.
        let mut want = movd.clone();
        want.ovrs.remove(2);
        want.ovrs.push(Ovr {
            region: Region::Rect(Mbr::new(1.0, 1.0, 2.0, 2.0)),
            pois: vec![ObjectRef { set: 0, index: 0 }],
        });
        assert!(movd_bits_eq(&patched.to_movd(), &want));
        assert_eq!(patched, MovdArena::from_movd(&want));
    }
}
