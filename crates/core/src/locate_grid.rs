//! A flat, serializable point-location grid over a built MOVD.
//!
//! The grid partitions the search space into uniform cells and stores, per
//! cell, the ids of every OVR whose MBR overlaps it (CSR layout: one
//! `offsets` array into one flat `ids` array). A point probe is then one
//! cell lookup plus a containment filter over a short candidate list — the
//! same superset-then-filter contract an R-tree gives, but with a memory
//! layout that is trivially persistable: the snapshot store writes the four
//! raw arrays and reconstructs the grid without any rebuild work.

use crate::arena::MovdArena;
use crate::movd::Movd;
use molq_geom::{Mbr, Point};

/// Largest number of cells along one axis (bounds memory on huge diagrams).
const MAX_SIDE: u32 = 1024;

/// A uniform cell → candidate-OVR-ids index in CSR layout.
///
/// Invariants (enforced by [`LocateGrid::from_raw`]):
/// * `offsets.len() == cols * rows + 1`, starting at 0, non-decreasing,
///   ending at `ids.len()`;
/// * within one cell the ids are strictly ascending (the construction visits
///   OVRs in id order).
#[derive(Debug, Clone, PartialEq)]
pub struct LocateGrid {
    bounds: Mbr,
    cols: u32,
    rows: u32,
    offsets: Vec<u32>,
    ids: Vec<u32>,
}

impl LocateGrid {
    /// Builds the grid over `movd.bounds` (falling back to the union of OVR
    /// MBRs when the diagram carries empty bounds) with roughly two cells
    /// per OVR.
    pub fn build(movd: &Movd) -> Self {
        Self::build_impl(movd.bounds, movd.ovrs.len(), |i| movd.ovrs[i].region.mbr())
    }

    /// [`LocateGrid::build`] over the arena layout — identical arrays for
    /// the same diagram (both derive per-OVR MBRs with the same bits).
    pub fn build_arena(arena: &MovdArena) -> Self {
        Self::build_impl(arena.bounds(), arena.len(), |i| arena.ovr_mbr(i))
    }

    fn build_impl(declared: Mbr, n: usize, mbr_of: impl Fn(usize) -> Mbr) -> Self {
        let mut bounds = declared;
        if bounds.is_empty() {
            bounds = (0..n).fold(Mbr::EMPTY, |acc, i| acc.union(&mbr_of(i)));
        }
        if bounds.is_empty() || n == 0 {
            return LocateGrid {
                bounds: Mbr::EMPTY,
                cols: 0,
                rows: 0,
                offsets: vec![0],
                ids: Vec::new(),
            };
        }
        let side = ((2 * n) as f64).sqrt().ceil() as u32;
        let cols = if bounds.width() > 0.0 {
            side.clamp(1, MAX_SIDE)
        } else {
            1
        };
        let rows = if bounds.height() > 0.0 {
            side.clamp(1, MAX_SIDE)
        } else {
            1
        };
        let cells = (cols * rows) as usize;

        // Cell ranges per OVR, then a counting sort into CSR so every cell's
        // id list comes out ascending (OVRs are visited in id order).
        let ranges: Vec<Option<(usize, usize, usize, usize)>> = (0..n)
            .map(|i| {
                let m = mbr_of(i);
                if m.is_empty() {
                    return None;
                }
                let (cx0, cy0) = cell_of(&bounds, cols, rows, Point::new(m.min_x, m.min_y));
                let (cx1, cy1) = cell_of(&bounds, cols, rows, Point::new(m.max_x, m.max_y));
                Some((cx0, cy0, cx1, cy1))
            })
            .collect();
        let mut counts = vec![0u32; cells];
        for r in ranges.iter().flatten() {
            for cy in r.1..=r.3 {
                for cx in r.0..=r.2 {
                    counts[cy * cols as usize + cx] += 1;
                }
            }
        }
        let mut offsets = Vec::with_capacity(cells + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursors: Vec<u32> = offsets[..cells].to_vec();
        let mut ids = vec![0u32; acc as usize];
        for (id, r) in ranges.iter().enumerate() {
            let Some(r) = r else { continue };
            for cy in r.1..=r.3 {
                for cx in r.0..=r.2 {
                    let cell = cy * cols as usize + cx;
                    ids[cursors[cell] as usize] = id as u32;
                    cursors[cell] += 1;
                }
            }
        }
        LocateGrid {
            bounds,
            cols,
            rows,
            offsets,
            ids,
        }
    }

    /// Patches the grid in place for an updated diagram, producing arrays
    /// **identical to [`LocateGrid::build`]`(movd)`** without re-deriving
    /// cell ranges for surviving OVRs: per cell, surviving ids are remapped
    /// through `old_to_new` (strictly increasing over the survivors, so
    /// lists stay ascending) and merged with the freshly-computed ranges of
    /// the `inserted` ids (ascending new ids).
    ///
    /// Returns `None` when the patch cannot reproduce the built grid — the
    /// grid resolution changed with the OVR count, or the extent moved —
    /// and the caller must fall back to a full build.
    pub fn patched(
        &self,
        movd: &Movd,
        old_to_new: &[Option<u32>],
        inserted: &[u32],
    ) -> Option<LocateGrid> {
        self.patched_impl(movd.bounds, movd.ovrs.len(), old_to_new, inserted, |i| {
            movd.ovrs[i].region.mbr()
        })
    }

    /// [`LocateGrid::patched`] over the arena layout.
    pub fn patched_arena(
        &self,
        arena: &MovdArena,
        old_to_new: &[Option<u32>],
        inserted: &[u32],
    ) -> Option<LocateGrid> {
        self.patched_impl(arena.bounds(), arena.len(), old_to_new, inserted, |i| {
            arena.ovr_mbr(i)
        })
    }

    fn patched_impl(
        &self,
        bounds: Mbr,
        n: usize,
        old_to_new: &[Option<u32>],
        inserted: &[u32],
        mbr_of: impl Fn(usize) -> Mbr,
    ) -> Option<LocateGrid> {
        let bits = |m: &Mbr| {
            [
                m.min_x.to_bits(),
                m.min_y.to_bits(),
                m.max_x.to_bits(),
                m.max_y.to_bits(),
            ]
        };
        if self.cols == 0 || self.rows == 0 || n == 0 || bounds.is_empty() {
            return None;
        }
        if bits(&bounds) != bits(&self.bounds) {
            return None;
        }
        let side = ((2 * n) as f64).sqrt().ceil() as u32;
        let cols = if bounds.width() > 0.0 {
            side.clamp(1, MAX_SIDE)
        } else {
            1
        };
        let rows = if bounds.height() > 0.0 {
            side.clamp(1, MAX_SIDE)
        } else {
            1
        };
        if cols != self.cols || rows != self.rows {
            return None;
        }
        let cells = (cols * rows) as usize;
        let mut extra: Vec<Vec<u32>> = vec![Vec::new(); cells];
        for &id in inserted {
            let m = mbr_of(id as usize);
            if m.is_empty() {
                continue;
            }
            let (cx0, cy0) = cell_of(&bounds, cols, rows, Point::new(m.min_x, m.min_y));
            let (cx1, cy1) = cell_of(&bounds, cols, rows, Point::new(m.max_x, m.max_y));
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    extra[cy * cols as usize + cx].push(id);
                }
            }
        }
        let mut offsets = Vec::with_capacity(cells + 1);
        let mut ids = Vec::with_capacity(self.ids.len() + inserted.len());
        offsets.push(0u32);
        for (cell, fresh_ids) in extra.iter().enumerate() {
            let old = &self.ids[self.offsets[cell] as usize..self.offsets[cell + 1] as usize];
            let mut survivors = old
                .iter()
                .filter_map(|&oid| old_to_new[oid as usize])
                .peekable();
            let mut fresh = fresh_ids.iter().copied().peekable();
            loop {
                match (survivors.peek(), fresh.peek()) {
                    (Some(&a), Some(&b)) if a < b => {
                        ids.push(a);
                        survivors.next();
                    }
                    (Some(_), Some(_)) => {
                        ids.push(*fresh.peek().expect("peeked"));
                        fresh.next();
                    }
                    (Some(&a), None) => {
                        ids.push(a);
                        survivors.next();
                    }
                    (None, Some(&b)) => {
                        ids.push(b);
                        fresh.next();
                    }
                    (None, None) => break,
                }
            }
            offsets.push(ids.len() as u32);
        }
        Some(LocateGrid {
            bounds,
            cols,
            rows,
            offsets,
            ids,
        })
    }

    /// Reassembles a grid from its raw arrays (the snapshot-load path),
    /// validating the CSR invariants and that every id is below `ovr_count`.
    pub fn from_raw(
        bounds: Mbr,
        cols: u32,
        rows: u32,
        offsets: Vec<u32>,
        ids: Vec<u32>,
        ovr_count: usize,
    ) -> Result<Self, String> {
        let cells = cols as usize * rows as usize;
        if offsets.len() != cells + 1 {
            return Err(format!(
                "grid has {} offsets for {} cells (want {})",
                offsets.len(),
                cells,
                cells + 1
            ));
        }
        if offsets[0] != 0 || *offsets.last().expect("non-empty") as usize != ids.len() {
            return Err("grid offsets must start at 0 and end at ids.len()".into());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("grid offsets must be non-decreasing".into());
        }
        if ids.iter().any(|&id| id as usize >= ovr_count) {
            return Err(format!("grid references an OVR id >= {ovr_count}"));
        }
        for w in offsets.windows(2) {
            let cell = &ids[w[0] as usize..w[1] as usize];
            if cell.windows(2).any(|c| c[0] >= c[1]) {
                return Err("grid cell ids must be strictly ascending".into());
            }
        }
        Ok(LocateGrid {
            bounds,
            cols,
            rows,
            offsets,
            ids,
        })
    }

    /// Candidate OVR ids for a point: every OVR whose MBR overlaps the cell
    /// containing `p` (clamped into the border cells), ascending. A superset
    /// of the true containers — callers filter with `Region::contains`.
    pub fn candidates(&self, p: Point) -> &[u32] {
        if self.cols == 0 || self.rows == 0 {
            return &[];
        }
        let (cx, cy) = cell_of(&self.bounds, self.cols, self.rows, p);
        let cell = cy * self.cols as usize + cx;
        let lo = self.offsets[cell] as usize;
        let hi = self.offsets[cell + 1] as usize;
        &self.ids[lo..hi]
    }

    /// The gridded extent.
    pub fn bounds(&self) -> Mbr {
        self.bounds
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The CSR offsets array (`cols * rows + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat candidate-id array.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }
}

/// The cell containing `p`, clamped into the grid (points outside the bounds
/// land in border cells, so coverage never depends on exact extents).
fn cell_of(bounds: &Mbr, cols: u32, rows: u32, p: Point) -> (usize, usize) {
    let fx = (p.x - bounds.min_x) / (bounds.width() / cols as f64);
    let fy = (p.y - bounds.min_y) / (bounds.height() / rows as f64);
    // NaN (degenerate axis) casts to 0; ±inf saturates and is clamped.
    let cx = (fx.floor() as isize).clamp(0, cols as isize - 1) as usize;
    let cy = (fy.floor() as isize).clamp(0, rows as isize - 1) as usize;
    (cx, cy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movd::Ovr;
    use crate::object::ObjectRef;
    use crate::region::Region;

    fn rect_movd(bounds: Mbr, rects: &[Mbr]) -> Movd {
        Movd {
            bounds,
            ovrs: rects
                .iter()
                .map(|&m| Ovr {
                    region: Region::Rect(m),
                    pois: vec![ObjectRef { set: 0, index: 0 }],
                })
                .collect(),
        }
    }

    #[test]
    fn candidates_are_supersets_and_ascending() {
        let bounds = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let rects = [
            Mbr::new(0.0, 0.0, 5.0, 5.0),
            Mbr::new(4.0, 4.0, 10.0, 10.0),
            Mbr::new(0.0, 5.0, 5.0, 10.0),
        ];
        let grid = LocateGrid::build(&rect_movd(bounds, &rects));
        for gy in 0..20 {
            for gx in 0..20 {
                let p = Point::new(gx as f64 * 0.5 + 0.1, gy as f64 * 0.5 + 0.1);
                let cand = grid.candidates(p);
                assert!(cand.windows(2).all(|w| w[0] < w[1]), "unsorted {cand:?}");
                for (id, m) in rects.iter().enumerate() {
                    if m.contains(p) {
                        assert!(cand.contains(&(id as u32)), "{p} misses rect {id}");
                    }
                }
            }
        }
    }

    #[test]
    fn out_of_bounds_probes_clamp_into_border_cells() {
        let bounds = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let grid = LocateGrid::build(&rect_movd(bounds, &[Mbr::new(0.0, 0.0, 10.0, 10.0)]));
        assert_eq!(grid.candidates(Point::new(-5.0, -5.0)), &[0]);
        assert_eq!(grid.candidates(Point::new(50.0, 50.0)), &[0]);
    }

    #[test]
    fn empty_movd_yields_empty_grid() {
        let grid = LocateGrid::build(&Movd {
            bounds: Mbr::EMPTY,
            ovrs: Vec::new(),
        });
        assert_eq!(grid.candidates(Point::new(0.0, 0.0)), &[] as &[u32]);
        assert_eq!(grid.offsets(), &[0]);
    }

    #[test]
    fn degenerate_bounds_still_locate() {
        // All regions on a vertical line: zero-width bounds.
        let bounds = Mbr::new(5.0, 0.0, 5.0, 10.0);
        let grid = LocateGrid::build(&rect_movd(
            bounds,
            &[Mbr::new(5.0, 0.0, 5.0, 6.0), Mbr::new(5.0, 6.0, 5.0, 10.0)],
        ));
        assert!(grid.candidates(Point::new(5.0, 1.0)).contains(&0));
        assert!(grid.candidates(Point::new(5.0, 9.0)).contains(&1));
    }

    #[test]
    fn from_raw_validates_invariants() {
        let b = Mbr::new(0.0, 0.0, 1.0, 1.0);
        // Good: 1x1 grid, one id.
        let g = LocateGrid::from_raw(b, 1, 1, vec![0, 1], vec![0], 1).unwrap();
        assert_eq!(g.candidates(Point::new(0.5, 0.5)), &[0]);
        // Wrong offsets length.
        assert!(LocateGrid::from_raw(b, 1, 1, vec![0], vec![], 1).is_err());
        // Offsets not ending at ids.len().
        assert!(LocateGrid::from_raw(b, 1, 1, vec![0, 2], vec![0], 1).is_err());
        // Decreasing offsets.
        assert!(LocateGrid::from_raw(b, 2, 1, vec![0, 1, 0], vec![0], 1).is_err());
        // Id out of range.
        assert!(LocateGrid::from_raw(b, 1, 1, vec![0, 1], vec![5], 1).is_err());
    }

    #[test]
    fn patched_matches_full_build() {
        let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let rects: Vec<Mbr> = (0..24)
            .map(|i| {
                let x = (i * 17 % 85) as f64;
                let y = (i * 31 % 85) as f64;
                Mbr::new(x, y, x + 12.0, y + 12.0)
            })
            .collect();
        let old = rect_movd(bounds, &rects);
        let old_grid = LocateGrid::build(&old);

        // Drop two OVRs and insert two new ones at arbitrary canonical
        // positions, keeping the total count (so the resolution holds).
        let mut new_rects: Vec<(Mbr, Option<u32>)> = rects
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3 && *i != 20)
            .map(|(i, &m)| (m, Some(i as u32)))
            .collect();
        new_rects.insert(5, (Mbr::new(40.0, 40.0, 55.0, 60.0), None));
        new_rects.insert(11, (Mbr::new(0.0, 80.0, 30.0, 100.0), None));
        let new = rect_movd(
            bounds,
            &new_rects.iter().map(|(m, _)| *m).collect::<Vec<_>>(),
        );

        let mut old_to_new = vec![None; old.len()];
        let mut inserted = Vec::new();
        for (new_id, (_, origin)) in new_rects.iter().enumerate() {
            match origin {
                Some(old_id) => old_to_new[*old_id as usize] = Some(new_id as u32),
                None => inserted.push(new_id as u32),
            }
        }
        let patched = old_grid.patched(&new, &old_to_new, &inserted).unwrap();
        assert_eq!(patched, LocateGrid::build(&new));
    }

    #[test]
    fn patched_declines_when_resolution_changes() {
        let bounds = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let rects: Vec<Mbr> = (0..4)
            .map(|i| Mbr::new(i as f64, 0.0, i as f64 + 1.0, 10.0))
            .collect();
        let old = rect_movd(bounds, &rects);
        let grid = LocateGrid::build(&old);
        // Doubling the OVR count moves `ceil(sqrt(2n))`: patch must decline.
        let many: Vec<Mbr> = (0..16)
            .map(|i| Mbr::new(0.0, i as f64 * 0.5, 10.0, i as f64 * 0.5 + 1.0))
            .collect();
        let new = rect_movd(bounds, &many);
        let old_to_new: Vec<Option<u32>> = (0..4).map(|i| Some(i as u32)).collect();
        let inserted: Vec<u32> = (4..16).collect();
        assert!(grid.patched(&new, &old_to_new, &inserted).is_none());
    }

    #[test]
    fn roundtrips_through_raw_arrays() {
        let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let rects: Vec<Mbr> = (0..17)
            .map(|i| {
                let x = (i * 13 % 90) as f64;
                let y = (i * 29 % 90) as f64;
                Mbr::new(x, y, x + 10.0, y + 10.0)
            })
            .collect();
        let movd = rect_movd(bounds, &rects);
        let grid = LocateGrid::build(&movd);
        let rebuilt = LocateGrid::from_raw(
            grid.bounds(),
            grid.cols(),
            grid.rows(),
            grid.offsets().to_vec(),
            grid.ids().to_vec(),
            movd.len(),
        )
        .unwrap();
        assert_eq!(grid, rebuilt);
    }
}
