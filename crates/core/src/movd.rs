//! The OVD/MOVD model (§4): overlapped Voronoi regions, minimum overlapped
//! Voronoi diagrams, and the ⊕ overlap operation.

use crate::exec::ExecConfig;
use crate::object::{ObjectRef, ObjectSet};
use crate::region::{Boundary, Region};
use crate::weights::WeightFunction;
use molq_geom::Mbr;
use molq_voronoi::{
    DiagramBuilder, LayerRegions, VoronoiError, WeightScheme, WeightedSite, WeightedVoronoi,
};

/// An Overlapped Voronoi Region: a region of the search space together with
/// the list of objects (one per overlapped type) that are weighted-nearest
/// everywhere inside it (Eq. 12; the `⟨region, pois⟩` structure of Fig 6).
#[derive(Debug, Clone, PartialEq)]
pub struct Ovr {
    /// The region (real boundary or MBR).
    pub region: Region,
    /// The associated objects, one per overlapped type, sorted by set index.
    pub pois: Vec<ObjectRef>,
}

/// Diagnostic summary of a built MOVD (see [`Movd::coverage_report`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageReport {
    /// Number of OVRs.
    pub ovr_count: usize,
    /// Summed region area (exact MOVDs tile the space; MBRB over-covers).
    pub total_area: f64,
    /// Search-space area.
    pub bounds_area: f64,
    /// `total_area / bounds_area` — 1.0 for exact diagrams (Property 3),
    /// above 1.0 in proportion to MBRB's false positives.
    pub coverage_ratio: f64,
    /// OVRs whose region is empty (should always be 0: "minimum" means
    /// empty regions removed, Eq. 13).
    pub empty_regions: usize,
    /// Largest object-group size (= number of overlapped types).
    pub max_group_size: usize,
}

/// A Minimum Overlapped Voronoi Diagram: the set of non-empty OVRs
/// (Eq. 13). `MOVD(∅)` is the whole search space with no objects (Eq. 14).
#[derive(Debug, Clone)]
pub struct Movd {
    /// The search space `R`.
    pub bounds: Mbr,
    /// The non-empty overlapped Voronoi regions.
    pub ovrs: Vec<Ovr>,
}

impl Movd {
    /// `MOVD(∅) = {R}` — the identity element of ⊕ (Property 12).
    pub fn identity(bounds: Mbr) -> Self {
        Movd {
            bounds,
            ovrs: vec![Ovr {
                region: Region::Rect(bounds),
                pois: Vec::new(),
            }],
        }
    }

    /// The basic MOVD of one object set (Property 7: `MOVD({P}) = VD(P)`).
    ///
    /// Sets with uniform object weights produce an ordinary Voronoi diagram
    /// with exact convex regions (RRB-capable). Non-uniform weights produce a
    /// weighted diagram whose regions are carried as superset MBRs — the
    /// configuration the paper's MBRB solution is designed for.
    pub fn basic(set: &ObjectSet, set_index: usize, bounds: Mbr) -> Result<Self, VoronoiError> {
        Movd::basic_with(set, set_index, bounds, ExecConfig::serial())
    }

    /// [`Movd::basic`] with an explicit execution configuration: uniform-
    /// weight sets build their ordinary diagram on `exec.threads` workers
    /// (cell output is identical to the sequential build).
    pub fn basic_with(
        set: &ObjectSet,
        set_index: usize,
        bounds: Mbr,
        exec: ExecConfig,
    ) -> Result<Self, VoronoiError> {
        Movd::basic_built(set, set_index, bounds, exec, &DiagramBuilder::exact())
    }

    /// [`Movd::basic_with`] through an explicit [`DiagramBuilder`] strategy
    /// — the per-layer seam of the tiered build pipeline. With
    /// [`DiagramBuilder::exact`] the output is bit-identical to the
    /// historical hard-wired construction; an approximate builder lowers its
    /// quadtree leaves into per-site tile regions instead.
    pub fn basic_built(
        set: &ObjectSet,
        set_index: usize,
        bounds: Mbr,
        exec: ExecConfig,
        builder: &DiagramBuilder,
    ) -> Result<Self, VoronoiError> {
        let regions = if set.has_uniform_object_weights() {
            // Equal object weights cancel out of every dominance comparison
            // under any monotone ς^o, so the diagram is ordinary.
            let sites: Vec<_> = set.objects.iter().map(|o| o.loc).collect();
            builder.ordinary_layer(&sites, bounds, exec.threads)?
        } else {
            let scheme = match set.object_weight_fn {
                WeightFunction::Multiplicative => WeightScheme::Multiplicative,
                WeightFunction::Additive => WeightScheme::Additive,
            };
            let sites: Vec<WeightedSite> = set
                .objects
                .iter()
                .map(|o| WeightedSite::new(o.loc, o.w_o))
                .collect();
            builder.weighted_layer(&sites, scheme, bounds)
        };
        let group = |index| {
            vec![ObjectRef {
                set: set_index,
                index,
            }]
        };
        let ovrs = match regions {
            LayerRegions::Cells(cells) => cells
                .into_iter()
                .enumerate()
                .filter(|(_, c)| !c.is_empty())
                .map(|(i, c)| Ovr {
                    region: Region::Convex(c),
                    pois: group(i),
                })
                .collect(),
            LayerRegions::Mbrs(mbrs) => mbrs
                .into_iter()
                .enumerate()
                .filter(|(_, m)| !m.is_empty())
                .map(|(i, m)| Ovr {
                    region: Region::Rect(m),
                    pois: group(i),
                })
                .collect(),
            LayerRegions::Tiles { tiles, .. } => tiles
                .into_iter()
                .enumerate()
                .filter(|(_, rects)| !rects.is_empty())
                .map(|(i, rects)| Ovr {
                    region: Region::from_tiles(rects),
                    pois: group(i),
                })
                .collect(),
        };
        Ok(Movd { bounds, ovrs })
    }

    /// The basic MOVD of one object set with weighted regions approximated by
    /// raster contours (dilated, hence *supersets* of the true regions — the
    /// general RRB path; see `molq_voronoi::contour`). Sets with uniform
    /// object weights fall back to the exact ordinary diagram.
    pub fn basic_approx(
        set: &ObjectSet,
        set_index: usize,
        bounds: Mbr,
        raster_res: usize,
    ) -> Result<Self, VoronoiError> {
        if set.has_uniform_object_weights() {
            return Movd::basic(set, set_index, bounds);
        }
        let scheme = match set.object_weight_fn {
            WeightFunction::Multiplicative => WeightScheme::Multiplicative,
            WeightFunction::Additive => WeightScheme::Additive,
        };
        let sites: Vec<WeightedSite> = set
            .objects
            .iter()
            .map(|o| WeightedSite::new(o.loc, o.w_o))
            .collect();
        let wvd = WeightedVoronoi::build(&sites, scheme, bounds);
        let regions = molq_voronoi::region_polygons(&wvd, raster_res);
        let ovrs = regions
            .into_iter()
            .enumerate()
            .filter_map(|(i, polys)| {
                // A dominance bubble smaller than one raster cell can cover
                // no cell center; fall back to the analytic superset MBR so
                // the object is never silently dropped (the region must stay
                // a superset for the pipeline to remain exact).
                let region = if polys.is_empty() {
                    let m = wvd.region_mbr(i);
                    if m.is_empty() {
                        return None; // provably empty dominance region
                    }
                    Region::Rect(m)
                } else {
                    Region::General(polys)
                };
                Some(Ovr {
                    region,
                    pois: vec![ObjectRef {
                        set: set_index,
                        index: i,
                    }],
                })
            })
            .collect();
        Ok(Movd { bounds, ovrs })
    }

    /// Number of OVRs.
    pub fn len(&self) -> usize {
        self.ovrs.len()
    }

    /// `true` when the diagram holds no OVRs.
    pub fn is_empty(&self) -> bool {
        self.ovrs.is_empty()
    }

    /// The ⊕ overlap operation (Eq. 22), implemented with the plane sweep of
    /// Algorithm 2 and the event handler selected by `mode` (Algorithm 3 for
    /// RRB, Algorithm 4 for MBRB).
    pub fn overlap(&self, other: &Movd, mode: Boundary) -> Movd {
        crate::sweep::overlap(self, other, mode)
    }

    /// [`Movd::overlap`] with an explicit execution configuration: the
    /// pairwise region intersections run on `exec.threads` workers, with the
    /// resulting OVR list bit-identical to the sequential sweep.
    pub fn overlap_with(&self, other: &Movd, mode: Boundary, exec: ExecConfig) -> Movd {
        crate::sweep::overlap_with(self, other, mode, exec)
    }

    /// Sequential overlap `Σ⊕` (Eq. 27) over basic MOVDs of the given sets.
    pub fn overlap_all(
        sets: &[ObjectSet],
        bounds: Mbr,
        mode: Boundary,
    ) -> Result<Movd, VoronoiError> {
        Movd::overlap_all_with(sets, bounds, mode, ExecConfig::default())
    }

    /// [`Movd::overlap_all`] with an explicit execution configuration,
    /// applied to both the basic-diagram builds and the ⊕ folds.
    ///
    /// The result is put in **canonical order** (see
    /// [`Movd::canonicalize`]), so two builds of the same object sets —
    /// whether from scratch or incrementally patched (`crate::incr`) — agree
    /// on OVR ids and serialize to identical bytes.
    pub fn overlap_all_with(
        sets: &[ObjectSet],
        bounds: Mbr,
        mode: Boundary,
        exec: ExecConfig,
    ) -> Result<Movd, VoronoiError> {
        let mut acc = Movd::identity(bounds);
        for (i, set) in sets.iter().enumerate() {
            let basic = Movd::basic_with(set, i, bounds, exec)?;
            acc = acc.overlap_with(&basic, mode, exec);
        }
        acc.canonicalize();
        Ok(acc)
    }

    /// Sorts the OVRs by their `pois` group. A fully overlapped diagram has
    /// exactly one object per set in every group, so the group is a unique
    /// key and this order is independent of the sweep's pair-discovery
    /// order — the property the live-update subsystem (`crate::incr`) relies
    /// on to splice re-derived OVRs into the same positions a from-scratch
    /// rebuild would give them.
    pub fn canonicalize(&mut self) {
        self.ovrs.sort_by(|a, b| a.pois.cmp(&b.pois));
    }

    /// Total area of all OVR regions. For an exact (RRB) MOVD this equals the
    /// search-space area (Property 3); MBRB MOVDs over-cover because of
    /// false-positive rectangles.
    pub fn total_area(&self) -> f64 {
        self.ovrs.iter().map(|o| o.region.area()).sum()
    }

    /// Diagnostic summary of a built MOVD (coverage against Property 3,
    /// payload sizes, group widths) — for logging and debugging pipelines.
    pub fn coverage_report(&self) -> CoverageReport {
        let total_area = self.total_area();
        let bounds_area = self.bounds.area();
        CoverageReport {
            ovr_count: self.ovrs.len(),
            total_area,
            bounds_area,
            coverage_ratio: if bounds_area > 0.0 {
                total_area / bounds_area
            } else {
                0.0
            },
            empty_regions: self.ovrs.iter().filter(|o| o.region.is_empty()).count(),
            max_group_size: self.ovrs.iter().map(|o| o.pois.len()).max().unwrap_or(0),
        }
    }

    /// Structural equivalence up to region representation: same multiset of
    /// `pois` signatures with region areas agreeing within `tol` (used to
    /// verify the algebraic laws of §4.3 for the RRB implementation).
    pub fn equivalent(&self, other: &Movd, tol: f64) -> bool {
        if self.ovrs.len() != other.ovrs.len() {
            return false;
        }
        let key = |o: &Ovr| {
            let mut pois = o.pois.clone();
            pois.sort_unstable();
            (pois, o.region.area())
        };
        let mut a: Vec<_> = self.ovrs.iter().map(key).collect();
        let mut b: Vec<_> = other.ovrs.iter().map(key).collect();
        let ord = |x: &(Vec<ObjectRef>, f64), y: &(Vec<ObjectRef>, f64)| {
            x.0.cmp(&y.0).then(x.1.total_cmp(&y.1))
        };
        a.sort_by(&ord);
        b.sort_by(&ord);
        a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.0 == y.0 && (x.1 - y.1).abs() <= tol * (1.0 + x.1.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::SpatialObject;
    use molq_geom::Point;

    fn set_a() -> ObjectSet {
        ObjectSet::uniform("a", 1.0, vec![Point::new(2.0, 5.0), Point::new(8.0, 5.0)])
    }

    fn set_b() -> ObjectSet {
        ObjectSet::uniform("b", 1.0, vec![Point::new(5.0, 2.0), Point::new(5.0, 8.0)])
    }

    fn bounds() -> Mbr {
        Mbr::new(0.0, 0.0, 10.0, 10.0)
    }

    #[test]
    fn identity_covers_search_space() {
        let id = Movd::identity(bounds());
        assert_eq!(id.len(), 1);
        assert!(id.ovrs[0].pois.is_empty());
        assert_eq!(id.total_area(), 100.0);
    }

    #[test]
    fn basic_movd_equals_voronoi_diagram() {
        // Property 7: each cell is one OVR tagged with its generator.
        let m = Movd::basic(&set_a(), 0, bounds()).unwrap();
        assert_eq!(m.len(), 2);
        assert!((m.total_area() - 100.0).abs() < 1e-9);
        for ovr in &m.ovrs {
            assert_eq!(ovr.pois.len(), 1);
            assert_eq!(ovr.pois[0].set, 0);
        }
    }

    #[test]
    fn overlap_two_crossing_diagrams() {
        // Vertical split x=5 overlapped with horizontal split y=5: 4 OVRs.
        let a = Movd::basic(&set_a(), 0, bounds()).unwrap();
        let b = Movd::basic(&set_b(), 1, bounds()).unwrap();
        let o = a.overlap(&b, Boundary::Rrb);
        assert_eq!(o.len(), 4);
        assert!((o.total_area() - 100.0).abs() < 1e-9);
        // Every OVR holds one object of each set.
        for ovr in &o.ovrs {
            assert_eq!(ovr.pois.len(), 2);
            assert_eq!(ovr.pois[0].set, 0);
            assert_eq!(ovr.pois[1].set, 1);
        }
    }

    #[test]
    fn identity_law_property_12() {
        let a = Movd::basic(&set_a(), 0, bounds()).unwrap();
        let id = Movd::identity(bounds());
        let left = a.overlap(&id, Boundary::Rrb);
        let right = id.overlap(&a, Boundary::Rrb);
        assert!(left.equivalent(&a, 1e-9));
        assert!(right.equivalent(&a, 1e-9));
    }

    #[test]
    fn coverage_report_on_exact_overlap() {
        let a = Movd::basic(&set_a(), 0, bounds()).unwrap();
        let b = Movd::basic(&set_b(), 1, bounds()).unwrap();
        let o = a.overlap(&b, crate::region::Boundary::Rrb);
        let r = o.coverage_report();
        assert_eq!(r.ovr_count, 4);
        assert!((r.coverage_ratio - 1.0).abs() < 1e-9);
        assert_eq!(r.empty_regions, 0);
        assert_eq!(r.max_group_size, 2);
        // MBRB over-covers.
        let m = a
            .overlap(&b, crate::region::Boundary::Mbrb)
            .coverage_report();
        assert!(m.coverage_ratio >= r.coverage_ratio);
    }

    #[test]
    fn weighted_set_produces_rect_regions() {
        let objs = vec![
            SpatialObject {
                loc: Point::new(2.0, 2.0),
                w_t: 1.0,
                w_o: 1.0,
            },
            SpatialObject {
                loc: Point::new(8.0, 8.0),
                w_t: 1.0,
                w_o: 3.0,
            },
        ];
        let set = ObjectSet::weighted("w", objs, WeightFunction::Multiplicative);
        let m = Movd::basic(&set, 0, bounds()).unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.ovrs.iter().all(|o| matches!(o.region, Region::Rect(_))));
        // The heavy site's MBR is strictly smaller than the bounds.
        let heavy = m.ovrs.iter().find(|o| o.pois[0].index == 1).unwrap();
        assert!(heavy.region.area() < 100.0);
    }
}
