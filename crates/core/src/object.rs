//! Spatial objects, object sets, and the MOLQ query definition.

use crate::error::MolqError;
use crate::weights::WeightFunction;
use molq_fw::StoppingRule;
use molq_geom::{Mbr, Point};

/// A spatial object `⟨l, w^t, w^o⟩` (§2.1): a location with a type weight and
/// an object weight. Smaller weights are more preferred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialObject {
    /// Location in the search space.
    pub loc: Point,
    /// Type weight `w^t`.
    pub w_t: f64,
    /// Object weight `w^o`.
    pub w_o: f64,
}

/// A set `Pᵢ` of objects of one type, together with the object weight
/// function `ς^o_i` that applies to this type.
#[derive(Debug, Clone)]
pub struct ObjectSet {
    /// Human-readable type name (e.g. "schools").
    pub name: String,
    /// The objects.
    pub objects: Vec<SpatialObject>,
    /// The object weight function `ς^o` for this set.
    pub object_weight_fn: WeightFunction,
}

impl ObjectSet {
    /// An object set where every object shares the type weight `w_t` and has
    /// object weight 1 — the paper's default experimental configuration
    /// (`w^o = 1`, type weights random per type).
    pub fn uniform(name: &str, w_t: f64, locations: Vec<Point>) -> Self {
        ObjectSet {
            name: name.to_string(),
            objects: locations
                .into_iter()
                .map(|loc| SpatialObject { loc, w_t, w_o: 1.0 })
                .collect(),
            object_weight_fn: WeightFunction::Multiplicative,
        }
    }

    /// An object set with explicit per-object weights.
    pub fn weighted(
        name: &str,
        objects: Vec<SpatialObject>,
        object_weight_fn: WeightFunction,
    ) -> Self {
        ObjectSet {
            name: name.to_string(),
            objects,
            object_weight_fn,
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when the set has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// `true` when all object weights are equal (the set's Voronoi diagram is
    /// then an ordinary diagram regardless of `ς^o`).
    pub fn has_uniform_object_weights(&self) -> bool {
        self.objects.windows(2).all(|w| w[0].w_o == w[1].w_o)
    }
}

/// A reference to one object: `(set index, object index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectRef {
    /// Index of the [`ObjectSet`] within the query.
    pub set: usize,
    /// Index of the object within its set.
    pub index: usize,
}

/// The Multi-criteria Optimal Location Query (Eq. 4): object sets, weight
/// functions, the search space, and the iterative stopping rule.
#[derive(Debug, Clone)]
pub struct MolqQuery {
    /// The object sets `E = {P₁, …, Pₙ}`.
    pub sets: Vec<ObjectSet>,
    /// The type weight function `ς^t`.
    pub type_weight_fn: WeightFunction,
    /// The search space `R`.
    pub bounds: Mbr,
    /// Stopping rule `γ` for Fermat–Weber iterations.
    pub rule: StoppingRule,
}

impl MolqQuery {
    /// A query with the paper's defaults: multiplicative `ς^t`, error bound
    /// ε = 0.001 (§6.1).
    pub fn new(sets: Vec<ObjectSet>, bounds: Mbr) -> Self {
        MolqQuery {
            sets,
            type_weight_fn: WeightFunction::Multiplicative,
            bounds,
            rule: StoppingRule::Either(1e-3, 10_000),
        }
    }

    /// Overrides the stopping rule.
    pub fn with_rule(mut self, rule: StoppingRule) -> Self {
        self.rule = rule;
        self
    }

    /// Overrides the type weight function.
    pub fn with_type_weight_fn(mut self, f: WeightFunction) -> Self {
        self.type_weight_fn = f;
        self
    }

    /// Number of object combinations `∏ |Pᵢ|` the SSC baseline must consider.
    pub fn combination_count(&self) -> u128 {
        self.sets.iter().map(|s| s.len() as u128).product()
    }

    /// Validates the query: non-empty sets, positive weights, finite
    /// locations inside a non-empty search space.
    pub fn validate(&self) -> Result<(), MolqError> {
        if self.sets.is_empty() {
            return Err(MolqError::InvalidQuery(
                "query needs at least one object set".into(),
            ));
        }
        if self.bounds.is_empty() || self.bounds.area() == 0.0 {
            return Err(MolqError::InvalidQuery(
                "search space must have positive area".into(),
            ));
        }
        for (si, set) in self.sets.iter().enumerate() {
            if set.is_empty() {
                return Err(MolqError::InvalidQuery(format!(
                    "object set {si} ({}) is empty",
                    set.name
                )));
            }
            for (oi, o) in set.objects.iter().enumerate() {
                if !o.loc.is_finite() {
                    return Err(MolqError::InvalidQuery(format!(
                        "object {oi} of set {si} has non-finite location"
                    )));
                }
                if !(o.w_t > 0.0 && o.w_o > 0.0) {
                    return Err(MolqError::InvalidQuery(format!(
                        "object {oi} of set {si} has non-positive weight"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The Fermat–Weber terms of a group under this query's weight
    /// functions: per object a positive weight and an additive constant so
    /// that `WD(q, p) = weight · d(q, p) + constant`.
    ///
    /// Supported for multiplicative `ς^t` (the paper's focus); additive
    /// `ς^t` makes the constant `w^t`-shifted instead, which is also linear.
    pub fn fw_terms(&self, group: &[ObjectRef]) -> (Vec<molq_fw::WeightedPoint>, f64) {
        let mut pts = Vec::with_capacity(group.len());
        let mut constant = 0.0;
        for r in group {
            let set = &self.sets[r.set];
            let o = &set.objects[r.index];
            let (w, c) = match (self.type_weight_fn, set.object_weight_fn) {
                // ς^t(x, w_t) = x·w_t over ς^o(d, w_o) = d·w_o → d·w_o·w_t.
                (WeightFunction::Multiplicative, WeightFunction::Multiplicative) => {
                    (o.w_o * o.w_t, 0.0)
                }
                // (d + w_o)·w_t = d·w_t + w_o·w_t.
                (WeightFunction::Multiplicative, WeightFunction::Additive) => {
                    (o.w_t, o.w_o * o.w_t)
                }
                // (d·w_o) + w_t.
                (WeightFunction::Additive, WeightFunction::Multiplicative) => (o.w_o, o.w_t),
                // (d + w_o) + w_t.
                (WeightFunction::Additive, WeightFunction::Additive) => (1.0, o.w_o + o.w_t),
            };
            pts.push(molq_fw::WeightedPoint::new(o.loc, w));
            constant += c;
        }
        (pts, constant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{wd, wgd};

    fn simple_query() -> MolqQuery {
        let a = ObjectSet::uniform("a", 2.0, vec![Point::new(0.0, 0.0)]);
        let b = ObjectSet::uniform("b", 3.0, vec![Point::new(4.0, 0.0)]);
        MolqQuery::new(vec![a, b], Mbr::new(0.0, 0.0, 10.0, 10.0))
    }

    #[test]
    fn validate_accepts_good_query() {
        assert!(simple_query().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_queries() {
        let mut q = simple_query();
        q.sets.clear();
        assert!(q.validate().is_err());

        let mut q = simple_query();
        q.bounds = Mbr::EMPTY;
        assert!(q.validate().is_err());

        let mut q = simple_query();
        q.sets[0].objects.clear();
        assert!(q.validate().is_err());

        let mut q = simple_query();
        q.sets[0].objects[0].w_t = 0.0;
        assert!(q.validate().is_err());

        let mut q = simple_query();
        q.sets[0].objects[0].loc = Point::new(f64::NAN, 0.0);
        assert!(q.validate().is_err());
    }

    #[test]
    fn combination_count() {
        let a = ObjectSet::uniform("a", 1.0, vec![Point::new(0.0, 0.0); 3]);
        let b = ObjectSet::uniform("b", 1.0, vec![Point::new(1.0, 0.0); 4]);
        let c = ObjectSet::uniform("c", 1.0, vec![Point::new(2.0, 0.0); 5]);
        let q = MolqQuery::new(vec![a, b, c], Mbr::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(q.combination_count(), 60);
    }

    #[test]
    fn fw_terms_match_wd_for_all_function_combos() {
        for tf in [WeightFunction::Multiplicative, WeightFunction::Additive] {
            for of in [WeightFunction::Multiplicative, WeightFunction::Additive] {
                let obj = SpatialObject {
                    loc: Point::new(3.0, 4.0),
                    w_t: 2.0,
                    w_o: 1.5,
                };
                let set = ObjectSet::weighted("s", vec![obj], of);
                let q = MolqQuery::new(vec![set], Mbr::new(0.0, 0.0, 10.0, 10.0))
                    .with_type_weight_fn(tf);
                let group = vec![ObjectRef { set: 0, index: 0 }];
                let (pts, c) = q.fw_terms(&group);
                for probe in [Point::ORIGIN, Point::new(1.0, 1.0), Point::new(9.0, 2.0)] {
                    let via_terms = pts[0].weight * probe.dist(obj.loc) + c;
                    let direct = wd(probe, &obj, tf, of);
                    assert!(
                        (via_terms - direct).abs() < 1e-12,
                        "{tf:?}/{of:?} at {probe}"
                    );
                    // And WGD agrees since the group is a singleton.
                    assert_eq!(direct, wgd(probe, &q, &group));
                }
            }
        }
    }

    #[test]
    fn uniform_weights_detected() {
        let s = ObjectSet::uniform("x", 1.0, vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        assert!(s.has_uniform_object_weights());
        let mut s2 = s.clone();
        s2.objects[1].w_o = 2.0;
        assert!(!s2.has_uniform_object_weights());
    }
}
