//! The plane-sweep overlap operation (Algorithm 2) with the RRB and MBRB
//! event handlers (Algorithms 3 and 4).
//!
//! Events are the maximum (start) and minimum (end) y-projections of every
//! OVR; the sweep line moves top-down. One status structure per input MOVD
//! records the OVRs currently intersecting the sweep line, ordered by their
//! minimum x so candidates whose x-ranges overlap a new OVR are found with an
//! ordered range scan. When a start event fires, the new OVR is tested
//! against the candidates of the *other* status: RRB intersects the real
//! regions, MBRB only the MBRs.

use crate::cancel::CancelToken;
use crate::exec::{ExecConfig, GroupScan};
use crate::movd::{Movd, Ovr};
use crate::region::Boundary;
use molq_geom::{Mbr, TotalF64};
use std::collections::BTreeMap;

/// Event kind. Starts sort before ends at equal y so that regions touching
/// exactly at a sweep position coexist in the statuses (closed-rectangle
/// semantics; real-region intersection then decides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Start,
    End,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    y: f64,
    kind: Kind,
    /// 0 = first MOVD, 1 = second.
    side: u8,
    ovr: usize,
}

/// A sweep status: OVRs currently intersecting the sweep line, keyed by
/// `(min_x, ovr index)` with the max x stored for the range filter.
#[derive(Debug, Default)]
struct Status {
    map: BTreeMap<(TotalF64, usize), f64>,
}

impl Status {
    fn insert(&mut self, id: usize, mbr: &Mbr) {
        self.map.insert((TotalF64(mbr.min_x), id), mbr.max_x);
    }

    fn remove(&mut self, id: usize, mbr: &Mbr) {
        self.map.remove(&(TotalF64(mbr.min_x), id));
    }

    /// Ids of stored OVRs whose x-range `[min_x, max_x]` intersects the
    /// query's x-range.
    fn x_overlapping(&self, query: &Mbr, out: &mut Vec<usize>) {
        out.clear();
        let upper = (TotalF64(query.max_x), usize::MAX);
        for (&(_, id), &max_x) in self.map.range(..=upper) {
            if max_x >= query.min_x {
                out.push(id);
            }
        }
    }
}

/// Overlaps two MOVDs (the ⊕ operation) and returns the resulting MOVD.
///
/// Output-sensitive: `O(n log n)` for event handling plus the cost of the
/// pairwise region intersections actually performed (`θ · I` in the paper's
/// analysis).
pub fn overlap(a: &Movd, b: &Movd, mode: Boundary) -> Movd {
    overlap_with(a, b, mode, ExecConfig::serial())
}

/// [`overlap`] with an explicit execution configuration.
///
/// The sweep itself is inherently sequential and cheap; the expensive part —
/// the pairwise region intersections (13–59 ms per rebuild in BENCH_PR2 and
/// growing with dataset size) — is embarrassingly parallel. So the sweep
/// first collects the candidate pairs in discovery order, then intersects
/// them on the [`GroupScan`] pool, preserving pair order so the resulting
/// OVR list is bit-identical at any thread count.
pub fn overlap_with(a: &Movd, b: &Movd, mode: Boundary, exec: ExecConfig) -> Movd {
    let pairs = candidate_pairs(a, b);
    let intersect_one = |&(side, cur, oth): &(u8, usize, usize)| -> Option<Ovr> {
        let (ovr, other) = if side == 0 {
            (&a.ovrs[cur], &b.ovrs[oth])
        } else {
            (&b.ovrs[cur], &a.ovrs[oth])
        };
        let region = ovr.region.intersect(&other.region, mode)?;
        let mut pois = Vec::with_capacity(ovr.pois.len() + other.pois.len());
        pois.extend_from_slice(&ovr.pois);
        pois.extend_from_slice(&other.pois);
        pois.sort_unstable();
        pois.dedup();
        Some(Ovr { region, pois })
    };

    let ovrs = if exec.threads <= 1 {
        pairs.iter().filter_map(intersect_one).collect()
    } else {
        let never = CancelToken::never();
        let scan = GroupScan::new(pairs.len(), exec, &never);
        let out = scan
            .run(|i, _| intersect_one(&pairs[i]))
            .expect("never-token scan cannot be cancelled");
        // Items come back ascending by pair index — the discovery order the
        // sequential sweep emits in.
        out.items.into_iter().map(|(_, ovr)| ovr).collect()
    };
    Movd {
        bounds: a.bounds,
        ovrs,
    }
}

/// Runs the plane sweep and returns the candidate pairs whose regions must
/// be intersected, as `(side, current OVR, other OVR)` in discovery order
/// (`side` is the input holding the *start-event* OVR, whose region goes
/// first into the intersection).
fn candidate_pairs(a: &Movd, b: &Movd) -> Vec<(u8, usize, usize)> {
    let mut events: Vec<Event> = Vec::with_capacity(2 * (a.len() + b.len()));
    let mut push_events = |side: u8, ovrs: &[Ovr]| {
        for (i, ovr) in ovrs.iter().enumerate() {
            let m = ovr.region.mbr();
            if m.is_empty() {
                continue;
            }
            events.push(Event {
                y: m.max_y,
                kind: Kind::Start,
                side,
                ovr: i,
            });
            events.push(Event {
                y: m.min_y,
                kind: Kind::End,
                side,
                ovr: i,
            });
        }
    };
    push_events(0, &a.ovrs);
    push_events(1, &b.ovrs);

    // Descending y; starts before ends at equal y.
    events.sort_by(|x, y| {
        y.y.total_cmp(&x.y)
            .then_with(|| x.kind.cmp(&y.kind))
            .then_with(|| x.side.cmp(&y.side))
            .then_with(|| x.ovr.cmp(&y.ovr))
    });

    let mut status = [Status::default(), Status::default()];
    let mut pairs: Vec<(u8, usize, usize)> = Vec::new();
    let mut candidates: Vec<usize> = Vec::new();

    for e in events {
        let current_ovrs = if e.side == 0 { &a.ovrs } else { &b.ovrs };
        let mbr = current_ovrs[e.ovr].region.mbr();
        match e.kind {
            Kind::Start => {
                status[e.side as usize].insert(e.ovr, &mbr);
                status[1 - e.side as usize].x_overlapping(&mbr, &mut candidates);
                for &cid in &candidates {
                    pairs.push((e.side, e.ovr, cid));
                }
            }
            Kind::End => {
                status[e.side as usize].remove(e.ovr, &mbr);
            }
        }
    }
    pairs
}

/// The *general* overlapping approach the paper sketches in §5.2 ("the RRB
/// approach can be modified to be a general approach … if only `region` is
/// appended"): overlaps two families of plain regions, no object payloads.
pub fn overlap_general(
    bounds: molq_geom::Mbr,
    a: Vec<crate::region::Region>,
    b: Vec<crate::region::Region>,
    mode: Boundary,
) -> Vec<crate::region::Region> {
    let wrap = |rs: Vec<crate::region::Region>| Movd {
        bounds,
        ovrs: rs
            .into_iter()
            .map(|region| Ovr {
                region,
                pois: Vec::new(),
            })
            .collect(),
    };
    overlap(&wrap(a), &wrap(b), mode)
        .ovrs
        .into_iter()
        .map(|o| o.region)
        .collect()
}

/// Brute-force all-pairs overlap — the oracle the sweep is tested against.
pub fn overlap_bruteforce(a: &Movd, b: &Movd, mode: Boundary) -> Movd {
    let mut result = Vec::new();
    for x in &a.ovrs {
        for y in &b.ovrs {
            if let Some(region) = x.region.intersect(&y.region, mode) {
                let mut pois = Vec::with_capacity(x.pois.len() + y.pois.len());
                pois.extend_from_slice(&x.pois);
                pois.extend_from_slice(&y.pois);
                pois.sort_unstable();
                pois.dedup();
                result.push(Ovr { region, pois });
            }
        }
    }
    Movd {
        bounds: a.bounds,
        ovrs: result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movd::Movd;
    use crate::object::ObjectSet;
    use molq_geom::Point;

    fn pseudo_sets(seed: u64, n: usize) -> ObjectSet {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        ObjectSet::uniform(
            "s",
            1.0,
            (0..n)
                .map(|_| Point::new(next() * 100.0, next() * 100.0))
                .collect(),
        )
    }

    fn bounds() -> Mbr {
        Mbr::new(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn sweep_matches_bruteforce_rrb() {
        let a = Movd::basic(&pseudo_sets(1, 30), 0, bounds()).unwrap();
        let b = Movd::basic(&pseudo_sets(2, 40), 1, bounds()).unwrap();
        let fast = overlap(&a, &b, Boundary::Rrb);
        let slow = overlap_bruteforce(&a, &b, Boundary::Rrb);
        assert!(
            fast.equivalent(&slow, 1e-9),
            "{} vs {}",
            fast.len(),
            slow.len()
        );
    }

    #[test]
    fn sweep_matches_bruteforce_mbrb() {
        let a = Movd::basic(&pseudo_sets(3, 25), 0, bounds()).unwrap();
        let b = Movd::basic(&pseudo_sets(4, 35), 1, bounds()).unwrap();
        let fast = overlap(&a, &b, Boundary::Mbrb);
        let slow = overlap_bruteforce(&a, &b, Boundary::Mbrb);
        assert!(
            fast.equivalent(&slow, 1e-9),
            "{} vs {}",
            fast.len(),
            slow.len()
        );
    }

    #[test]
    fn rrb_overlap_covers_search_space() {
        // Property 3: the overlap of exact diagrams tiles the search space.
        let a = Movd::basic(&pseudo_sets(5, 20), 0, bounds()).unwrap();
        let b = Movd::basic(&pseudo_sets(6, 20), 1, bounds()).unwrap();
        let o = overlap(&a, &b, Boundary::Rrb);
        assert!(
            (o.total_area() - 100.0 * 100.0).abs() < 1e-4,
            "area {}",
            o.total_area()
        );
    }

    #[test]
    fn mbrb_produces_at_least_as_many_ovrs() {
        let a = Movd::basic(&pseudo_sets(7, 50), 0, bounds()).unwrap();
        let b = Movd::basic(&pseudo_sets(8, 50), 1, bounds()).unwrap();
        let rrb = overlap(&a, &b, Boundary::Rrb);
        let mbrb = overlap(&a, &b, Boundary::Mbrb);
        assert!(
            mbrb.len() >= rrb.len(),
            "mbrb {} < rrb {}",
            mbrb.len(),
            rrb.len()
        );
    }

    #[test]
    fn ovr_count_bounded_by_product() {
        // Property 2: |MOVD| ≤ ∏ |Pᵢ|.
        let a = Movd::basic(&pseudo_sets(9, 12), 0, bounds()).unwrap();
        let b = Movd::basic(&pseudo_sets(10, 15), 1, bounds()).unwrap();
        for mode in [Boundary::Rrb, Boundary::Mbrb] {
            let o = overlap(&a, &b, mode);
            assert!(o.len() <= 12 * 15);
            // Property 6: at least as many regions as either input diagram.
            assert!(o.len() >= a.len().max(b.len()));
        }
    }

    #[test]
    fn general_overlap_of_region_grids() {
        use crate::region::Region;
        use molq_geom::ConvexPolygon;
        // A 2x1 split overlapped with a 1x2 split must give 4 quadrants.
        let b = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let vsplit = vec![
            Region::Convex(ConvexPolygon::from_mbr(&Mbr::new(0.0, 0.0, 5.0, 10.0))),
            Region::Convex(ConvexPolygon::from_mbr(&Mbr::new(5.0, 0.0, 10.0, 10.0))),
        ];
        let hsplit = vec![
            Region::Convex(ConvexPolygon::from_mbr(&Mbr::new(0.0, 0.0, 10.0, 5.0))),
            Region::Convex(ConvexPolygon::from_mbr(&Mbr::new(0.0, 5.0, 10.0, 10.0))),
        ];
        let quads = overlap_general(b, vsplit, hsplit, Boundary::Rrb);
        assert_eq!(quads.len(), 4);
        for q in &quads {
            assert!((q.area() - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_overlap_is_bit_identical_to_serial() {
        let a = Movd::basic(&pseudo_sets(19, 40), 0, bounds()).unwrap();
        let b = Movd::basic(&pseudo_sets(20, 45), 1, bounds()).unwrap();
        for mode in [Boundary::Rrb, Boundary::Mbrb] {
            let serial = overlap_with(&a, &b, mode, ExecConfig::serial());
            for threads in [2, 8] {
                let par = overlap_with(&a, &b, mode, ExecConfig::new(threads));
                assert_eq!(serial.ovrs, par.ovrs, "{mode:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn commutative_law_property_10() {
        let a = Movd::basic(&pseudo_sets(11, 18), 0, bounds()).unwrap();
        let b = Movd::basic(&pseudo_sets(12, 22), 1, bounds()).unwrap();
        let ab = overlap(&a, &b, Boundary::Rrb);
        let ba = overlap(&b, &a, Boundary::Rrb);
        assert!(ab.equivalent(&ba, 1e-9));
    }

    #[test]
    fn associative_law_property_11() {
        let a = Movd::basic(&pseudo_sets(13, 10), 0, bounds()).unwrap();
        let b = Movd::basic(&pseudo_sets(14, 12), 1, bounds()).unwrap();
        let c = Movd::basic(&pseudo_sets(15, 14), 2, bounds()).unwrap();
        let left = overlap(&overlap(&a, &b, Boundary::Rrb), &c, Boundary::Rrb);
        let right = overlap(&a, &overlap(&b, &c, Boundary::Rrb), Boundary::Rrb);
        assert!(
            left.equivalent(&right, 1e-6),
            "{} vs {}",
            left.len(),
            right.len()
        );
    }

    #[test]
    fn idempotent_law_property_9() {
        let a = Movd::basic(&pseudo_sets(16, 20), 0, bounds()).unwrap();
        let aa = overlap(&a, &a, Boundary::Rrb);
        assert!(aa.equivalent(&a, 1e-9), "{} vs {}", aa.len(), a.len());
    }

    #[test]
    fn absorption_property_14() {
        // MOVD(E_i) ⊕ MOVD(E_j) = MOVD(E_i) when E_j ⊆ E_i.
        let a = Movd::basic(&pseudo_sets(17, 15), 0, bounds()).unwrap();
        let b = Movd::basic(&pseudo_sets(18, 18), 1, bounds()).unwrap();
        let ab = overlap(&a, &b, Boundary::Rrb);
        let again = overlap(&ab, &b, Boundary::Rrb);
        assert!(
            again.equivalent(&ab, 1e-6),
            "{} vs {}",
            again.len(),
            ab.len()
        );
    }
}
