//! Hand-rolled CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) —
//! the per-section checksum of the snapshot container. No registry crates:
//! the table is built once at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// An incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh hasher (initial state `0xFFFFFFFF`).
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The final checksum (state xor-out `0xFFFFFFFF`).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32/ISO-HDLC check: CRC("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 64];
        let clean = crc32(&data);
        for bit in 0..(64 * 8) {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&data), clean, "flip of bit {bit} undetected");
            data[bit / 8] ^= 1 << (bit % 8);
        }
    }
}
