//! The binary container: magic + version header, then length-prefixed,
//! CRC-checked sections.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "MOLQSNAP"
//! 8       4     format version (u32 LE) — readers reject other versions
//! 12      4     section count (u32 LE)
//! then, per section:
//!         4     tag (u32 LE)
//!         8     payload length (u64 LE)
//!         n     payload
//!         4     CRC-32 of the payload (u32 LE)
//! ```
//!
//! Readers *skip* sections with unknown tags (forward compatibility: a newer
//! writer may append sections an older reader does not know) but still
//! verify their checksums, so corruption anywhere in the file is detected.

use crate::error::StoreError;
use crate::hash::crc32;

/// The 8-byte magic at offset 0.
pub const MAGIC: [u8; 8] = *b"MOLQSNAP";

/// The container version this build reads and writes. Version 2 switched
/// the MOVD/GRID sections to the contiguous arena lane layout; version-1
/// files (pointer-shaped per-OVR records) are rejected with
/// [`StoreError::UnsupportedVersion`] so callers fall back to a clean CSV
/// rebuild rather than misread the old shape.
pub const FORMAT_VERSION: u32 = 2;

/// One decoded section: tag + payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section tag (see `snapshot` for the assigned tags).
    pub tag: u32,
    /// Raw payload bytes (checksum already verified).
    pub payload: Vec<u8>,
}

/// Encodes a container from `(tag, payload)` sections.
pub fn write_container(sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let total: usize = sections.iter().map(|(_, p)| p.len() + 16).sum();
    let mut out = Vec::with_capacity(16 + total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (tag, payload) in sections {
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        out.extend_from_slice(&crc32(payload).to_le_bytes());
    }
    out
}

/// Header facts plus the section table (used by `inspect`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerInfo {
    /// Format version from the header.
    pub version: u32,
    /// Per-section `(tag, payload length, recorded CRC)`.
    pub sections: Vec<(u32, u64, u32)>,
}

fn read_u32(bytes: &[u8], pos: usize, context: &'static str) -> Result<u32, StoreError> {
    let end = pos.checked_add(4).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(StoreError::Truncated { context });
    };
    Ok(u32::from_le_bytes(bytes[pos..end].try_into().expect("4")))
}

fn read_u64(bytes: &[u8], pos: usize, context: &'static str) -> Result<u64, StoreError> {
    let end = pos.checked_add(8).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(StoreError::Truncated { context });
    };
    Ok(u64::from_le_bytes(bytes[pos..end].try_into().expect("8")))
}

/// Section table entry: `(tag, payload start, payload length, recorded CRC)`.
type SectionEntry = (u32, usize, usize, u32);

/// Validates the header and walks the section table without verifying
/// checksums — the cheap structural pass used by both reads and `inspect`.
fn walk(bytes: &[u8]) -> Result<(ContainerInfo, Vec<SectionEntry>), StoreError> {
    if bytes.len() < 8 {
        return Err(StoreError::Truncated { context: "magic" });
    }
    if bytes[..8] != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(StoreError::BadMagic { found });
    }
    let version = read_u32(bytes, 8, "header version")?;
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let count = read_u32(bytes, 12, "header section count")?;
    let mut pos = 16usize;
    let mut table = Vec::new();
    let mut info = ContainerInfo {
        version,
        sections: Vec::new(),
    };
    for _ in 0..count {
        let tag = read_u32(bytes, pos, "section tag")?;
        let len = read_u64(bytes, pos + 4, "section length")?;
        let payload_start = pos + 12;
        let payload_len = usize::try_from(len)
            .ok()
            .filter(|&l| {
                payload_start
                    .checked_add(l)
                    .is_some_and(|e| e <= bytes.len())
            })
            .ok_or(StoreError::Truncated {
                context: "section payload",
            })?;
        let crc_pos = payload_start + payload_len;
        let recorded = read_u32(bytes, crc_pos, "section checksum")?;
        table.push((tag, payload_start, payload_len, recorded));
        info.sections.push((tag, len, recorded));
        pos = crc_pos + 4;
    }
    if pos != bytes.len() {
        return Err(StoreError::malformed(format!(
            "{} bytes of garbage after the last section",
            bytes.len() - pos
        )));
    }
    Ok((info, table))
}

/// Decodes a container, verifying every section checksum (including unknown
/// sections, which are returned like any other and skipped by the caller).
pub fn read_container(bytes: &[u8]) -> Result<Vec<Section>, StoreError> {
    let (_, table) = walk(bytes)?;
    let mut sections = Vec::with_capacity(table.len());
    for (tag, start, len, recorded) in table {
        let payload = &bytes[start..start + len];
        let actual = crc32(payload);
        if actual != recorded {
            return Err(StoreError::ChecksumMismatch {
                tag,
                expected: recorded,
                actual,
            });
        }
        sections.push(Section {
            tag,
            payload: payload.to_vec(),
        });
    }
    Ok(sections)
}

/// Structural inspection: header + section table, plus per-section checksum
/// validity (`true`/`false` rather than an error, so damaged files can still
/// be described).
pub fn inspect_container(bytes: &[u8]) -> Result<(ContainerInfo, Vec<bool>), StoreError> {
    let (info, table) = walk(bytes)?;
    let ok = table
        .iter()
        .map(|&(_, start, len, recorded)| crc32(&bytes[start..start + len]) == recorded)
        .collect();
    Ok((info, ok))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        write_container(&[(1, b"hello".to_vec()), (2, Vec::new()), (99, vec![0xAB; 3])])
    }

    #[test]
    fn roundtrip_preserves_sections_in_order() {
        let sections = read_container(&sample()).unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0].tag, 1);
        assert_eq!(sections[0].payload, b"hello");
        assert_eq!(sections[1].payload, b"");
        assert_eq!(sections[2].tag, 99);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(
            read_container(&bytes),
            Err(StoreError::BadMagic { .. })
        ));
        // A completely different file type.
        assert!(matches!(
            read_container(b"\x89PNG\r\n\x1a\nrest"),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn other_versions_are_rejected() {
        // Newer than this build understands.
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        match read_container(&bytes) {
            Err(StoreError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("want UnsupportedVersion, got {other:?}"),
        }
        // Older (the pointer-shaped v1 layout) — also rejected, never
        // misread: the caller's recovery ladder rebuilds from CSVs.
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        match read_container(&bytes) {
            Err(StoreError::UnsupportedVersion {
                found: 1,
                supported,
            }) => {
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("want UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncation_at_every_length_is_typed() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = read_container(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. } | StoreError::BadMagic { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn payload_bit_flip_fails_its_section_checksum() {
        let mut bytes = sample();
        // Flip a bit inside "hello" (header is 16 bytes, section header 12).
        bytes[16 + 12 + 1] ^= 0x20;
        match read_container(&bytes) {
            Err(StoreError::ChecksumMismatch { tag: 1, .. }) => {}
            other => panic!("want checksum mismatch in section 1, got {other:?}"),
        }
    }

    #[test]
    fn declared_length_beyond_eof_is_truncated_not_panic() {
        let mut bytes = write_container(&[(1, b"abc".to_vec())]);
        // Inflate the declared length of section 1 to a huge value.
        bytes[20..28].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_container(&bytes),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample();
        bytes.push(0);
        assert!(matches!(
            read_container(&bytes),
            Err(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn inspect_reports_damage_without_failing() {
        let mut bytes = sample();
        bytes[16 + 12 + 1] ^= 0x20;
        let (info, ok) = inspect_container(&bytes).unwrap();
        assert_eq!(info.version, FORMAT_VERSION);
        assert_eq!(info.sections.len(), 3);
        assert_eq!(ok, vec![false, true, true]);
    }
}
