//! molq-store: versioned, checksummed binary persistence for fully-built
//! MOLQ engine snapshots.
//!
//! Building an MOVD from CSVs is the expensive part of serving start-up;
//! this crate makes that work durable. A snapshot file (`*.molq`) captures a
//! dataset after the build — object sets, the diagram, and the
//! point-location grid — together with a fingerprint of the source CSVs, so
//! a restart can [`StoredSnapshot::load_file`] in one pass and serve with
//! zero rebuild, falling back to the CSVs only when they changed or the file
//! is damaged.
//!
//! Dependency-free by design: the container framing, CRC-32, and FNV-1a
//! hashing are hand-rolled on `std`, and floating-point data travels as raw
//! IEEE-754 bits so a load is bit-identical to what was saved.
//!
//! Layers, bottom-up:
//! - [`hash`]: the shared CRC-32 (IEEE) and FNV-1a 64 implementations;
//! - [`codec`]: primitive little-endian [`codec::Writer`]/[`codec::Reader`];
//! - [`container`]: magic + version header, length-prefixed CRC'd sections,
//!   unknown tags skipped for forward compatibility;
//! - [`fingerprint`]: source-CSV identity (path, size, content hash);
//! - [`snapshot`]: the typed sections and file-level save/load/verify;
//! - [`journal`]: the append-only write-ahead delta journal for live
//!   updates (base snapshot + CRC-guarded fixed-size records);
//! - [`vfs`]: the storage-I/O seam — every snapshot/journal byte moves
//!   through a [`vfs::Vfs`], so the real paths run unchanged against the
//!   deterministic fault-injecting [`vfs::MemVfs`];
//! - [`recovery`]: the crash-recovery ladder shared by the serving engine
//!   and the crash-point test harness (base + journal prefix salvage +
//!   stale-tmp sweep).

pub mod codec;
pub mod container;
pub mod error;
pub mod fingerprint;
pub mod hash;
pub mod journal;
pub mod recovery;
pub mod snapshot;
pub mod vfs;

pub use crate::container::{ContainerInfo, FORMAT_VERSION, MAGIC};
pub use crate::error::StoreError;
pub use crate::fingerprint::{SourceEntry, SourceFingerprint};
pub use crate::hash::{crc32, fnv1a64, Crc32, Fnv64, FNV_OFFSET, FNV_PRIME};
pub use crate::journal::{
    inspect_journal, journal_path, load_journal, Journal, JournalInfo, JournalLoad, JournalRecord,
};
pub use crate::recovery::{
    recover, set_aside_journal, snapshot_path, sweep_tmp, JournalDisposition, Recovery,
};
pub use crate::snapshot::{
    inspect_file, verify_file, DecodeTimings, SnapshotInfo, SnapshotSummary, StoredSnapshot,
};
pub use crate::vfs::{InjectedError, MemVfs, RealVfs, Survival, Vfs, VfsFile};
