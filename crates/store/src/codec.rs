//! Primitive little-endian encoders/decoders for section payloads.
//!
//! Floating-point values travel as their raw IEEE-754 bits
//! (`f64::to_bits`/`from_bits`), so the encoding is **bit-exact**: `-0.0`,
//! subnormals, and every NaN payload round-trip unchanged. This is the same
//! identity the geometry crate's total-order wrapper (`TotalF64`) keys on,
//! so values that compared equal-by-bits before a save still do after a
//! load.

use crate::error::StoreError;
use molq_geom::{Mbr, Point};

/// Append-only payload writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bits (bit-exact, `-0.0`-preserving).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a point (two raw `f64`s).
    pub fn put_point(&mut self, p: Point) {
        self.put_f64(p.x);
        self.put_f64(p.y);
    }

    /// Appends a rectangle (four raw `f64`s).
    pub fn put_mbr(&mut self, m: &Mbr) {
        self.put_f64(m.min_x);
        self.put_f64(m.min_y);
        self.put_f64(m.max_x);
        self.put_f64(m.max_y);
    }

    /// Appends a whole byte lane verbatim (no length prefix — the caller
    /// records the count in its own header).
    pub fn put_u8_slice(&mut self, lane: &[u8]) {
        self.buf.extend_from_slice(lane);
    }

    /// Appends a `u32` lane (little-endian, no length prefix).
    pub fn put_u32_slice(&mut self, lane: &[u32]) {
        self.buf.reserve(lane.len() * 4);
        for &v in lane {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a point lane (raw `f64` bit pairs, no length prefix).
    pub fn put_point_slice(&mut self, lane: &[Point]) {
        self.buf.reserve(lane.len() * 16);
        for p in lane {
            self.buf.extend_from_slice(&p.x.to_bits().to_le_bytes());
            self.buf.extend_from_slice(&p.y.to_bits().to_le_bytes());
        }
    }
}

/// Sequential payload reader; every accessor fails with
/// [`StoreError::Truncated`] when the payload runs out.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the payload was consumed exactly.
    pub fn expect_end(&self, context: &'static str) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::malformed(format!(
                "{context}: {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated { context });
        }
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(bytes)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from raw bits.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<String, StoreError> {
        let len = self.u32(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::malformed(format!("{context}: invalid UTF-8")))
    }

    /// Reads a point.
    pub fn point(&mut self, context: &'static str) -> Result<Point, StoreError> {
        Ok(Point::new(self.f64(context)?, self.f64(context)?))
    }

    /// Reads a rectangle.
    pub fn mbr(&mut self, context: &'static str) -> Result<Mbr, StoreError> {
        let (min_x, min_y) = (self.f64(context)?, self.f64(context)?);
        let (max_x, max_y) = (self.f64(context)?, self.f64(context)?);
        Ok(Mbr {
            min_x,
            min_y,
            max_x,
            max_y,
        })
    }

    /// Reads `n` raw bytes as an owned lane. The byte count is checked
    /// against the remaining payload *before* any allocation, so a hostile
    /// count fails with [`StoreError::Truncated`] instead of an OOM.
    pub fn u8_slice(&mut self, n: usize, context: &'static str) -> Result<Vec<u8>, StoreError> {
        Ok(self.take(n, context)?.to_vec())
    }

    /// Reads `n` little-endian `u32`s as one bulk lane.
    pub fn u32_slice(&mut self, n: usize, context: &'static str) -> Result<Vec<u32>, StoreError> {
        let need = n.saturating_mul(4);
        if need > self.remaining() {
            return Err(StoreError::Truncated { context });
        }
        let bytes = self.take(need, context)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Reads `n` points (raw `f64` bit pairs) as one bulk lane.
    pub fn point_slice(
        &mut self,
        n: usize,
        context: &'static str,
    ) -> Result<Vec<Point>, StoreError> {
        let need = n.saturating_mul(16);
        if need > self.remaining() {
            return Err(StoreError::Truncated { context });
        }
        let bytes = self.take(need, context)?;
        Ok(bytes
            .chunks_exact(16)
            .map(|c| {
                let x = u64::from_le_bytes(c[..8].try_into().expect("8 bytes"));
                let y = u64::from_le_bytes(c[8..].try_into().expect("8 bytes"));
                Point::new(f64::from_bits(x), f64::from_bits(y))
            })
            .collect())
    }

    /// Reads a `u32` length prefix, guarding against lengths that could not
    /// possibly fit in the remaining payload (`min_item_bytes` per element).
    pub fn len_prefix(
        &mut self,
        min_item_bytes: usize,
        context: &'static str,
    ) -> Result<usize, StoreError> {
        let n = self.u32(context)? as usize;
        if n.saturating_mul(min_item_bytes) > self.remaining() {
            return Err(StoreError::Truncated { context });
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_bit_exactly() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        for v in [
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            1.7976931348623157e308,
            f64::NAN,
        ] {
            w.put_f64(v);
        }
        w.put_str("schools·日本");
        w.put_point(Point::new(-0.0, 1e300));
        w.put_mbr(&Mbr::EMPTY);

        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("t").unwrap(), 7);
        assert_eq!(r.u32("t").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("t").unwrap(), u64::MAX - 1);
        for v in [
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            5e-324,
            1.7976931348623157e308,
            f64::NAN,
        ] {
            assert_eq!(r.f64("t").unwrap().to_bits(), v.to_bits());
        }
        assert_eq!(r.str("t").unwrap(), "schools·日本");
        let p = r.point("t").unwrap();
        assert_eq!(p.x.to_bits(), (-0.0f64).to_bits());
        assert_eq!(p.y, 1e300);
        let m = r.mbr("t").unwrap();
        assert!(m.is_empty());
        r.expect_end("t").unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = Writer::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert!(matches!(
            r.u64("the answer"),
            Err(StoreError::Truncated {
                context: "the answer"
            })
        ));
    }

    #[test]
    fn string_truncation_and_bad_utf8() {
        let mut w = Writer::new();
        w.put_str("hello");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..6]);
        assert!(matches!(r.str("s"), Err(StoreError::Truncated { .. })));

        let mut w = Writer::new();
        w.put_u32(2);
        w.put_u8(0xFF);
        w.put_u8(0xFE);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str("s"), Err(StoreError::Malformed { .. })));
    }

    #[test]
    fn bulk_lanes_roundtrip_bit_exactly_and_guard_hostile_counts() {
        let mut w = Writer::new();
        w.put_u8_slice(&[0, 1, 2]);
        w.put_u32_slice(&[0, 7, u32::MAX]);
        w.put_point_slice(&[
            Point::new(-0.0, 5e-324),
            Point::new(1e300, f64::NEG_INFINITY),
        ]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8_slice(3, "kinds").unwrap(), vec![0, 1, 2]);
        assert_eq!(r.u32_slice(3, "offsets").unwrap(), vec![0, 7, u32::MAX]);
        let pts = r.point_slice(2, "verts").unwrap();
        assert_eq!(pts[0].x.to_bits(), (-0.0f64).to_bits());
        assert_eq!(pts[0].y.to_bits(), 5e-324f64.to_bits());
        assert_eq!(pts[1].y, f64::NEG_INFINITY);
        r.expect_end("lanes").unwrap();

        // Hostile counts fail as Truncated before any allocation, even when
        // count * item size would overflow usize.
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.u32_slice(usize::MAX, "offsets"),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            r.point_slice(usize::MAX, "verts"),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            r.u8_slice(usize::MAX, "kinds"),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.len_prefix(8, "objects"),
            Err(StoreError::Truncated { .. })
        ));
    }
}
