//! The write-ahead delta journal: append-only live updates next to a base
//! snapshot.
//!
//! A served dataset persists as `<name>.molq` (the base snapshot) plus an
//! optional sibling `<name>.journal`. Every accepted live update is framed,
//! CRC-guarded, appended, and fsync'd *before* the patched generation is
//! published, so restart = restore base + replay journal. The base's
//! `update_epoch` (snapshot section 5) must match the journal header's
//! epoch; compaction writes a new base at `epoch + 1` and resets the
//! journal, orphaning any stale one.
//!
//! # On-disk layout
//!
//! ```text
//! magic "MOLQJRNL" | version u32 | header len u32 | header | header crc32
//! record | record | ...                            (each exactly 48 bytes)
//! ```
//!
//! The header encodes the dataset name and the epoch. Records are **fixed
//! size** ([`RECORD_LEN`] bytes): kind `u8` + 3 zero pad bytes, set `u32`,
//! index `u32`, then `x`, `y`, `w_t`, `w_o` as `f64` bits, then a `crc32`
//! over the preceding 44 bytes. Fields a kind doesn't use are zero.
//!
//! Fixed-size records make length corruption impossible and give a
//! damaged tail an unambiguous reading — **prefix salvage**:
//!
//! * a trailing **partial** record is a torn tail — the classic WAL crash
//!   shape — and replay simply stops before it ([`JournalLoad::torn_tail`]);
//! * a **complete** record that fails its CRC (bit rot, tampering) ends
//!   the valid prefix: every record before it replays, and the defective
//!   tail is reported ([`JournalLoad::salvaged_bytes`]) and truncated on
//!   the next [`Journal::open_or_create`]. Only a defective *header*
//!   makes the whole journal unusable ([`StoreError::ChecksumMismatch`]
//!   etc.) — and even then the caller serves the base snapshot rather
//!   than rebuilding from CSVs (see [`crate::recovery`]).
//!
//! All file I/O moves through a [`Vfs`], so the exact append/reset/open
//! code paths here are the ones the crash-point harness drives against
//! simulated disk failures.

use crate::codec::{Reader, Writer};
use crate::error::StoreError;
use crate::hash::crc32;
use crate::vfs::{sync_parent_dir, RealVfs, Vfs, VfsFile};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Journal file magic.
pub const JOURNAL_MAGIC: &[u8; 8] = b"MOLQJRNL";
/// Journal format version.
pub const JOURNAL_VERSION: u32 = 1;
/// Exact size of every journal record, bytes.
pub const RECORD_LEN: usize = 48;

/// Record kind byte: insert.
const KIND_INSERT: u8 = 1;
/// Record kind byte: remove.
const KIND_REMOVE: u8 = 2;

/// One live update as journaled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JournalRecord {
    /// Insert an object into set `set` (appended at the end of the set).
    Insert {
        /// Target object set.
        set: u32,
        /// Object location x.
        x: f64,
        /// Object location y.
        y: f64,
        /// Type weight.
        w_t: f64,
        /// Object weight.
        w_o: f64,
    },
    /// Remove object `index` from set `set`.
    Remove {
        /// Target object set.
        set: u32,
        /// Object index within the set at the time of the update.
        index: u32,
    },
}

impl JournalRecord {
    /// Encodes the record into its fixed [`RECORD_LEN`]-byte frame.
    pub fn encode(&self) -> [u8; RECORD_LEN] {
        let mut buf = [0u8; RECORD_LEN];
        match *self {
            JournalRecord::Insert {
                set,
                x,
                y,
                w_t,
                w_o,
            } => {
                buf[0] = KIND_INSERT;
                buf[4..8].copy_from_slice(&set.to_le_bytes());
                buf[12..20].copy_from_slice(&x.to_bits().to_le_bytes());
                buf[20..28].copy_from_slice(&y.to_bits().to_le_bytes());
                buf[28..36].copy_from_slice(&w_t.to_bits().to_le_bytes());
                buf[36..44].copy_from_slice(&w_o.to_bits().to_le_bytes());
            }
            JournalRecord::Remove { set, index } => {
                buf[0] = KIND_REMOVE;
                buf[4..8].copy_from_slice(&set.to_le_bytes());
                buf[8..12].copy_from_slice(&index.to_le_bytes());
            }
        }
        let crc = crc32(&buf[..RECORD_LEN - 4]);
        buf[RECORD_LEN - 4..].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes a complete record frame, verifying its CRC.
    pub fn decode(frame: &[u8]) -> Result<Self, StoreError> {
        if frame.len() != RECORD_LEN {
            return Err(StoreError::Truncated {
                context: "journal record",
            });
        }
        let stored = u32::from_le_bytes(frame[RECORD_LEN - 4..].try_into().unwrap());
        let actual = crc32(&frame[..RECORD_LEN - 4]);
        if stored != actual {
            return Err(StoreError::ChecksumMismatch {
                tag: 0,
                expected: stored,
                actual,
            });
        }
        let set = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        match frame[0] {
            KIND_INSERT => Ok(JournalRecord::Insert {
                set,
                x: f64::from_bits(u64::from_le_bytes(frame[12..20].try_into().unwrap())),
                y: f64::from_bits(u64::from_le_bytes(frame[20..28].try_into().unwrap())),
                w_t: f64::from_bits(u64::from_le_bytes(frame[28..36].try_into().unwrap())),
                w_o: f64::from_bits(u64::from_le_bytes(frame[36..44].try_into().unwrap())),
            }),
            KIND_REMOVE => Ok(JournalRecord::Remove {
                set,
                index: u32::from_le_bytes(frame[8..12].try_into().unwrap()),
            }),
            other => Err(StoreError::malformed(format!(
                "unknown journal record kind {other}"
            ))),
        }
    }
}

/// The sibling journal path for a base snapshot of `name` in `dir`.
pub fn journal_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.journal"))
}

fn encode_header(name: &str, epoch: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str(name);
    w.put_u64(epoch);
    let body = w.into_bytes();
    let mut out = Vec::with_capacity(8 + 4 + 4 + body.len() + 4);
    out.extend_from_slice(JOURNAL_MAGIC);
    out.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

/// An open journal handle for appending.
pub struct Journal {
    vfs: Arc<dyn Vfs>,
    file: Box<dyn VfsFile>,
    path: PathBuf,
    name: String,
    epoch: u64,
    records: u64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("name", &self.name)
            .field("epoch", &self.epoch)
            .field("records", &self.records)
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// [`Journal::create_on`] against the real filesystem.
    pub fn create(path: &Path, name: &str, epoch: u64) -> Result<Journal, StoreError> {
        Journal::create_on(Arc::new(RealVfs), path, name, epoch)
    }

    /// Creates a fresh journal (truncating any existing file), writes and
    /// fsyncs the header, then fsyncs the parent directory so the file's
    /// very existence survives a crash.
    pub fn create_on(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        name: &str,
        epoch: u64,
    ) -> Result<Journal, StoreError> {
        let mut file = vfs.create(path)?;
        file.write_all(&encode_header(name, epoch))?;
        file.sync_data()?;
        sync_parent_dir(&*vfs, path)?;
        Ok(Journal {
            vfs,
            file,
            path: path.to_path_buf(),
            name: name.to_string(),
            epoch,
            records: 0,
        })
    }

    /// [`Journal::open_or_create_on`] against the real filesystem.
    pub fn open_or_create(path: &Path, name: &str, epoch: u64) -> Result<Journal, StoreError> {
        Journal::open_or_create_on(Arc::new(RealVfs), path, name, epoch)
    }

    /// Opens an existing journal for appending, validating its header and
    /// existing records and truncating everything past the valid record
    /// prefix (a torn tail or a salvaged defective tail). Creates a fresh
    /// journal when the file doesn't exist. The header must carry
    /// `name`/`epoch`; a mismatch or a defective header is an error — the
    /// caller decides whether to set the file aside and recreate.
    pub fn open_or_create_on(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        name: &str,
        epoch: u64,
    ) -> Result<Journal, StoreError> {
        let load = match load_journal_on(&*vfs, path) {
            Ok(load) => load,
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                return Journal::create_on(vfs, path, name, epoch);
            }
            Err(e) => return Err(e),
        };
        if load.name != name || load.epoch != epoch {
            return Err(StoreError::malformed(format!(
                "journal is for dataset {:?} epoch {}, expected {:?} epoch {}",
                load.name, load.epoch, name, epoch
            )));
        }
        let keep = load.valid_len();
        let mut file = vfs.open_write_at(path, keep)?;
        if load.torn_tail || load.salvaged_bytes > 0 {
            file.truncate(keep)?;
            file.sync_data()?;
        }
        Ok(Journal {
            vfs,
            file,
            path: path.to_path_buf(),
            name: name.to_string(),
            epoch,
            records: load.records.len() as u64,
        })
    }

    /// Appends one record and fsyncs before returning: once this succeeds
    /// the update survives a crash.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), StoreError> {
        self.file.write_all(&record.encode())?;
        self.file.sync_data()?;
        self.records += 1;
        Ok(())
    }

    /// Resets the journal to an empty one at `epoch` (the compaction step:
    /// the new base carries the same epoch). Atomic via temp file + rename,
    /// with the tmp fsync'd before the rename and the parent directory
    /// fsync'd after it — otherwise a crash can resurrect the pre-compaction
    /// journal (now stale against the new base's epoch) or leave the new
    /// name pointing at an unsynced header.
    pub fn reset(&mut self, epoch: u64) -> Result<(), StoreError> {
        let tmp = self.path.with_extension("journal.tmp");
        {
            let mut f = self.vfs.create(&tmp)?;
            f.write_all(&encode_header(&self.name, epoch))?;
            f.sync_data()?;
        }
        self.vfs.rename(&tmp, &self.path)?;
        sync_parent_dir(&*self.vfs, &self.path)?;
        let header_len = encode_header(&self.name, epoch).len() as u64;
        self.file = self.vfs.open_write_at(&self.path, header_len)?;
        self.epoch = epoch;
        self.records = 0;
        Ok(())
    }

    /// The journal's epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records appended so far (including those replayed at open).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// A fully-read journal.
#[derive(Debug, Clone)]
pub struct JournalLoad {
    /// Dataset name from the header.
    pub name: String,
    /// Epoch the journal binds to.
    pub epoch: u64,
    /// Bytes of magic + header framing (offset of the first record).
    pub header_len: u64,
    /// The longest valid record prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// True when the file ends in a partial record (a torn write to
    /// tolerate).
    pub torn_tail: bool,
    /// Bytes past the valid prefix dropped by salvage because a complete
    /// record failed validation (0 = no defect). Distinct from a torn
    /// tail: this is bit rot or tampering, not a crash shape.
    pub salvaged_bytes: u64,
    /// The validation failure that ended the prefix, when
    /// `salvaged_bytes > 0`.
    pub defect: Option<String>,
}

impl JournalLoad {
    /// Length in bytes of the header plus the valid record prefix — the
    /// offset any torn or defective tail is truncated to.
    pub fn valid_len(&self) -> u64 {
        self.header_len + self.records.len() as u64 * RECORD_LEN as u64
    }
}

/// Reads and validates a journal file on the real filesystem; see
/// [`load_journal_on`].
pub fn load_journal(path: &Path) -> Result<JournalLoad, StoreError> {
    load_journal_on(&RealVfs, path)
}

/// Reads and validates a journal file: the longest valid record prefix
/// always loads. A trailing partial record is tolerated
/// ([`JournalLoad::torn_tail`]); a complete record failing its CRC ends
/// the prefix and reports the dropped tail ([`JournalLoad::salvaged_bytes`]).
/// Only a missing file or a defective *header* is an error.
pub fn load_journal_on(vfs: &dyn Vfs, path: &Path) -> Result<JournalLoad, StoreError> {
    let bytes = vfs.read(path)?;
    load_journal_bytes(&bytes)
}

fn load_journal_bytes(bytes: &[u8]) -> Result<JournalLoad, StoreError> {
    if bytes.len() < 8 {
        return Err(StoreError::Truncated {
            context: "journal magic",
        });
    }
    if &bytes[..8] != JOURNAL_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(StoreError::BadMagic { found });
    }
    if bytes.len() < 16 {
        return Err(StoreError::Truncated {
            context: "journal header framing",
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != JOURNAL_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: JOURNAL_VERSION,
        });
    }
    let body_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let body_end = 16usize
        .checked_add(body_len)
        .filter(|&end| end + 4 <= bytes.len())
        .ok_or(StoreError::Truncated {
            context: "journal header body",
        })?;
    let body = &bytes[16..body_end];
    let stored = u32::from_le_bytes(bytes[body_end..body_end + 4].try_into().unwrap());
    let actual = crc32(body);
    if stored != actual {
        return Err(StoreError::ChecksumMismatch {
            tag: 0,
            expected: stored,
            actual,
        });
    }
    let mut r = Reader::new(body);
    let name = r.str("journal name")?;
    let epoch = r.u64("journal epoch")?;
    r.expect_end("journal header")?;

    let header_len = (body_end + 4) as u64;
    let mut records = Vec::new();
    let mut cursor = body_end + 4;
    let mut torn_tail = false;
    let mut salvaged_bytes = 0u64;
    let mut defect = None;
    while cursor < bytes.len() {
        let rest = &bytes[cursor..];
        if rest.len() < RECORD_LEN {
            // Torn write: the process died mid-append. Replay stops here.
            torn_tail = true;
            break;
        }
        match JournalRecord::decode(&rest[..RECORD_LEN]) {
            Ok(record) => {
                records.push(record);
                cursor += RECORD_LEN;
            }
            Err(e) => {
                // Prefix salvage: a complete record failed validation.
                // Everything from here on is untrusted — even CRC-valid
                // records past the defect would replay out of sequence —
                // so the prefix ends and the tail is reported dropped.
                salvaged_bytes = (bytes.len() - cursor) as u64;
                defect = Some(e.to_string());
                break;
            }
        }
    }
    Ok(JournalLoad {
        name,
        epoch,
        header_len,
        records,
        torn_tail,
        salvaged_bytes,
        defect,
    })
}

/// Human-facing journal summary (the `snapshot inspect`/`verify` output).
#[derive(Debug, Clone)]
pub struct JournalInfo {
    /// File size in bytes.
    pub file_len: u64,
    /// Dataset name from the header.
    pub name: String,
    /// Epoch the journal binds to.
    pub epoch: u64,
    /// Complete, CRC-valid records.
    pub records: usize,
    /// Inserts among `records`.
    pub inserts: usize,
    /// Removes among `records`.
    pub removes: usize,
    /// Whether the file ends in a torn partial record.
    pub torn_tail: bool,
    /// Bytes past the valid prefix dropped by salvage (0 = clean).
    pub salvaged_bytes: u64,
    /// The validation failure that ended the prefix, when salvaged.
    pub defect: Option<String>,
}

/// Inspects a journal file, returning its summary. A torn tail or a
/// salvaged defective tail is reported, not an error; only a defective
/// header errors.
pub fn inspect_journal(path: &Path) -> Result<JournalInfo, StoreError> {
    let bytes = std::fs::read(path)?;
    let load = load_journal_bytes(&bytes)?;
    let inserts = load
        .records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Insert { .. }))
        .count();
    Ok(JournalInfo {
        file_len: bytes.len() as u64,
        name: load.name,
        epoch: load.epoch,
        records: load.records.len(),
        inserts,
        removes: load.records.len() - inserts,
        torn_tail: load.torn_tail,
        salvaged_bytes: load.salvaged_bytes,
        defect: load.defect,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("molq_journal_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Insert {
                set: 0,
                x: 1.5,
                y: -0.0,
                w_t: 2.0,
                w_o: 1.0,
            },
            JournalRecord::Remove { set: 1, index: 7 },
            JournalRecord::Insert {
                set: 2,
                x: f64::MIN_POSITIVE,
                y: 9e99,
                w_t: 1.0,
                w_o: 0.25,
            },
        ]
    }

    #[test]
    fn record_frames_are_fixed_size_and_round_trip() {
        for record in sample_records() {
            let frame = record.encode();
            assert_eq!(frame.len(), RECORD_LEN);
            let back = JournalRecord::decode(&frame).unwrap();
            // PartialEq on f64 fields would conflate 0.0 and -0.0; compare
            // the encodings, which are bit-exact.
            assert_eq!(back.encode(), frame);
        }
    }

    #[test]
    fn append_load_round_trip() {
        let dir = temp_dir("round_trip");
        let path = journal_path(&dir, "d");
        let mut journal = Journal::create(&path, "d", 3).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        assert_eq!(journal.records(), 3);

        let load = load_journal(&path).unwrap();
        assert_eq!(load.name, "d");
        assert_eq!(load.epoch, 3);
        assert!(!load.torn_tail);
        let reencoded: Vec<[u8; RECORD_LEN]> = load.records.iter().map(|r| r.encode()).collect();
        let expected: Vec<[u8; RECORD_LEN]> = sample_records().iter().map(|r| r.encode()).collect();
        assert_eq!(reencoded, expected);

        let info = inspect_journal(&path).unwrap();
        assert_eq!((info.records, info.inserts, info.removes), (3, 2, 1));
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncated_on_reopen() {
        let dir = temp_dir("torn");
        let path = journal_path(&dir, "d");
        let mut journal = Journal::create(&path, "d", 1).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        // Simulate a crash mid-append: a partial 4th record.
        let mut bytes = std::fs::read(&path).unwrap();
        let partial = JournalRecord::Remove { set: 0, index: 0 }.encode();
        bytes.extend_from_slice(&partial[..17]);
        std::fs::write(&path, &bytes).unwrap();

        let load = load_journal(&path).unwrap();
        assert_eq!(load.records.len(), 3);
        assert!(load.torn_tail);
        assert!(inspect_journal(&path).unwrap().torn_tail);

        // Reopening truncates the tail and appends cleanly after it.
        let mut journal = Journal::open_or_create(&path, "d", 1).unwrap();
        assert_eq!(journal.records(), 3);
        journal
            .append(&JournalRecord::Remove { set: 0, index: 1 })
            .unwrap();
        let load = load_journal(&path).unwrap();
        assert_eq!(load.records.len(), 4);
        assert!(!load.torn_tail);
    }

    #[test]
    fn complete_record_with_bad_crc_salvages_the_prefix() {
        let dir = temp_dir("corrupt");
        let path = journal_path(&dir, "d");
        let mut journal = Journal::create(&path, "d", 1).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit in the middle record's payload: records 0 salvage,
        // the defective record AND the valid one after it are dropped.
        let flip = bytes.len() - 2 * RECORD_LEN + 20;
        bytes[flip] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();

        let load = load_journal(&path).unwrap();
        assert_eq!(load.records.len(), 1);
        assert_eq!(load.salvaged_bytes, 2 * RECORD_LEN as u64);
        assert!(load.defect.as_deref().unwrap().contains("checksum"));
        assert!(!load.torn_tail);
        let info = inspect_journal(&path).unwrap();
        assert_eq!(info.salvaged_bytes, 2 * RECORD_LEN as u64);

        // Reopening truncates the defective tail and appends after the
        // salvaged prefix.
        let mut journal = Journal::open_or_create(&path, "d", 1).unwrap();
        assert_eq!(journal.records(), 1);
        journal
            .append(&JournalRecord::Remove { set: 9, index: 9 })
            .unwrap();
        let load = load_journal(&path).unwrap();
        assert_eq!(load.records.len(), 2);
        assert_eq!(load.salvaged_bytes, 0);
        assert_eq!(load.records[1], JournalRecord::Remove { set: 9, index: 9 });
    }

    #[test]
    fn header_corruption_and_mismatches_are_errors() {
        let dir = temp_dir("header");
        let path = journal_path(&dir, "d");
        Journal::create(&path, "d", 2).unwrap();

        // Wrong name or epoch at open.
        assert!(matches!(
            Journal::open_or_create(&path, "other", 2),
            Err(StoreError::Malformed { .. })
        ));
        assert!(matches!(
            Journal::open_or_create(&path, "d", 3),
            Err(StoreError::Malformed { .. })
        ));

        // Flipped header byte.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[17] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_journal(&path),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        // Wrong magic.
        std::fs::write(&path, b"NOTAJRNLxxxxxxxx").unwrap();
        assert!(matches!(
            load_journal(&path),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn reset_compacts_to_an_empty_journal_at_the_new_epoch() {
        let dir = temp_dir("reset");
        let path = journal_path(&dir, "d");
        let mut journal = Journal::create(&path, "d", 1).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        journal.reset(2).unwrap();
        assert_eq!(journal.records(), 0);
        assert_eq!(journal.epoch(), 2);
        let load = load_journal(&path).unwrap();
        assert_eq!(load.epoch, 2);
        assert!(load.records.is_empty());
        // And appends keep working after the swap.
        journal
            .append(&JournalRecord::Remove { set: 0, index: 0 })
            .unwrap();
        assert_eq!(load_journal(&path).unwrap().records.len(), 1);
    }

    #[test]
    fn missing_file_creates_and_empty_dir_is_not_found() {
        let dir = temp_dir("create");
        let path = journal_path(&dir, "d");
        assert!(load_journal(&path).unwrap_err().is_not_found());
        let journal = Journal::open_or_create(&path, "d", 0).unwrap();
        assert_eq!(journal.records(), 0);
        assert_eq!(load_journal(&path).unwrap().epoch, 0);
    }
}
