//! Storage I/O behind a seam: the [`Vfs`] trait, its real-filesystem
//! implementation, and a deterministic fault-injecting in-memory one.
//!
//! Every byte the store writes — snapshot saves, journal appends,
//! compaction resets — goes through a [`Vfs`], so the exact production
//! code paths can be driven against simulated disks that crash between a
//! write and its fsync, tear a sector mid-write, lose a rename whose
//! directory was never fsync'd, drop fsyncs silently, or return
//! `ENOSPC`/`EIO` at a chosen operation.
//!
//! # The durability model [`MemVfs`] simulates
//!
//! POSIX durability is two-dimensional: file *data* becomes durable on
//! `fsync(fd)`, and directory *entries* (creations, renames, removals)
//! become durable on an fsync of the parent directory. [`MemVfs`] records
//! every mutating operation in an ordered **op log** and keeps only the
//! volatile (process-visible) state live; [`MemVfs::durable_image`]
//! replays a prefix of the log under those rules to answer "what would
//! the disk hold if the process died right here?" — parameterised by how
//! much unsynced data the hardware happened to flush ([`Survival`]) and
//! whether pending directory entries made it out. A crash-point
//! enumerator walks `0..=ops()` and recovers from each image; see
//! `tests/crash_points.rs`.
//!
//! The model is deliberately pessimistic in one place: re-creating an
//! existing path (`O_TRUNC`) is treated as a *new* inode plus a pending
//! directory entry, so until the directory is fsync'd a crash restores
//! the old contents. That is the conservative reading of what a
//! journaling filesystem may do, and it is the reading the store's
//! tmp-file + rename protocol must survive.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An open writable file handle.
///
/// Handles are positional: writes land at the handle's cursor, which
/// starts wherever the [`Vfs`] opened the file and advances with each
/// write.
pub trait VfsFile: Send {
    /// Writes all of `buf` at the cursor, advancing it.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes written data to durable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Truncates the file to `len` bytes and moves the cursor there.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// The filesystem operations the store needs, as a seam for fault
/// injection. Implementations must be usable from multiple threads.
pub trait Vfs: Send + Sync {
    /// Reads an entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (or truncates) a file for writing, cursor at 0.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for writing, cursor at `pos`.
    fn open_write_at(&self, path: &Path, pos: u64) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically renames `from` to `to` (replacing `to`).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs a directory, making completed entry changes in it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Lists the file paths directly inside `dir` (no recursion), sorted.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// Fsyncs the directory containing `path` (the step that makes a rename
/// or creation of `path` itself durable).
pub fn sync_parent_dir(vfs: &dyn Vfs, path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    vfs.sync_dir(parent)
}

// ---------------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------------

/// The production [`Vfs`]: plain `std::fs`, with directory fsync via
/// opening the directory read-only and `sync_all`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealVfs;

struct RealFile(std::fs::File);

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        self.0.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        use std::io::Seek as _;
        self.0.set_len(len)?;
        self.0.seek(io::SeekFrom::Start(len))?;
        Ok(())
    }
}

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }

    fn open_write_at(&self, path: &Path, pos: u64) -> io::Result<Box<dyn VfsFile>> {
        use std::io::Seek as _;
        let mut file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.seek(io::SeekFrom::Start(pos))?;
        Ok(Box::new(RealFile(file)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::File::open(dir)?.sync_all()
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Fault-injecting in-memory filesystem
// ---------------------------------------------------------------------------

/// How much unsynced (pending) data survives a simulated crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Survival {
    /// Nothing unsynced survives: the disk lost every pending write.
    Nothing,
    /// Per file, pending writes survive up to this many bytes in order —
    /// a torn write: the tail record is partially on disk.
    Torn(usize),
    /// Every pending write survives (the disk happened to flush it all).
    Everything,
}

/// An error injected at a chosen operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedError {
    /// Disk full.
    Enospc,
    /// Generic I/O failure.
    Eio,
}

impl InjectedError {
    // `ErrorKind::StorageFull` needs Rust 1.83 (MSRV here is 1.75), so both
    // injections carry `Other` with an errno-style message.
    fn to_io(self) -> io::Error {
        match self {
            InjectedError::Enospc => io::Error::other("injected ENOSPC: no space left on device"),
            InjectedError::Eio => io::Error::other("injected EIO: input/output error"),
        }
    }
}

/// One logged mutating operation.
#[derive(Debug, Clone)]
enum LogOp {
    Create { path: PathBuf, id: u64 },
    Write { id: u64, at: u64, bytes: Vec<u8> },
    Truncate { id: u64, len: u64 },
    Sync { id: u64 },
    Rename { from: PathBuf, to: PathBuf },
    Remove { path: PathBuf },
    SyncDir { dir: PathBuf },
}

#[derive(Debug, Default)]
struct MemState {
    /// Process-visible directory: path → inode id.
    names: HashMap<PathBuf, u64>,
    /// Process-visible contents per inode.
    files: HashMap<u64, Vec<u8>>,
    next_id: u64,
    /// Every mutating op, in order.
    log: Vec<LogOp>,
    /// Mutating ops attempted (including ones that were failed by
    /// injection); the index injected errors key on.
    attempted: u64,
    /// Injected failures: attempted-op index → error. One-shot.
    fail: HashMap<u64, InjectedError>,
    /// When set, `sync_data` claims success without making anything
    /// durable (a lying disk).
    drop_fsyncs: bool,
    /// After `crash()`, every further op fails with EIO.
    wedged: bool,
}

/// Deterministic in-memory [`Vfs`] with an op log and simulated-crash
/// durable images. See the module docs for the model.
#[derive(Clone, Default)]
pub struct MemVfs {
    state: Arc<Mutex<MemState>>,
}

struct MemFile {
    state: Arc<Mutex<MemState>>,
    id: u64,
    pos: u64,
}

impl MemState {
    /// Charges one mutating op: wedge check, then injected failure.
    fn charge(&mut self) -> io::Result<()> {
        if self.wedged {
            return Err(io::Error::other("simulated crash: filesystem gone"));
        }
        let idx = self.attempted;
        self.attempted += 1;
        if let Some(e) = self.fail.remove(&idx) {
            return Err(e.to_io());
        }
        Ok(())
    }
}

impl MemVfs {
    /// An empty in-memory filesystem.
    pub fn new() -> MemVfs {
        MemVfs::default()
    }

    /// A filesystem seeded with `image` as fully durable content — the
    /// state a process finds after rebooting from a crash.
    pub fn from_image(image: HashMap<PathBuf, Vec<u8>>) -> MemVfs {
        let vfs = MemVfs::new();
        {
            let mut s = vfs.state.lock().unwrap();
            for (path, bytes) in image {
                let id = s.next_id;
                s.next_id += 1;
                s.log.push(LogOp::Create {
                    path: path.clone(),
                    id,
                });
                s.log.push(LogOp::Write {
                    id,
                    at: 0,
                    bytes: bytes.clone(),
                });
                s.log.push(LogOp::Sync { id });
                if let Some(parent) = path.parent() {
                    s.log.push(LogOp::SyncDir {
                        dir: parent.to_path_buf(),
                    });
                }
                s.names.insert(path, id);
                s.files.insert(id, bytes);
            }
            s.attempted = s.log.len() as u64;
        }
        vfs
    }

    /// Number of mutating ops logged so far (crash points are `0..=ops()`).
    pub fn ops(&self) -> usize {
        self.state.lock().unwrap().log.len()
    }

    /// Mutating ops *attempted* so far, including injected failures — the
    /// index space [`MemVfs::fail_op`] keys on.
    pub fn attempted(&self) -> u64 {
        self.state.lock().unwrap().attempted
    }

    /// Makes the `index`-th attempted op from process start fail with `e`
    /// (one-shot). The failed op has no effect and is not logged.
    pub fn fail_op(&self, index: u64, e: InjectedError) {
        self.state.lock().unwrap().fail.insert(index, e);
    }

    /// Turns the lying-disk mode on or off: `sync_data` reports success
    /// but durability never advances.
    pub fn set_drop_fsyncs(&self, on: bool) {
        self.state.lock().unwrap().drop_fsyncs = on;
    }

    /// Simulates the process losing the disk: every subsequent op fails.
    pub fn crash(&self) {
        self.state.lock().unwrap().wedged = true;
    }

    /// `true` when any directory entry change (create/rename/remove)
    /// within `log[..upto]` is still pending a directory fsync — the
    /// crash points where [`MemVfs::durable_image`]'s `dir_ops_survive`
    /// flag makes a difference.
    pub fn has_pending_dir_ops(&self, upto: usize) -> bool {
        let s = self.state.lock().unwrap();
        let mut pending: Vec<Option<PathBuf>> = Vec::new();
        for op in &s.log[..upto.min(s.log.len())] {
            match op {
                LogOp::Create { path, .. } | LogOp::Remove { path } => {
                    pending.push(path.parent().map(Path::to_path_buf));
                }
                LogOp::Rename { to, .. } => pending.push(to.parent().map(Path::to_path_buf)),
                LogOp::SyncDir { dir } => pending.retain(|d| d.as_deref() != Some(dir.as_path())),
                _ => {}
            }
        }
        !pending.is_empty()
    }

    /// The full process-visible (volatile) image: what a clean shutdown
    /// would leave behind.
    pub fn image(&self) -> HashMap<PathBuf, Vec<u8>> {
        let s = self.state.lock().unwrap();
        s.names
            .iter()
            .map(|(path, id)| (path.clone(), s.files[id].clone()))
            .collect()
    }

    /// What the disk holds if the process dies after exactly `upto`
    /// logged ops: replays `log[..upto]` under the durability model, then
    /// applies `survival` to each file's unsynced tail and, when
    /// `dir_ops_survive`, flushes pending directory entries.
    pub fn durable_image(
        &self,
        upto: usize,
        survival: Survival,
        dir_ops_survive: bool,
    ) -> HashMap<PathBuf, Vec<u8>> {
        #[derive(Default)]
        struct Sim {
            durable: Vec<u8>,
            pending: Vec<ContentOp>,
        }
        enum ContentOp {
            Write { at: u64, bytes: Vec<u8> },
            Truncate { len: u64 },
        }
        enum DirOp {
            Create { path: PathBuf, id: u64 },
            Rename { from: PathBuf, to: PathBuf },
            Remove { path: PathBuf },
        }
        impl DirOp {
            fn dir(&self) -> Option<&Path> {
                match self {
                    DirOp::Create { path, .. } | DirOp::Remove { path } => path.parent(),
                    // Same-directory renames only (the store's protocol);
                    // the target's parent is the entry's home.
                    DirOp::Rename { to, .. } => to.parent(),
                }
            }
        }
        fn apply_content(buf: &mut Vec<u8>, op: &ContentOp, clip: Option<usize>) {
            match op {
                ContentOp::Write { at, bytes } => {
                    let take = clip.map_or(bytes.len(), |c| c.min(bytes.len()));
                    let at = *at as usize;
                    if buf.len() < at + take {
                        buf.resize(at + take, 0);
                    }
                    buf[at..at + take].copy_from_slice(&bytes[..take]);
                }
                ContentOp::Truncate { len } => buf.truncate(*len as usize),
            }
        }
        fn apply_dir(names: &mut HashMap<PathBuf, u64>, op: &DirOp) {
            match op {
                DirOp::Create { path, id } => {
                    names.insert(path.clone(), *id);
                }
                DirOp::Rename { from, to } => {
                    if let Some(id) = names.remove(from) {
                        names.insert(to.clone(), id);
                    }
                }
                DirOp::Remove { path } => {
                    names.remove(path);
                }
            }
        }

        let s = self.state.lock().unwrap();
        let mut files: HashMap<u64, Sim> = HashMap::new();
        let mut names: HashMap<PathBuf, u64> = HashMap::new();
        let mut pending_dir: Vec<DirOp> = Vec::new();
        for op in &s.log[..upto.min(s.log.len())] {
            match op {
                LogOp::Create { path, id } => {
                    files.insert(*id, Sim::default());
                    pending_dir.push(DirOp::Create {
                        path: path.clone(),
                        id: *id,
                    });
                }
                LogOp::Write { id, at, bytes } => {
                    files
                        .entry(*id)
                        .or_default()
                        .pending
                        .push(ContentOp::Write {
                            at: *at,
                            bytes: bytes.clone(),
                        });
                }
                LogOp::Truncate { id, len } => files
                    .entry(*id)
                    .or_default()
                    .pending
                    .push(ContentOp::Truncate { len: *len }),
                LogOp::Sync { id } => {
                    if let Some(sim) = files.get_mut(id) {
                        for op in sim.pending.drain(..) {
                            apply_content(&mut sim.durable, &op, None);
                        }
                    }
                }
                LogOp::Rename { from, to } => pending_dir.push(DirOp::Rename {
                    from: from.clone(),
                    to: to.clone(),
                }),
                LogOp::Remove { path } => pending_dir.push(DirOp::Remove { path: path.clone() }),
                // A directory fsync flushes that directory's pending
                // entries, in order; other directories stay pending.
                LogOp::SyncDir { dir } => {
                    let mut kept = Vec::new();
                    for op in pending_dir.drain(..) {
                        if op.dir() == Some(dir.as_path()) {
                            apply_dir(&mut names, &op);
                        } else {
                            kept.push(op);
                        }
                    }
                    pending_dir = kept;
                }
            }
        }
        // The crash: unsynced data survives per `survival`.
        for sim in files.values_mut() {
            match survival {
                Survival::Nothing => sim.pending.clear(),
                Survival::Everything => {
                    for op in sim.pending.drain(..) {
                        apply_content(&mut sim.durable, &op, None);
                    }
                }
                Survival::Torn(limit) => {
                    let mut budget = limit;
                    for op in sim.pending.drain(..) {
                        let len = match &op {
                            ContentOp::Write { bytes, .. } => bytes.len(),
                            ContentOp::Truncate { .. } => 0,
                        };
                        if len <= budget {
                            apply_content(&mut sim.durable, &op, None);
                            budget -= len;
                        } else {
                            apply_content(&mut sim.durable, &op, Some(budget));
                            break;
                        }
                    }
                }
            }
        }
        if dir_ops_survive {
            for op in pending_dir.drain(..) {
                apply_dir(&mut names, &op);
            }
        }
        names
            .into_iter()
            .filter_map(|(path, id)| files.get(&id).map(|sim| (path, sim.durable.clone())))
            .collect()
    }
}

impl Vfs for MemVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let s = self.state.lock().unwrap();
        if s.wedged {
            return Err(io::Error::other("simulated crash: filesystem gone"));
        }
        match s.names.get(path) {
            Some(id) => Ok(s.files[id].clone()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", path.display()),
            )),
        }
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut s = self.state.lock().unwrap();
        s.charge()?;
        let id = s.next_id;
        s.next_id += 1;
        s.log.push(LogOp::Create {
            path: path.to_path_buf(),
            id,
        });
        s.names.insert(path.to_path_buf(), id);
        s.files.insert(id, Vec::new());
        Ok(Box::new(MemFile {
            state: Arc::clone(&self.state),
            id,
            pos: 0,
        }))
    }

    fn open_write_at(&self, path: &Path, pos: u64) -> io::Result<Box<dyn VfsFile>> {
        let s = self.state.lock().unwrap();
        if s.wedged {
            return Err(io::Error::other("simulated crash: filesystem gone"));
        }
        let id = *s.names.get(path).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", path.display()),
            )
        })?;
        Ok(Box::new(MemFile {
            state: Arc::clone(&self.state),
            id,
            pos,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        s.charge()?;
        let id = s.names.remove(from).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", from.display()),
            )
        })?;
        s.names.insert(to.to_path_buf(), id);
        s.log.push(LogOp::Rename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
        });
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        s.charge()?;
        s.names.remove(path).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", path.display()),
            )
        })?;
        s.log.push(LogOp::Remove {
            path: path.to_path_buf(),
        });
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        s.charge()?;
        s.log.push(LogOp::SyncDir {
            dir: dir.to_path_buf(),
        });
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let s = self.state.lock().unwrap();
        if s.wedged {
            return Err(io::Error::other("simulated crash: filesystem gone"));
        }
        let mut out: Vec<PathBuf> = s
            .names
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect();
        out.sort();
        Ok(out)
    }
}

impl VfsFile for MemFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        s.charge()?;
        let at = self.pos;
        s.log.push(LogOp::Write {
            id: self.id,
            at,
            bytes: buf.to_vec(),
        });
        let file = s.files.get_mut(&self.id).expect("inode exists");
        let at = at as usize;
        if file.len() < at + buf.len() {
            file.resize(at + buf.len(), 0);
        }
        file[at..at + buf.len()].copy_from_slice(buf);
        self.pos += buf.len() as u64;
        Ok(())
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        s.charge()?;
        if !s.drop_fsyncs {
            s.log.push(LogOp::Sync { id: self.id });
        }
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        s.charge()?;
        s.log.push(LogOp::Truncate { id: self.id, len });
        s.files
            .get_mut(&self.id)
            .expect("inode exists")
            .truncate(len as usize);
        self.pos = len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn unsynced_writes_are_lost_synced_writes_survive() {
        let vfs = MemVfs::new();
        let mut f = vfs.create(&p("dir/a")).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        vfs.sync_dir(&p("dir")).unwrap();
        f.write_all(b" world").unwrap();
        // Volatile view sees everything.
        assert_eq!(vfs.read(&p("dir/a")).unwrap(), b"hello world");
        // Durable view lost the unsynced tail...
        let img = vfs.durable_image(vfs.ops(), Survival::Nothing, false);
        assert_eq!(img[&p("dir/a")], b"hello");
        // ...unless the disk happened to flush it.
        let img = vfs.durable_image(vfs.ops(), Survival::Everything, false);
        assert_eq!(img[&p("dir/a")], b"hello world");
        // A torn write keeps a byte-prefix.
        let img = vfs.durable_image(vfs.ops(), Survival::Torn(3), false);
        assert_eq!(img[&p("dir/a")], b"hello wo");
    }

    #[test]
    fn rename_needs_a_directory_fsync_to_survive() {
        let vfs = MemVfs::new();
        let mut f = vfs.create(&p("dir/old")).unwrap();
        f.write_all(b"v1").unwrap();
        f.sync_data().unwrap();
        vfs.sync_dir(&p("dir")).unwrap();
        vfs.rename(&p("dir/old"), &p("dir/new")).unwrap();
        // No sync_dir yet: crash leaves the old name.
        let img = vfs.durable_image(vfs.ops(), Survival::Nothing, false);
        assert_eq!(img[&p("dir/old")], b"v1");
        assert!(!img.contains_key(&p("dir/new")));
        assert!(vfs.has_pending_dir_ops(vfs.ops()));
        // The hardware may have flushed the entry anyway.
        let img = vfs.durable_image(vfs.ops(), Survival::Nothing, true);
        assert_eq!(img[&p("dir/new")], b"v1");
        // After sync_dir the rename is durable unconditionally.
        vfs.sync_dir(&p("dir")).unwrap();
        assert!(!vfs.has_pending_dir_ops(vfs.ops()));
        let img = vfs.durable_image(vfs.ops(), Survival::Nothing, false);
        assert_eq!(img[&p("dir/new")], b"v1");
    }

    #[test]
    fn recreating_a_path_keeps_old_contents_until_the_entry_is_durable() {
        let vfs = MemVfs::new();
        let mut f = vfs.create(&p("dir/a")).unwrap();
        f.write_all(b"old").unwrap();
        f.sync_data().unwrap();
        vfs.sync_dir(&p("dir")).unwrap();
        let mut f = vfs.create(&p("dir/a")).unwrap();
        f.write_all(b"new").unwrap();
        f.sync_data().unwrap();
        let img = vfs.durable_image(vfs.ops(), Survival::Nothing, false);
        assert_eq!(img[&p("dir/a")], b"old");
        vfs.sync_dir(&p("dir")).unwrap();
        let img = vfs.durable_image(vfs.ops(), Survival::Nothing, false);
        assert_eq!(img[&p("dir/a")], b"new");
    }

    #[test]
    fn injected_errors_fire_once_at_their_op() {
        let vfs = MemVfs::new();
        let mut f = vfs.create(&p("dir/a")).unwrap(); // op 0
        vfs.fail_op(1, InjectedError::Enospc);
        let err = f.write_all(b"x").unwrap_err(); // op 1: fails
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        f.write_all(b"y").unwrap(); // op 2: fine
        assert_eq!(vfs.read(&p("dir/a")).unwrap(), b"y");
        assert_eq!(vfs.attempted(), 3);
    }

    #[test]
    fn dropped_fsyncs_leave_data_volatile() {
        let vfs = MemVfs::new();
        vfs.set_drop_fsyncs(true);
        let mut f = vfs.create(&p("dir/a")).unwrap();
        f.write_all(b"gone").unwrap();
        f.sync_data().unwrap(); // lies
        vfs.sync_dir(&p("dir")).unwrap();
        let img = vfs.durable_image(vfs.ops(), Survival::Nothing, false);
        assert_eq!(img[&p("dir/a")], b"");
    }

    #[test]
    fn crash_wedges_every_subsequent_op() {
        let vfs = MemVfs::new();
        let mut f = vfs.create(&p("dir/a")).unwrap();
        vfs.crash();
        assert!(f.write_all(b"x").is_err());
        assert!(vfs.read(&p("dir/a")).is_err());
        assert!(vfs.create(&p("dir/b")).is_err());
    }

    #[test]
    fn from_image_round_trips_through_a_clean_crash() {
        let vfs = MemVfs::new();
        let mut f = vfs.create(&p("dir/a")).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync_data().unwrap();
        vfs.sync_dir(&p("dir")).unwrap();
        let rebooted = MemVfs::from_image(vfs.durable_image(vfs.ops(), Survival::Nothing, false));
        assert_eq!(rebooted.read(&p("dir/a")).unwrap(), b"abc");
        // The seeded state is itself durable.
        let img = rebooted.durable_image(rebooted.ops(), Survival::Nothing, false);
        assert_eq!(img[&p("dir/a")], b"abc");
    }
}
