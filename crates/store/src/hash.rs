//! The one home of every hand-rolled hash in the system.
//!
//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) checksums the
//! snapshot-container sections and journal records; FNV-1a 64 fingerprints
//! source CSVs and scores rendezvous shard routing. Both used to be
//! duplicated per call site — this module deduplicates them behind
//! incremental hashers ([`Crc32`], [`Fnv64`]) plus one-shot helpers, and the
//! tests cross-check the table-driven CRC against a bit-at-a-time reference
//! implementation so a corrupted table can never silently ship.

use std::sync::OnceLock;

/// The reflected CRC-32 (IEEE) polynomial.
pub const CRC32_POLY: u32 = 0xEDB8_8320;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    CRC32_POLY ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// An incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh hasher (initial state `0xFFFFFFFF`).
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The final checksum (state xor-out `0xFFFFFFFF`).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// An incremental FNV-1a 64 hasher (the streaming form behind the source-
/// file fingerprint, so a multi-gigabyte CSV never has to sit in memory).
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher (offset-basis state).
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// The hash of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time CRC-32 with no table — the reference the table-driven
    /// implementation is checked against.
    fn crc32_reference(bytes: &[u8]) -> u32 {
        let mut state: u32 = !0;
        for &b in bytes {
            state ^= b as u32;
            for _ in 0..8 {
                state = if state & 1 != 0 {
                    CRC32_POLY ^ (state >> 1)
                } else {
                    state >> 1
                };
            }
        }
        !state
    }

    #[test]
    fn table_matches_bitwise_reference() {
        let samples: [&[u8]; 5] = [
            b"",
            b"123456789",
            b"the quick brown fox jumps over the lazy dog",
            &[0u8; 64],
            &[0xFFu8; 33],
        ];
        for s in samples {
            assert_eq!(crc32(s), crc32_reference(s));
        }
        let mut counting = [0u8; 257];
        for (i, b) in counting.iter_mut().enumerate() {
            *b = i as u8;
        }
        assert_eq!(crc32(&counting), crc32_reference(&counting));
    }

    #[test]
    fn crc_matches_the_standard_check_value() {
        // The canonical CRC-32/ISO-HDLC check: CRC("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc_incremental_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn crc_empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc_detects_single_bit_flips() {
        let mut data = vec![0u8; 64];
        let clean = crc32(&data);
        for bit in 0..(64 * 8) {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&data), clean, "flip of bit {bit} undetected");
            data[bit / 8] ^= 1 << (bit % 8);
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Official FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv_incremental_equals_one_shot() {
        let data = b"layer.csv: 12,34,5.0,1.5";
        let mut h = Fnv64::new();
        for chunk in data.chunks(5) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), fnv1a64(data));
    }
}
