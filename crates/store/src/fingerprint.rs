//! Source fingerprinting: "was this snapshot built from these CSVs?"
//!
//! A snapshot records, per source file, the path, the byte size, and an
//! FNV-1a 64-bit hash of the contents. On engine start the same triple is
//! recomputed from the CSVs on disk; any difference (file renamed, resized,
//! edited) marks the snapshot stale and forces a clean rebuild, so a
//! persisted diagram can never silently serve outdated data.

use crate::hash::Fnv64;
use std::io::Read;
use std::path::{Path, PathBuf};

/// The identity of one source file at snapshot-build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceEntry {
    /// Path as given in the dataset spec.
    pub path: String,
    /// File size in bytes.
    pub size: u64,
    /// FNV-1a 64 hash of the file contents.
    pub hash: u64,
}

/// The identity of the full source file list, in spec order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourceFingerprint {
    /// One entry per source file.
    pub entries: Vec<SourceEntry>,
}

impl SourceFingerprint {
    /// Fingerprints the given files (path + size + content hash), streaming
    /// each file once.
    pub fn of_paths(paths: &[PathBuf]) -> std::io::Result<Self> {
        let entries = paths
            .iter()
            .map(|p| Self::of_path(p))
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(SourceFingerprint { entries })
    }

    fn of_path(path: &Path) -> std::io::Result<SourceEntry> {
        let mut f = std::fs::File::open(path)?;
        let mut hash = Fnv64::new();
        let mut size = 0u64;
        let mut buf = [0u8; 64 * 1024];
        loop {
            let n = f.read(&mut buf)?;
            if n == 0 {
                break;
            }
            size += n as u64;
            hash.update(&buf[..n]);
        }
        Ok(SourceEntry {
            path: path.display().to_string(),
            size,
            hash: hash.finish(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fnv1a64;

    #[test]
    fn fingerprint_tracks_content_changes() {
        let dir = std::env::temp_dir().join("molq_store_fp");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("layer.csv");
        std::fs::write(&path, "1.0,2.0,1.0,1.0\n").unwrap();
        let a = SourceFingerprint::of_paths(std::slice::from_ref(&path)).unwrap();
        assert_eq!(a.entries[0].size, 16);
        assert_eq!(a.entries[0].hash, fnv1a64(b"1.0,2.0,1.0,1.0\n"));

        let same = SourceFingerprint::of_paths(std::slice::from_ref(&path)).unwrap();
        assert_eq!(a, same);

        // Same size, different bytes: hash differs.
        std::fs::write(&path, "1.0,2.0,1.0,9.0\n").unwrap();
        let edited = SourceFingerprint::of_paths(std::slice::from_ref(&path)).unwrap();
        assert_eq!(edited.entries[0].size, a.entries[0].size);
        assert_ne!(a, edited);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(SourceFingerprint::of_paths(&[PathBuf::from("/nonexistent/x.csv")]).is_err());
    }
}
