//! The snapshot payload: a fully-built engine dataset as four sections.
//!
//! | tag | section | contents |
//! |-----|---------|----------|
//! | 1   | META    | dataset name, boundary mode, ε, explicit bounds, source fingerprint |
//! | 2   | SETS    | object sets (name, weight function, objects) |
//! | 3   | MOVD    | search space + OVRs (region geometry + group tuples) |
//! | 4   | GRID    | the point-location grid (CSR arrays) |
//! | 5   | EPOCH   | live-update epoch (optional; only written when > 0) |
//!
//! Readers skip unknown tags (a newer writer may append sections) but
//! require all four core sections. The EPOCH section binds a base snapshot
//! to its sibling delta journal (see [`crate::journal`]): a journal replays
//! only onto the base carrying the same epoch. Epoch 0 (a fresh CSV build)
//! writes no EPOCH section at all, so pre-live-update files are bit-for-bit
//! unchanged. Decoding validates semantic invariants —
//! enum ranges, group references into the object sets, grid consistency —
//! so a checksum-valid but logically impossible file still fails typed, and
//! a loaded snapshot can be served without re-checking anything.

use crate::codec::{Reader, Writer};
use crate::container::{inspect_container, read_container, write_container, ContainerInfo};
use crate::error::StoreError;
use crate::fingerprint::{SourceEntry, SourceFingerprint};
use molq_core::prelude::*;
use molq_geom::{ConvexPolygon, Mbr, Polygon};
use std::path::Path;

/// Section tag: dataset metadata + source fingerprint.
pub const SECTION_META: u32 = 1;
/// Section tag: object sets.
pub const SECTION_SETS: u32 = 2;
/// Section tag: the built MOVD.
pub const SECTION_MOVD: u32 = 3;
/// Section tag: the point-location grid.
pub const SECTION_GRID: u32 = 4;
/// Section tag: the live-update epoch (optional; absent means epoch 0).
pub const SECTION_EPOCH: u32 = 5;

/// A fully-built dataset as persisted to disk.
#[derive(Debug, Clone)]
pub struct StoredSnapshot {
    /// Dataset name.
    pub name: String,
    /// Boundary mode the MOVD was built with.
    pub boundary: Boundary,
    /// Fermat–Weber error bound ε of the build.
    pub eps: f64,
    /// The spec's explicit bounds (`None` when bounds were inferred from the
    /// objects — the resolved bounds live in `movd.bounds`).
    pub explicit_bounds: Option<Mbr>,
    /// Identity of the source CSVs.
    pub fingerprint: SourceFingerprint,
    /// The object sets the diagram was built from.
    pub sets: Vec<ObjectSet>,
    /// The built diagram.
    pub movd: Movd,
    /// The point-location grid over `movd`.
    pub grid: LocateGrid,
    /// Live-update epoch: bumped by every journal compaction. A sibling
    /// journal replays only when its header carries the same epoch. Zero
    /// for a snapshot built straight from CSVs.
    pub update_epoch: u64,
}

impl StoredSnapshot {
    /// Encodes the snapshot into container bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut sections = vec![
            (SECTION_META, self.encode_meta()),
            (SECTION_SETS, encode_sets(&self.sets)),
            (SECTION_MOVD, encode_movd(&self.movd)),
            (SECTION_GRID, encode_grid(&self.grid)),
        ];
        if self.update_epoch > 0 {
            let mut w = Writer::new();
            w.put_u64(self.update_epoch);
            sections.push((SECTION_EPOCH, w.into_bytes()));
        }
        write_container(&sections)
    }

    /// Decodes and validates a snapshot from container bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let sections = read_container(bytes)?;
        let find = |tag: u32| -> Result<&[u8], StoreError> {
            sections
                .iter()
                .find(|s| s.tag == tag)
                .map(|s| s.payload.as_slice())
                .ok_or(StoreError::MissingSection { tag })
        };
        let (name, boundary, eps, explicit_bounds, fingerprint) = decode_meta(find(SECTION_META)?)?;
        let sets = decode_sets(find(SECTION_SETS)?)?;
        let movd = decode_movd(find(SECTION_MOVD)?, &sets)?;
        let grid = decode_grid(find(SECTION_GRID)?, movd.len())?;
        let update_epoch = match sections.iter().find(|s| s.tag == SECTION_EPOCH) {
            None => 0,
            Some(s) => {
                let mut r = Reader::new(&s.payload);
                let epoch = r.u64("update epoch")?;
                r.expect_end("epoch")?;
                if epoch == 0 {
                    return Err(StoreError::malformed(
                        "EPOCH section present but zero (epoch 0 must omit the section)",
                    ));
                }
                epoch
            }
        };
        Ok(StoredSnapshot {
            name,
            boundary,
            eps,
            explicit_bounds,
            fingerprint,
            sets,
            movd,
            grid,
            update_epoch,
        })
    }

    /// [`StoredSnapshot::save_file_on`] against the real filesystem.
    pub fn save_file(&self, path: &Path) -> Result<(), StoreError> {
        self.save_file_on(&crate::vfs::RealVfs, path)
    }

    /// Writes the snapshot atomically and durably: temp file + `sync_data`,
    /// rename, then fsync of the parent directory. A crash mid-save can
    /// never leave a half-written file under the final name, and once this
    /// returns the rename itself survives a crash (without the directory
    /// fsync the new name may vanish — or worse, point at unsynced data —
    /// after power loss).
    pub fn save_file_on(&self, vfs: &dyn crate::vfs::Vfs, path: &Path) -> Result<(), StoreError> {
        let bytes = self.encode();
        let tmp = path.with_extension("molq.tmp");
        {
            let mut file = vfs.create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_data()?;
        }
        vfs.rename(&tmp, path)?;
        crate::vfs::sync_parent_dir(vfs, path)?;
        Ok(())
    }

    /// Reads and fully validates a snapshot file.
    pub fn load_file(path: &Path) -> Result<Self, StoreError> {
        Self::load_file_on(&crate::vfs::RealVfs, path)
    }

    /// [`StoredSnapshot::load_file`] through a [`crate::vfs::Vfs`].
    pub fn load_file_on(vfs: &dyn crate::vfs::Vfs, path: &Path) -> Result<Self, StoreError> {
        Self::decode(&vfs.read(path)?)
    }

    fn encode_meta(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str(&self.name);
        w.put_u8(match self.boundary {
            Boundary::Rrb => 0,
            Boundary::Mbrb => 1,
        });
        w.put_f64(self.eps);
        match &self.explicit_bounds {
            None => w.put_u8(0),
            Some(m) => {
                w.put_u8(1);
                w.put_mbr(m);
            }
        }
        w.put_u32(self.fingerprint.entries.len() as u32);
        for e in &self.fingerprint.entries {
            w.put_str(&e.path);
            w.put_u64(e.size);
            w.put_u64(e.hash);
        }
        w.into_bytes()
    }
}

type Meta = (String, Boundary, f64, Option<Mbr>, SourceFingerprint);

fn decode_meta(payload: &[u8]) -> Result<Meta, StoreError> {
    let mut r = Reader::new(payload);
    let name = r.str("meta name")?;
    let boundary = match r.u8("meta boundary")? {
        0 => Boundary::Rrb,
        1 => Boundary::Mbrb,
        other => {
            return Err(StoreError::malformed(format!(
                "unknown boundary mode {other}"
            )))
        }
    };
    let eps = r.f64("meta eps")?;
    let explicit_bounds = match r.u8("meta bounds flag")? {
        0 => None,
        1 => Some(r.mbr("meta bounds")?),
        other => {
            return Err(StoreError::malformed(format!(
                "bad explicit-bounds flag {other}"
            )))
        }
    };
    let n = r.len_prefix(20, "meta fingerprint")?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(SourceEntry {
            path: r.str("fingerprint path")?,
            size: r.u64("fingerprint size")?,
            hash: r.u64("fingerprint hash")?,
        });
    }
    r.expect_end("meta")?;
    Ok((
        name,
        boundary,
        eps,
        explicit_bounds,
        SourceFingerprint { entries },
    ))
}

fn encode_sets(sets: &[ObjectSet]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(sets.len() as u32);
    for set in sets {
        w.put_str(&set.name);
        w.put_u8(match set.object_weight_fn {
            WeightFunction::Multiplicative => 0,
            WeightFunction::Additive => 1,
        });
        w.put_u32(set.objects.len() as u32);
        for o in &set.objects {
            w.put_point(o.loc);
            w.put_f64(o.w_t);
            w.put_f64(o.w_o);
        }
    }
    w.into_bytes()
}

fn decode_sets(payload: &[u8]) -> Result<Vec<ObjectSet>, StoreError> {
    let mut r = Reader::new(payload);
    let n = r.len_prefix(9, "set count")?;
    let mut sets = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str("set name")?;
        let object_weight_fn = match r.u8("set weight function")? {
            0 => WeightFunction::Multiplicative,
            1 => WeightFunction::Additive,
            other => {
                return Err(StoreError::malformed(format!(
                    "unknown weight function {other}"
                )))
            }
        };
        let count = r.len_prefix(32, "object count")?;
        let mut objects = Vec::with_capacity(count);
        for _ in 0..count {
            objects.push(SpatialObject {
                loc: r.point("object location")?,
                w_t: r.f64("object type weight")?,
                w_o: r.f64("object weight")?,
            });
        }
        sets.push(ObjectSet {
            name,
            objects,
            object_weight_fn,
        });
    }
    r.expect_end("sets")?;
    Ok(sets)
}

fn encode_movd(movd: &Movd) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_mbr(&movd.bounds);
    w.put_u32(movd.ovrs.len() as u32);
    for ovr in &movd.ovrs {
        match &ovr.region {
            Region::Convex(p) => {
                w.put_u8(0);
                w.put_u32(p.vertices().len() as u32);
                for &v in p.vertices() {
                    w.put_point(v);
                }
            }
            Region::Rect(m) => {
                w.put_u8(1);
                w.put_mbr(m);
            }
            Region::General(polys) => {
                w.put_u8(2);
                w.put_u32(polys.len() as u32);
                for p in polys {
                    w.put_u32(p.vertices().len() as u32);
                    for &v in p.vertices() {
                        w.put_point(v);
                    }
                }
            }
        }
        w.put_u32(ovr.pois.len() as u32);
        for poi in &ovr.pois {
            w.put_u32(poi.set as u32);
            w.put_u32(poi.index as u32);
        }
    }
    w.into_bytes()
}

fn decode_movd(payload: &[u8], sets: &[ObjectSet]) -> Result<Movd, StoreError> {
    let mut r = Reader::new(payload);
    let bounds = r.mbr("movd bounds")?;
    let n = r.len_prefix(9, "ovr count")?;
    let mut ovrs = Vec::with_capacity(n);
    for _ in 0..n {
        let region = match r.u8("region kind")? {
            0 => {
                let count = r.len_prefix(16, "convex vertex count")?;
                let mut verts = Vec::with_capacity(count);
                for _ in 0..count {
                    verts.push(r.point("convex vertex")?);
                }
                Region::Convex(ConvexPolygon::from_ccw(verts))
            }
            1 => Region::Rect(r.mbr("region rect")?),
            2 => {
                let polys = r.len_prefix(4, "polygon count")?;
                let mut parts = Vec::with_capacity(polys);
                for _ in 0..polys {
                    let count = r.len_prefix(16, "polygon vertex count")?;
                    let mut verts = Vec::with_capacity(count);
                    for _ in 0..count {
                        verts.push(r.point("polygon vertex")?);
                    }
                    parts.push(Polygon::new(verts));
                }
                Region::General(parts)
            }
            other => {
                return Err(StoreError::malformed(format!(
                    "unknown region kind {other}"
                )))
            }
        };
        let count = r.len_prefix(8, "group size")?;
        let mut pois = Vec::with_capacity(count);
        for _ in 0..count {
            let set = r.u32("group set")? as usize;
            let index = r.u32("group index")? as usize;
            if set >= sets.len() || index >= sets[set].objects.len() {
                return Err(StoreError::malformed(format!(
                    "group references object {index} of set {set}, outside the stored sets"
                )));
            }
            pois.push(ObjectRef { set, index });
        }
        ovrs.push(Ovr { region, pois });
    }
    r.expect_end("movd")?;
    Ok(Movd { bounds, ovrs })
}

fn encode_grid(grid: &LocateGrid) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_mbr(&grid.bounds());
    w.put_u32(grid.cols());
    w.put_u32(grid.rows());
    w.put_u32(grid.offsets().len() as u32);
    for &o in grid.offsets() {
        w.put_u32(o);
    }
    w.put_u32(grid.ids().len() as u32);
    for &id in grid.ids() {
        w.put_u32(id);
    }
    w.into_bytes()
}

fn decode_grid(payload: &[u8], ovr_count: usize) -> Result<LocateGrid, StoreError> {
    let mut r = Reader::new(payload);
    let bounds = r.mbr("grid bounds")?;
    let cols = r.u32("grid cols")?;
    let rows = r.u32("grid rows")?;
    let n_offsets = r.len_prefix(4, "grid offsets")?;
    let mut offsets = Vec::with_capacity(n_offsets);
    for _ in 0..n_offsets {
        offsets.push(r.u32("grid offset")?);
    }
    let n_ids = r.len_prefix(4, "grid ids")?;
    let mut ids = Vec::with_capacity(n_ids);
    for _ in 0..n_ids {
        ids.push(r.u32("grid id")?);
    }
    r.expect_end("grid")?;
    LocateGrid::from_raw(bounds, cols, rows, offsets, ids, ovr_count).map_err(StoreError::malformed)
}

/// Human-facing summary of a snapshot file (the `inspect`/`verify` output).
#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    /// File size in bytes.
    pub file_len: u64,
    /// Container header + section table.
    pub container: ContainerInfo,
    /// Per-section checksum validity, parallel to `container.sections`.
    pub checksums_ok: Vec<bool>,
    /// Decoded summary when the file is fully valid.
    pub summary: Option<SnapshotSummary>,
}

/// Counts decoded from a valid snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotSummary {
    /// Dataset name.
    pub name: String,
    /// Boundary mode.
    pub boundary: Boundary,
    /// ε of the build.
    pub eps: f64,
    /// Number of object sets.
    pub sets: usize,
    /// Total objects across sets.
    pub objects: usize,
    /// Number of OVRs.
    pub ovrs: usize,
    /// Grid dimensions `(cols, rows)`.
    pub grid: (u32, u32),
    /// Live-update epoch of the base (0 = fresh CSV build).
    pub update_epoch: u64,
    /// Source files recorded in the fingerprint.
    pub sources: Vec<SourceEntry>,
}

impl From<&StoredSnapshot> for SnapshotSummary {
    fn from(s: &StoredSnapshot) -> Self {
        SnapshotSummary {
            name: s.name.clone(),
            boundary: s.boundary,
            eps: s.eps,
            sets: s.sets.len(),
            objects: s.sets.iter().map(|set| set.objects.len()).sum(),
            ovrs: s.movd.len(),
            grid: (s.grid.cols(), s.grid.rows()),
            update_epoch: s.update_epoch,
            sources: s.fingerprint.entries.clone(),
        }
    }
}

/// Describes a snapshot file without requiring it to be fully valid: header
/// and section table always (when the framing parses), checksum status per
/// section, and the decoded summary when everything checks out.
pub fn inspect_file(path: &Path) -> Result<SnapshotInfo, StoreError> {
    let bytes = std::fs::read(path)?;
    let (container, checksums_ok) = inspect_container(&bytes)?;
    let summary = StoredSnapshot::decode(&bytes)
        .ok()
        .map(|s| SnapshotSummary::from(&s));
    Ok(SnapshotInfo {
        file_len: bytes.len() as u64,
        container,
        checksums_ok,
        summary,
    })
}

/// Fully validates a snapshot file (framing, every checksum, semantic
/// decode), returning its summary.
pub fn verify_file(path: &Path) -> Result<SnapshotSummary, StoreError> {
    let snapshot = StoredSnapshot::load_file(path)?;
    Ok(SnapshotSummary::from(&snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use molq_geom::Point;

    fn sample() -> StoredSnapshot {
        let sets = vec![
            ObjectSet::uniform("a", 2.0, vec![Point::new(1.0, 1.0), Point::new(9.0, 9.0)]),
            ObjectSet::weighted(
                "b",
                vec![SpatialObject {
                    loc: Point::new(5.0, 5.0),
                    w_t: 1.0,
                    w_o: 3.0,
                }],
                WeightFunction::Additive,
            ),
        ];
        let bounds = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let movd = Movd {
            bounds,
            ovrs: vec![
                Ovr {
                    region: Region::Convex(ConvexPolygon::from_mbr(&Mbr::new(0.0, 0.0, 5.0, 10.0))),
                    pois: vec![
                        ObjectRef { set: 0, index: 0 },
                        ObjectRef { set: 1, index: 0 },
                    ],
                },
                Ovr {
                    region: Region::Rect(Mbr::new(5.0, 0.0, 10.0, 10.0)),
                    pois: vec![ObjectRef { set: 0, index: 1 }],
                },
                Ovr {
                    region: Region::General(vec![Polygon::new(vec![
                        Point::new(2.0, 2.0),
                        Point::new(4.0, 2.0),
                        Point::new(3.0, 4.0),
                    ])]),
                    pois: vec![ObjectRef { set: 1, index: 0 }],
                },
            ],
        };
        let grid = LocateGrid::build(&movd);
        StoredSnapshot {
            name: "default".into(),
            boundary: Boundary::Rrb,
            eps: 1e-3,
            explicit_bounds: Some(bounds),
            fingerprint: SourceFingerprint {
                entries: vec![SourceEntry {
                    path: "/data/a.csv".into(),
                    size: 123,
                    hash: 0xDEAD_BEEF,
                }],
            },
            sets,
            movd,
            grid,
            update_epoch: 0,
        }
    }

    #[test]
    fn epoch_section_round_trips_and_zero_writes_none() {
        let mut snap = sample();
        let plain = snap.encode();
        snap.update_epoch = 7;
        let with_epoch = snap.encode();
        assert_ne!(plain, with_epoch);
        let decoded = StoredSnapshot::decode(&with_epoch).unwrap();
        assert_eq!(decoded.update_epoch, 7);
        // The epoch rides its own section: stripping it recovers the plain bytes.
        let sections = read_container(&with_epoch).unwrap();
        assert!(sections.iter().any(|s| s.tag == SECTION_EPOCH));
        let stripped: Vec<(u32, Vec<u8>)> = sections
            .into_iter()
            .filter(|s| s.tag != SECTION_EPOCH)
            .map(|s| (s.tag, s.payload))
            .collect();
        assert_eq!(write_container(&stripped), plain);
    }

    #[test]
    fn encode_decode_reencode_is_bit_identical() {
        let snap = sample();
        let bytes = snap.encode();
        let decoded = StoredSnapshot::decode(&bytes).unwrap();
        assert_eq!(decoded.encode(), bytes);
        assert_eq!(decoded.name, "default");
        assert_eq!(decoded.sets.len(), 2);
        assert_eq!(decoded.movd.len(), 3);
        assert_eq!(decoded.grid, snap.grid);
        assert_eq!(decoded.fingerprint, snap.fingerprint);
    }

    #[test]
    fn group_reference_outside_sets_is_malformed() {
        let mut snap = sample();
        snap.movd.ovrs[0].pois[0] = ObjectRef { set: 0, index: 99 };
        let bytes = snap.encode();
        assert!(matches!(
            StoredSnapshot::decode(&bytes),
            Err(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn missing_section_is_typed() {
        // Re-frame the container with the GRID section dropped.
        let snap = sample();
        let sections = read_container(&snap.encode()).unwrap();
        let kept: Vec<(u32, Vec<u8>)> = sections
            .into_iter()
            .filter(|s| s.tag != SECTION_GRID)
            .map(|s| (s.tag, s.payload))
            .collect();
        let bytes = write_container(&kept);
        assert!(matches!(
            StoredSnapshot::decode(&bytes),
            Err(StoreError::MissingSection { tag: SECTION_GRID })
        ));
    }

    #[test]
    fn unknown_trailing_sections_are_skipped() {
        let snap = sample();
        let mut sections: Vec<(u32, Vec<u8>)> = read_container(&snap.encode())
            .unwrap()
            .into_iter()
            .map(|s| (s.tag, s.payload))
            .collect();
        sections.push((777, b"from the future".to_vec()));
        let bytes = write_container(&sections);
        let decoded = StoredSnapshot::decode(&bytes).unwrap();
        assert_eq!(decoded.movd.len(), 3);
    }

    #[test]
    fn save_load_verify_inspect_files() {
        let dir = std::env::temp_dir().join("molq_store_files");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.molq");
        let snap = sample();
        snap.save_file(&path).unwrap();

        let loaded = StoredSnapshot::load_file(&path).unwrap();
        assert_eq!(loaded.encode(), snap.encode());

        let summary = verify_file(&path).unwrap();
        assert_eq!(summary.sets, 2);
        assert_eq!(summary.objects, 3);
        assert_eq!(summary.ovrs, 3);

        let info = inspect_file(&path).unwrap();
        assert_eq!(info.container.sections.len(), 4);
        assert!(info.checksums_ok.iter().all(|&ok| ok));
        assert_eq!(info.summary.unwrap().name, "default");

        assert!(StoredSnapshot::load_file(&dir.join("missing.molq"))
            .unwrap_err()
            .is_not_found());
    }

    #[test]
    fn a_flipped_bit_in_each_section_is_a_checksum_error() {
        let snap = sample();
        let clean = snap.encode();
        let sections = read_container(&clean).unwrap();
        // Locate each payload in the file and flip its middle bit.
        let mut cursor = 16usize;
        for s in &sections {
            let payload_start = cursor + 12;
            let mut bytes = clean.clone();
            bytes[payload_start + s.payload.len() / 2] ^= 0x10;
            match StoredSnapshot::decode(&bytes) {
                Err(StoreError::ChecksumMismatch { tag, .. }) => assert_eq!(tag, s.tag),
                other => panic!("section {}: want checksum error, got {other:?}", s.tag),
            }
            cursor = payload_start + s.payload.len() + 4;
        }
    }
}
