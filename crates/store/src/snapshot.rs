//! The snapshot payload: a fully-built engine dataset as four sections.
//!
//! | tag | section | contents |
//! |-----|---------|----------|
//! | 1   | META    | dataset name, boundary mode, ε, explicit bounds, source fingerprint |
//! | 2   | SETS    | object sets (name, weight function, objects) |
//! | 3   | MOVD    | the diagram as arena lanes: bounds, counts, then the kind/offset/vertex/group buffers verbatim |
//! | 4   | GRID    | the point-location grid (CSR arrays) |
//! | 5   | EPOCH   | live-update epoch (optional; only written when > 0) |
//! | 6   | BUILD   | build mode metadata (optional; only written for approximate builds) |
//!
//! Since format version 2 the MOVD section *is* the in-memory
//! [`MovdArena`]: its contiguous lane buffers are written verbatim, so a
//! save is a handful of bulk copies and a restore is bulk copies plus one
//! structural validation pass ([`MovdArena::from_raw`]) — no per-OVR
//! decode loop. [`StoredSnapshot::decode_traced`] reports that
//! copy-vs-validate split.
//!
//! Readers skip unknown tags (a newer writer may append sections) but
//! require all four core sections. The EPOCH section binds a base snapshot
//! to its sibling delta journal (see [`crate::journal`]): a journal replays
//! only onto the base carrying the same epoch. Epoch 0 (a fresh CSV build)
//! writes no EPOCH section at all, so pre-live-update files are bit-for-bit
//! unchanged. The BUILD section works the same way: an exact build writes no
//! BUILD section (pre-tiered-pipeline files are unchanged bit for bit), an
//! approximate build records its ε and refinement counters so a restored
//! snapshot knows how it was built — and the engine can refuse to mix an
//! approximate base with a delta journal or an exact rebuild. Decoding
//! validates semantic invariants —
//! enum ranges, group references into the object sets, grid consistency —
//! so a checksum-valid but logically impossible file still fails typed, and
//! a loaded snapshot can be served without re-checking anything.

use crate::codec::{Reader, Writer};
use crate::container::{inspect_container, read_container, write_container, ContainerInfo};
use crate::error::StoreError;
use crate::fingerprint::{SourceEntry, SourceFingerprint};
use molq_core::prelude::*;
use molq_geom::Mbr;
use std::path::Path;
use std::time::{Duration, Instant};

/// Section tag: dataset metadata + source fingerprint.
pub const SECTION_META: u32 = 1;
/// Section tag: object sets.
pub const SECTION_SETS: u32 = 2;
/// Section tag: the built MOVD.
pub const SECTION_MOVD: u32 = 3;
/// Section tag: the point-location grid.
pub const SECTION_GRID: u32 = 4;
/// Section tag: the live-update epoch (optional; absent means epoch 0).
pub const SECTION_EPOCH: u32 = 5;
/// Section tag: build-mode metadata (optional; absent means an exact build).
pub const SECTION_BUILD: u32 = 6;

/// A fully-built dataset as persisted to disk.
#[derive(Debug, Clone)]
pub struct StoredSnapshot {
    /// Dataset name.
    pub name: String,
    /// Boundary mode the MOVD was built with.
    pub boundary: Boundary,
    /// Fermat–Weber error bound ε of the build.
    pub eps: f64,
    /// The spec's explicit bounds (`None` when bounds were inferred from the
    /// objects — the resolved bounds live in `movd.bounds`).
    pub explicit_bounds: Option<Mbr>,
    /// Identity of the source CSVs.
    pub fingerprint: SourceFingerprint,
    /// The object sets the diagram was built from.
    pub sets: Vec<ObjectSet>,
    /// The built diagram in its contiguous arena layout — the wire format
    /// is the arena's lane buffers, so this field round-trips by bulk copy.
    pub movd: MovdArena,
    /// The point-location grid over `movd`.
    pub grid: LocateGrid,
    /// Live-update epoch: bumped by every journal compaction. A sibling
    /// journal replays only when its header carries the same epoch. Zero
    /// for a snapshot built straight from CSVs.
    pub update_epoch: u64,
    /// How the diagram was built: exact (no BUILD section on disk) or
    /// approximate with its ε and refinement counters.
    pub build: BuildMeta,
}

impl StoredSnapshot {
    /// Encodes the snapshot into container bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut sections = vec![
            (SECTION_META, self.encode_meta()),
            (SECTION_SETS, encode_sets(&self.sets)),
            (SECTION_MOVD, encode_movd(&self.movd)),
            (SECTION_GRID, encode_grid(&self.grid)),
        ];
        if self.update_epoch > 0 {
            let mut w = Writer::new();
            w.put_u64(self.update_epoch);
            sections.push((SECTION_EPOCH, w.into_bytes()));
        }
        if let BuildMode::Approx { epsilon } = self.build.mode {
            let mut w = Writer::new();
            w.put_f64(epsilon);
            w.put_u64(self.build.leaves);
            w.put_u64(self.build.cells_visited);
            w.put_u32(self.build.refinement_depth);
            w.put_u64(self.build.forced_leaves);
            sections.push((SECTION_BUILD, w.into_bytes()));
        }
        write_container(&sections)
    }

    /// Decodes and validates a snapshot from container bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        Self::decode_traced(bytes).map(|(snapshot, _)| snapshot)
    }

    /// [`StoredSnapshot::decode`], additionally reporting how the restore
    /// wall time split between bulk lane copies and structural validation.
    pub fn decode_traced(bytes: &[u8]) -> Result<(Self, DecodeTimings), StoreError> {
        let sections = read_container(bytes)?;
        let find = |tag: u32| -> Result<&[u8], StoreError> {
            sections
                .iter()
                .find(|s| s.tag == tag)
                .map(|s| s.payload.as_slice())
                .ok_or(StoreError::MissingSection { tag })
        };
        let (name, boundary, eps, explicit_bounds, fingerprint) = decode_meta(find(SECTION_META)?)?;
        let sets = decode_sets(find(SECTION_SETS)?)?;
        let mut timings = DecodeTimings::default();
        let movd = decode_movd(find(SECTION_MOVD)?, &sets, &mut timings)?;
        let grid = decode_grid(find(SECTION_GRID)?, movd.len(), &mut timings)?;
        let update_epoch = match sections.iter().find(|s| s.tag == SECTION_EPOCH) {
            None => 0,
            Some(s) => {
                let mut r = Reader::new(&s.payload);
                let epoch = r.u64("update epoch")?;
                r.expect_end("epoch")?;
                if epoch == 0 {
                    return Err(StoreError::malformed(
                        "EPOCH section present but zero (epoch 0 must omit the section)",
                    ));
                }
                epoch
            }
        };
        let build = match sections.iter().find(|s| s.tag == SECTION_BUILD) {
            None => BuildMeta::exact(),
            Some(s) => {
                let mut r = Reader::new(&s.payload);
                let epsilon = r.f64("build epsilon")?;
                let leaves = r.u64("build leaves")?;
                let cells_visited = r.u64("build cells visited")?;
                let refinement_depth = r.u32("build refinement depth")?;
                let forced_leaves = r.u64("build forced leaves")?;
                r.expect_end("build")?;
                let mode = BuildMode::from_epsilon(Some(epsilon));
                if !mode.is_approx() {
                    return Err(StoreError::malformed(format!(
                        "BUILD section present but ε = {epsilon} is not approximate \
                         (exact builds must omit the section)"
                    )));
                }
                BuildMeta {
                    mode,
                    leaves,
                    cells_visited,
                    refinement_depth,
                    forced_leaves,
                }
            }
        };
        Ok((
            StoredSnapshot {
                name,
                boundary,
                eps,
                explicit_bounds,
                fingerprint,
                sets,
                movd,
                grid,
                update_epoch,
                build,
            },
            timings,
        ))
    }

    /// [`StoredSnapshot::save_file_on`] against the real filesystem.
    pub fn save_file(&self, path: &Path) -> Result<(), StoreError> {
        self.save_file_on(&crate::vfs::RealVfs, path)
    }

    /// Writes the snapshot atomically and durably: temp file + `sync_data`,
    /// rename, then fsync of the parent directory. A crash mid-save can
    /// never leave a half-written file under the final name, and once this
    /// returns the rename itself survives a crash (without the directory
    /// fsync the new name may vanish — or worse, point at unsynced data —
    /// after power loss).
    pub fn save_file_on(&self, vfs: &dyn crate::vfs::Vfs, path: &Path) -> Result<(), StoreError> {
        let bytes = self.encode();
        let tmp = path.with_extension("molq.tmp");
        {
            let mut file = vfs.create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_data()?;
        }
        vfs.rename(&tmp, path)?;
        crate::vfs::sync_parent_dir(vfs, path)?;
        Ok(())
    }

    /// Reads and fully validates a snapshot file.
    pub fn load_file(path: &Path) -> Result<Self, StoreError> {
        Self::load_file_on(&crate::vfs::RealVfs, path)
    }

    /// [`StoredSnapshot::load_file`] through a [`crate::vfs::Vfs`].
    pub fn load_file_on(vfs: &dyn crate::vfs::Vfs, path: &Path) -> Result<Self, StoreError> {
        Self::decode(&vfs.read(path)?)
    }

    /// [`StoredSnapshot::load_file_on`] with the copy-vs-validate split.
    pub fn load_file_traced_on(
        vfs: &dyn crate::vfs::Vfs,
        path: &Path,
    ) -> Result<(Self, DecodeTimings), StoreError> {
        Self::decode_traced(&vfs.read(path)?)
    }

    fn encode_meta(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str(&self.name);
        w.put_u8(match self.boundary {
            Boundary::Rrb => 0,
            Boundary::Mbrb => 1,
        });
        w.put_f64(self.eps);
        match &self.explicit_bounds {
            None => w.put_u8(0),
            Some(m) => {
                w.put_u8(1);
                w.put_mbr(m);
            }
        }
        w.put_u32(self.fingerprint.entries.len() as u32);
        for e in &self.fingerprint.entries {
            w.put_str(&e.path);
            w.put_u64(e.size);
            w.put_u64(e.hash);
        }
        w.into_bytes()
    }
}

/// How a snapshot decode's wall time split between moving bytes and
/// checking them. With the arena wire format the MOVD/GRID payloads are
/// bulk-copied into their lane buffers (`copy`) and then validated
/// structurally in one pass (`validate`); the split is surfaced on the
/// server's `/stats` so restores can be compared against rebuilds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeTimings {
    /// Time spent bulk-copying section payloads into lane buffers.
    pub copy: Duration,
    /// Time spent validating structural invariants (CSR offsets, group
    /// references, grid consistency).
    pub validate: Duration,
}

type Meta = (String, Boundary, f64, Option<Mbr>, SourceFingerprint);

fn decode_meta(payload: &[u8]) -> Result<Meta, StoreError> {
    let mut r = Reader::new(payload);
    let name = r.str("meta name")?;
    let boundary = match r.u8("meta boundary")? {
        0 => Boundary::Rrb,
        1 => Boundary::Mbrb,
        other => {
            return Err(StoreError::malformed(format!(
                "unknown boundary mode {other}"
            )))
        }
    };
    let eps = r.f64("meta eps")?;
    let explicit_bounds = match r.u8("meta bounds flag")? {
        0 => None,
        1 => Some(r.mbr("meta bounds")?),
        other => {
            return Err(StoreError::malformed(format!(
                "bad explicit-bounds flag {other}"
            )))
        }
    };
    let n = r.len_prefix(20, "meta fingerprint")?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(SourceEntry {
            path: r.str("fingerprint path")?,
            size: r.u64("fingerprint size")?,
            hash: r.u64("fingerprint hash")?,
        });
    }
    r.expect_end("meta")?;
    Ok((
        name,
        boundary,
        eps,
        explicit_bounds,
        SourceFingerprint { entries },
    ))
}

fn encode_sets(sets: &[ObjectSet]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(sets.len() as u32);
    for set in sets {
        w.put_str(&set.name);
        w.put_u8(match set.object_weight_fn {
            WeightFunction::Multiplicative => 0,
            WeightFunction::Additive => 1,
        });
        w.put_u32(set.objects.len() as u32);
        for o in &set.objects {
            w.put_point(o.loc);
            w.put_f64(o.w_t);
            w.put_f64(o.w_o);
        }
    }
    w.into_bytes()
}

fn decode_sets(payload: &[u8]) -> Result<Vec<ObjectSet>, StoreError> {
    let mut r = Reader::new(payload);
    let n = r.len_prefix(9, "set count")?;
    let mut sets = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str("set name")?;
        let object_weight_fn = match r.u8("set weight function")? {
            0 => WeightFunction::Multiplicative,
            1 => WeightFunction::Additive,
            other => {
                return Err(StoreError::malformed(format!(
                    "unknown weight function {other}"
                )))
            }
        };
        let count = r.len_prefix(32, "object count")?;
        let mut objects = Vec::with_capacity(count);
        for _ in 0..count {
            objects.push(SpatialObject {
                loc: r.point("object location")?,
                w_t: r.f64("object type weight")?,
                w_o: r.f64("object weight")?,
            });
        }
        sets.push(ObjectSet {
            name,
            objects,
            object_weight_fn,
        });
    }
    r.expect_end("sets")?;
    Ok(sets)
}

/// MOVD section, format v2: the arena lane buffers verbatim.
///
/// ```text
/// mbr    bounds
/// u32 ×4 counts: ovrs n, polygons, vertices, group members
/// u8  ×n         kind lane
/// u32 ×(n+1)     polygon offset lane
/// u32 ×(polys+1) vertex offset lane
/// f64 ×2×verts   vertex lane (raw bits)
/// u32 ×(n+1)     group offset lane
/// u32 ×2×members group member lane (set, index pairs)
/// ```
fn encode_movd(arena: &MovdArena) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_mbr(&arena.bounds());
    w.put_u32(arena.len() as u32);
    w.put_u32((arena.vert_off().len() - 1) as u32);
    w.put_u32(arena.verts().len() as u32);
    w.put_u32(arena.pois().len() as u32);
    w.put_u8_slice(arena.kinds());
    w.put_u32_slice(arena.poly_off());
    w.put_u32_slice(arena.vert_off());
    w.put_point_slice(arena.verts());
    w.put_u32_slice(arena.group_off());
    let mut members = Vec::with_capacity(arena.pois().len() * 2);
    for poi in arena.pois() {
        members.push(poi.set as u32);
        members.push(poi.index as u32);
    }
    w.put_u32_slice(&members);
    w.into_bytes()
}

fn decode_movd(
    payload: &[u8],
    sets: &[ObjectSet],
    timings: &mut DecodeTimings,
) -> Result<MovdArena, StoreError> {
    let copy_start = Instant::now();
    let mut r = Reader::new(payload);
    let bounds = r.mbr("movd bounds")?;
    let n = r.u32("ovr count")? as usize;
    let npolys = r.u32("polygon count")? as usize;
    let nverts = r.u32("vertex count")? as usize;
    let nmembers = r.u32("group member count")? as usize;
    let kinds = r.u8_slice(n, "movd kind lane")?;
    let poly_off = r.u32_slice(n.saturating_add(1), "movd polygon offset lane")?;
    let vert_off = r.u32_slice(npolys.saturating_add(1), "movd vertex offset lane")?;
    let verts = r.point_slice(nverts, "movd vertex lane")?;
    let group_off = r.u32_slice(n.saturating_add(1), "movd group offset lane")?;
    let members = r.u32_slice(nmembers.saturating_mul(2), "movd group member lane")?;
    r.expect_end("movd")?;
    let pois: Vec<ObjectRef> = members
        .chunks_exact(2)
        .map(|pair| ObjectRef {
            set: pair[0] as usize,
            index: pair[1] as usize,
        })
        .collect();
    timings.copy += copy_start.elapsed();

    let validate_start = Instant::now();
    for poi in &pois {
        if poi.set >= sets.len() || poi.index >= sets[poi.set].objects.len() {
            return Err(StoreError::malformed(format!(
                "group references object {} of set {}, outside the stored sets",
                poi.index, poi.set
            )));
        }
    }
    let arena = MovdArena::from_raw(bounds, kinds, poly_off, vert_off, verts, group_off, pois)
        .map_err(StoreError::malformed)?;
    timings.validate += validate_start.elapsed();
    Ok(arena)
}

fn encode_grid(grid: &LocateGrid) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_mbr(&grid.bounds());
    w.put_u32(grid.cols());
    w.put_u32(grid.rows());
    w.put_u32(grid.offsets().len() as u32);
    w.put_u32_slice(grid.offsets());
    w.put_u32(grid.ids().len() as u32);
    w.put_u32_slice(grid.ids());
    w.into_bytes()
}

fn decode_grid(
    payload: &[u8],
    ovr_count: usize,
    timings: &mut DecodeTimings,
) -> Result<LocateGrid, StoreError> {
    let copy_start = Instant::now();
    let mut r = Reader::new(payload);
    let bounds = r.mbr("grid bounds")?;
    let cols = r.u32("grid cols")?;
    let rows = r.u32("grid rows")?;
    let n_offsets = r.len_prefix(4, "grid offsets")?;
    let offsets = r.u32_slice(n_offsets, "grid offset lane")?;
    let n_ids = r.len_prefix(4, "grid ids")?;
    let ids = r.u32_slice(n_ids, "grid id lane")?;
    r.expect_end("grid")?;
    timings.copy += copy_start.elapsed();

    let validate_start = Instant::now();
    let grid = LocateGrid::from_raw(bounds, cols, rows, offsets, ids, ovr_count)
        .map_err(StoreError::malformed)?;
    timings.validate += validate_start.elapsed();
    Ok(grid)
}

/// Human-facing summary of a snapshot file (the `inspect`/`verify` output).
#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    /// File size in bytes.
    pub file_len: u64,
    /// Container header + section table.
    pub container: ContainerInfo,
    /// Per-section checksum validity, parallel to `container.sections`.
    pub checksums_ok: Vec<bool>,
    /// Decoded summary when the file is fully valid.
    pub summary: Option<SnapshotSummary>,
}

/// Counts decoded from a valid snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotSummary {
    /// Dataset name.
    pub name: String,
    /// Boundary mode.
    pub boundary: Boundary,
    /// ε of the build.
    pub eps: f64,
    /// Number of object sets.
    pub sets: usize,
    /// Total objects across sets.
    pub objects: usize,
    /// Number of OVRs.
    pub ovrs: usize,
    /// Grid dimensions `(cols, rows)`.
    pub grid: (u32, u32),
    /// Live-update epoch of the base (0 = fresh CSV build).
    pub update_epoch: u64,
    /// Build-mode metadata (exact, or approximate with ε and refinement
    /// counters).
    pub build: BuildMeta,
    /// Source files recorded in the fingerprint.
    pub sources: Vec<SourceEntry>,
}

impl From<&StoredSnapshot> for SnapshotSummary {
    fn from(s: &StoredSnapshot) -> Self {
        SnapshotSummary {
            name: s.name.clone(),
            boundary: s.boundary,
            eps: s.eps,
            sets: s.sets.len(),
            objects: s.sets.iter().map(|set| set.objects.len()).sum(),
            ovrs: s.movd.len(),
            grid: (s.grid.cols(), s.grid.rows()),
            update_epoch: s.update_epoch,
            build: s.build,
            sources: s.fingerprint.entries.clone(),
        }
    }
}

/// Describes a snapshot file without requiring it to be fully valid: header
/// and section table always (when the framing parses), checksum status per
/// section, and the decoded summary when everything checks out.
pub fn inspect_file(path: &Path) -> Result<SnapshotInfo, StoreError> {
    let bytes = std::fs::read(path)?;
    let (container, checksums_ok) = inspect_container(&bytes)?;
    let summary = StoredSnapshot::decode(&bytes)
        .ok()
        .map(|s| SnapshotSummary::from(&s));
    Ok(SnapshotInfo {
        file_len: bytes.len() as u64,
        container,
        checksums_ok,
        summary,
    })
}

/// Fully validates a snapshot file (framing, every checksum, semantic
/// decode), returning its summary.
pub fn verify_file(path: &Path) -> Result<SnapshotSummary, StoreError> {
    let snapshot = StoredSnapshot::load_file(path)?;
    Ok(SnapshotSummary::from(&snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use molq_geom::{ConvexPolygon, Point, Polygon};

    fn sample_parts() -> (Vec<ObjectSet>, Movd) {
        let sets = vec![
            ObjectSet::uniform("a", 2.0, vec![Point::new(1.0, 1.0), Point::new(9.0, 9.0)]),
            ObjectSet::weighted(
                "b",
                vec![SpatialObject {
                    loc: Point::new(5.0, 5.0),
                    w_t: 1.0,
                    w_o: 3.0,
                }],
                WeightFunction::Additive,
            ),
        ];
        let bounds = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let movd = Movd {
            bounds,
            ovrs: vec![
                Ovr {
                    region: Region::Convex(ConvexPolygon::from_mbr(&Mbr::new(0.0, 0.0, 5.0, 10.0))),
                    pois: vec![
                        ObjectRef { set: 0, index: 0 },
                        ObjectRef { set: 1, index: 0 },
                    ],
                },
                Ovr {
                    region: Region::Rect(Mbr::new(5.0, 0.0, 10.0, 10.0)),
                    pois: vec![ObjectRef { set: 0, index: 1 }],
                },
                Ovr {
                    region: Region::General(vec![Polygon::new(vec![
                        Point::new(2.0, 2.0),
                        Point::new(4.0, 2.0),
                        Point::new(3.0, 4.0),
                    ])]),
                    pois: vec![ObjectRef { set: 1, index: 0 }],
                },
            ],
        };
        (sets, movd)
    }

    fn assemble(sets: Vec<ObjectSet>, movd: Movd) -> StoredSnapshot {
        let grid = LocateGrid::build(&movd);
        StoredSnapshot {
            name: "default".into(),
            boundary: Boundary::Rrb,
            eps: 1e-3,
            explicit_bounds: Some(movd.bounds),
            fingerprint: SourceFingerprint {
                entries: vec![SourceEntry {
                    path: "/data/a.csv".into(),
                    size: 123,
                    hash: 0xDEAD_BEEF,
                }],
            },
            sets,
            movd: MovdArena::from_movd(&movd),
            grid,
            update_epoch: 0,
            build: BuildMeta::exact(),
        }
    }

    fn sample() -> StoredSnapshot {
        let (sets, movd) = sample_parts();
        assemble(sets, movd)
    }

    #[test]
    fn epoch_section_round_trips_and_zero_writes_none() {
        let mut snap = sample();
        let plain = snap.encode();
        snap.update_epoch = 7;
        let with_epoch = snap.encode();
        assert_ne!(plain, with_epoch);
        let decoded = StoredSnapshot::decode(&with_epoch).unwrap();
        assert_eq!(decoded.update_epoch, 7);
        // The epoch rides its own section: stripping it recovers the plain bytes.
        let sections = read_container(&with_epoch).unwrap();
        assert!(sections.iter().any(|s| s.tag == SECTION_EPOCH));
        let stripped: Vec<(u32, Vec<u8>)> = sections
            .into_iter()
            .filter(|s| s.tag != SECTION_EPOCH)
            .map(|s| (s.tag, s.payload))
            .collect();
        assert_eq!(write_container(&stripped), plain);
    }

    #[test]
    fn build_section_round_trips_and_exact_writes_none() {
        let mut snap = sample();
        let plain = snap.encode();
        snap.build = BuildMeta {
            mode: BuildMode::Approx { epsilon: 0.125 },
            leaves: 4096,
            cells_visited: 5500,
            refinement_depth: 9,
            forced_leaves: 0,
        };
        let with_build = snap.encode();
        assert_ne!(plain, with_build);
        let decoded = StoredSnapshot::decode(&with_build).unwrap();
        assert_eq!(decoded.build, snap.build);
        assert!(decoded
            .build
            .mode
            .bits_eq(&BuildMode::Approx { epsilon: 0.125 }));
        // Approx snapshots re-encode bit-identically too.
        assert_eq!(decoded.encode(), with_build);
        // The metadata rides its own section: stripping it recovers the
        // plain bytes, so exact snapshots are byte-compatible with
        // pre-tiered-pipeline files.
        let sections = read_container(&with_build).unwrap();
        assert!(sections.iter().any(|s| s.tag == SECTION_BUILD));
        let stripped: Vec<(u32, Vec<u8>)> = sections
            .into_iter()
            .filter(|s| s.tag != SECTION_BUILD)
            .map(|s| (s.tag, s.payload))
            .collect();
        assert_eq!(write_container(&stripped), plain);
        // And the summary carries it.
        let summary = SnapshotSummary::from(&snap);
        assert!(summary.build.mode.is_approx());
        assert!(summary.build.fully_certified());
    }

    #[test]
    fn build_section_with_exact_epsilon_is_malformed() {
        let snap = sample();
        let mut sections: Vec<(u32, Vec<u8>)> = read_container(&snap.encode())
            .unwrap()
            .into_iter()
            .map(|s| (s.tag, s.payload))
            .collect();
        let mut w = Writer::new();
        w.put_f64(0.0);
        w.put_u64(0);
        w.put_u64(0);
        w.put_u32(0);
        w.put_u64(0);
        sections.push((SECTION_BUILD, w.into_bytes()));
        let bytes = write_container(&sections);
        assert!(matches!(
            StoredSnapshot::decode(&bytes),
            Err(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn encode_decode_reencode_is_bit_identical() {
        let snap = sample();
        let bytes = snap.encode();
        let decoded = StoredSnapshot::decode(&bytes).unwrap();
        assert_eq!(decoded.encode(), bytes);
        assert_eq!(decoded.name, "default");
        assert_eq!(decoded.sets.len(), 2);
        assert_eq!(decoded.movd.len(), 3);
        assert_eq!(decoded.grid, snap.grid);
        assert_eq!(decoded.fingerprint, snap.fingerprint);
    }

    #[test]
    fn group_reference_outside_sets_is_malformed() {
        let (sets, mut movd) = sample_parts();
        movd.ovrs[0].pois[0] = ObjectRef { set: 0, index: 99 };
        let bytes = assemble(sets, movd).encode();
        assert!(matches!(
            StoredSnapshot::decode(&bytes),
            Err(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn decode_traced_reports_the_copy_validate_split() {
        let snap = sample();
        let bytes = snap.encode();
        let (decoded, timings) = StoredSnapshot::decode_traced(&bytes).unwrap();
        assert_eq!(decoded.encode(), bytes);
        // Both phases ran (durations are monotone; zero is possible only on
        // a clock too coarse to matter, so just check they are finite).
        assert!(timings.copy + timings.validate < Duration::from_secs(60));
    }

    #[test]
    fn corrupted_arena_offset_lane_is_malformed_not_panic() {
        // Patch the MOVD payload's first polygon-offset entry to a wild
        // value and re-frame the container so the CRC is valid again: the
        // damage must surface as typed Malformed from arena validation,
        // never a panic or out-of-bounds access.
        let snap = sample();
        let mut sections: Vec<(u32, Vec<u8>)> = read_container(&snap.encode())
            .unwrap()
            .into_iter()
            .map(|s| (s.tag, s.payload))
            .collect();
        let payload = &mut sections
            .iter_mut()
            .find(|(tag, _)| *tag == SECTION_MOVD)
            .unwrap()
            .1;
        // bounds (32) + four counts (16) + kind lane (3 OVRs) = poly_off[0].
        let lane = 32 + 16 + snap.movd.len();
        payload[lane..lane + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let bytes = write_container(&sections);
        assert!(matches!(
            StoredSnapshot::decode(&bytes),
            Err(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn missing_section_is_typed() {
        // Re-frame the container with the GRID section dropped.
        let snap = sample();
        let sections = read_container(&snap.encode()).unwrap();
        let kept: Vec<(u32, Vec<u8>)> = sections
            .into_iter()
            .filter(|s| s.tag != SECTION_GRID)
            .map(|s| (s.tag, s.payload))
            .collect();
        let bytes = write_container(&kept);
        assert!(matches!(
            StoredSnapshot::decode(&bytes),
            Err(StoreError::MissingSection { tag: SECTION_GRID })
        ));
    }

    #[test]
    fn unknown_trailing_sections_are_skipped() {
        let snap = sample();
        let mut sections: Vec<(u32, Vec<u8>)> = read_container(&snap.encode())
            .unwrap()
            .into_iter()
            .map(|s| (s.tag, s.payload))
            .collect();
        sections.push((777, b"from the future".to_vec()));
        let bytes = write_container(&sections);
        let decoded = StoredSnapshot::decode(&bytes).unwrap();
        assert_eq!(decoded.movd.len(), 3);
    }

    #[test]
    fn save_load_verify_inspect_files() {
        let dir = std::env::temp_dir().join("molq_store_files");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.molq");
        let snap = sample();
        snap.save_file(&path).unwrap();

        let loaded = StoredSnapshot::load_file(&path).unwrap();
        assert_eq!(loaded.encode(), snap.encode());

        let summary = verify_file(&path).unwrap();
        assert_eq!(summary.sets, 2);
        assert_eq!(summary.objects, 3);
        assert_eq!(summary.ovrs, 3);

        let info = inspect_file(&path).unwrap();
        assert_eq!(info.container.sections.len(), 4);
        assert!(info.checksums_ok.iter().all(|&ok| ok));
        assert_eq!(info.summary.unwrap().name, "default");

        assert!(StoredSnapshot::load_file(&dir.join("missing.molq"))
            .unwrap_err()
            .is_not_found());
    }

    #[test]
    fn a_flipped_bit_in_each_section_is_a_checksum_error() {
        let snap = sample();
        let clean = snap.encode();
        let sections = read_container(&clean).unwrap();
        // Locate each payload in the file and flip its middle bit.
        let mut cursor = 16usize;
        for s in &sections {
            let payload_start = cursor + 12;
            let mut bytes = clean.clone();
            bytes[payload_start + s.payload.len() / 2] ^= 0x10;
            match StoredSnapshot::decode(&bytes) {
                Err(StoreError::ChecksumMismatch { tag, .. }) => assert_eq!(tag, s.tag),
                other => panic!("section {}: want checksum error, got {other:?}", s.tag),
            }
            cursor = payload_start + s.payload.len() + 4;
        }
    }
}
