//! Typed snapshot-store errors.
//!
//! Read failures are distinguished precisely so callers can react
//! differently: a [`StoreError::BadMagic`] means "this is not a snapshot at
//! all", a [`StoreError::UnsupportedVersion`] means "written by a format
//! version this build does not speak" (older *or* newer — the arena layout
//! of v2 is not a superset of v1, so both directions rebuild),
//! a [`StoreError::ChecksumMismatch`] means "bit rot or tampering",
//! and [`StoreError::Truncated`] means "the write never finished". The
//! serving engine falls back to a clean CSV rebuild on any of them.

use std::fmt;

/// Why a snapshot could not be read (or written).
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure (open, read, write, rename).
    Io(std::io::Error),
    /// The file (or a section payload) ends before its declared length.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The first bytes are not the snapshot magic.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 8],
    },
    /// The header declares a format version this build cannot read (older
    /// or newer than the one layout it speaks).
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// The version this build understands.
        supported: u32,
    },
    /// A section's payload does not hash to its recorded CRC-32.
    ChecksumMismatch {
        /// Section tag.
        tag: u32,
        /// CRC recorded in the file.
        expected: u32,
        /// CRC of the payload as read.
        actual: u32,
    },
    /// A required section is absent (unknown sections are skipped, but the
    /// four core sections must all be present).
    MissingSection {
        /// Tag of the missing section.
        tag: u32,
    },
    /// The bytes decoded but violate a semantic invariant (bad enum value,
    /// out-of-range reference, inconsistent grid).
    Malformed {
        /// What went wrong.
        context: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Truncated { context } => {
                write!(f, "truncated snapshot while reading {context}")
            }
            StoreError::BadMagic { found } => {
                write!(f, "not a molq snapshot (magic {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not the supported version {supported}"
            ),
            StoreError::ChecksumMismatch {
                tag,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in section {tag}: recorded {expected:#010x}, computed {actual:#010x}"
            ),
            StoreError::MissingSection { tag } => {
                write!(f, "required section {tag} is missing")
            }
            StoreError::Malformed { context } => write!(f, "malformed snapshot: {context}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl StoreError {
    /// Shorthand for a [`StoreError::Malformed`].
    pub fn malformed(context: impl Into<String>) -> Self {
        StoreError::Malformed {
            context: context.into(),
        }
    }

    /// `true` when this error means "no snapshot file exists" (a normal cold
    /// start) rather than a damaged or incompatible file.
    pub fn is_not_found(&self) -> bool {
        matches!(self, StoreError::Io(e) if e.kind() == std::io::ErrorKind::NotFound)
    }
}
