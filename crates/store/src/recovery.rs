//! The crash-recovery ladder: one shared decision procedure for turning
//! whatever a crash left on disk back into a servable dataset.
//!
//! Both the serving engine (on [`RealVfs`](crate::vfs::RealVfs)) and the
//! crash-point test harness (on [`MemVfs`](crate::vfs::MemVfs)) call
//! [`recover`], so the recovery logic the tests enumerate crash images
//! against is byte-for-byte the logic production runs.
//!
//! The ladder, in order of preference:
//!
//! 1. **base + full journal replay** — the clean case;
//! 2. **base + salvaged prefix** — the journal's tail is torn (crash
//!    mid-append) or defective (bit rot): replay the longest valid record
//!    prefix and truncate the rest on reopen;
//! 3. **base alone** — the journal is missing, unreadable, or bound to a
//!    different dataset/epoch: set it aside and serve the base. Every
//!    update the base itself captured survives;
//! 4. only when the **base** is unreadable does recovery fail — the
//!    caller falls back to rebuilding from source CSVs.
//!
//! Rung 3 is deliberate: a defective journal *header* must not throw away
//! a perfectly good base, and rung 2 is what makes an fsync-acknowledged
//! prefix survive a torn tail instead of triggering a full rebuild.

use crate::error::StoreError;
use crate::journal::{journal_path, load_journal_on, JournalRecord};
use crate::snapshot::{DecodeTimings, StoredSnapshot};
use crate::vfs::{sync_parent_dir, Vfs};
use std::path::{Path, PathBuf};

/// The base snapshot path for dataset `name` in `dir`.
pub fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.molq"))
}

/// What [`recover`] decided about the journal sidecar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalDisposition {
    /// No journal file exists (a freshly compacted or never-updated base).
    Missing,
    /// Every record replayed cleanly.
    Clean,
    /// The file ends in a partial record — the classic crash-mid-append
    /// shape. The complete prefix replayed.
    TornTail {
        /// Bytes of partial record past the valid prefix.
        dropped_bytes: u64,
    },
    /// A complete record failed validation; the valid prefix replayed and
    /// the defective tail is dropped (bit rot, not a crash shape).
    Salvaged {
        /// Bytes past the valid prefix.
        dropped_bytes: u64,
        /// The validation failure that ended the prefix.
        defect: String,
    },
    /// The journal is unusable (defective header, or bound to another
    /// dataset/epoch). Nothing replayed; the caller should move the file
    /// aside ([`set_aside_journal`]) and serve the base alone.
    SetAside {
        /// Why the journal could not be trusted.
        reason: String,
    },
}

impl JournalDisposition {
    /// True when the journal file should be renamed out of the way before
    /// a fresh one is created.
    pub fn needs_set_aside(&self) -> bool {
        matches!(self, JournalDisposition::SetAside { .. })
    }
}

/// A recovered dataset: the base snapshot plus the journal records to
/// replay onto it.
#[derive(Debug)]
pub struct Recovery {
    /// The base snapshot, fully validated.
    pub base: StoredSnapshot,
    /// The valid record prefix to replay, in append order (empty unless
    /// the disposition is `Clean`/`TornTail`/`Salvaged` with records).
    pub records: Vec<JournalRecord>,
    /// What happened to the journal.
    pub disposition: JournalDisposition,
    /// How the base decode's wall time split between bulk lane copies and
    /// structural validation (surfaced on the server's `/stats`).
    pub timings: DecodeTimings,
}

/// Recovers dataset `name` from `dir`: loads and validates the base
/// snapshot, then reads the journal sidecar and decides its disposition
/// (see the module docs for the ladder). Errors only when the *base*
/// cannot be loaded — the one case where the caller must rebuild from
/// sources.
pub fn recover(vfs: &dyn Vfs, dir: &Path, name: &str) -> Result<Recovery, StoreError> {
    let (base, timings) = StoredSnapshot::load_file_traced_on(vfs, &snapshot_path(dir, name))?;
    let jpath = journal_path(dir, name);
    let (records, disposition) = match load_journal_on(vfs, &jpath) {
        Err(e) if e.is_not_found() => (Vec::new(), JournalDisposition::Missing),
        Err(e) => (
            Vec::new(),
            JournalDisposition::SetAside {
                reason: e.to_string(),
            },
        ),
        Ok(load) => {
            if load.name != base.name || load.epoch != base.update_epoch {
                let reason = format!(
                    "journal is for dataset {:?} epoch {}, base is {:?} epoch {}",
                    load.name, load.epoch, base.name, base.update_epoch
                );
                (Vec::new(), JournalDisposition::SetAside { reason })
            } else if load.salvaged_bytes > 0 {
                let disposition = JournalDisposition::Salvaged {
                    dropped_bytes: load.salvaged_bytes,
                    defect: load.defect.clone().unwrap_or_default(),
                };
                (load.records, disposition)
            } else if load.torn_tail {
                let file_len = vfs.read(&jpath)?.len() as u64;
                let disposition = JournalDisposition::TornTail {
                    dropped_bytes: file_len.saturating_sub(load.valid_len()),
                };
                (load.records, disposition)
            } else {
                (load.records, JournalDisposition::Clean)
            }
        }
    };
    Ok(Recovery {
        base,
        records,
        disposition,
        timings,
    })
}

/// Renames an untrusted journal to `<path>.<suffix>` (e.g. suffix
/// `"stale"` or `"corrupt"`), fsyncing the directory so the move itself
/// is durable. Returns the new path.
pub fn set_aside_journal(vfs: &dyn Vfs, path: &Path, suffix: &str) -> Result<PathBuf, StoreError> {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".");
    name.push(suffix);
    let aside = path.with_file_name(name);
    vfs.rename(path, &aside)?;
    sync_parent_dir(vfs, path)?;
    Ok(aside)
}

/// Removes orphaned atomic-write temp files (`*.molq.tmp`,
/// `*.journal.tmp`) from `dir` — the droppings of saves that died between
/// creating the tmp and renaming it. Returns the removed paths. A missing
/// directory is fine (nothing to sweep); per-file removal races are
/// ignored.
pub fn sweep_tmp(vfs: &dyn Vfs, dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let entries = match vfs.list(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut swept = Vec::new();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.ends_with(".molq.tmp") || name.ends_with(".journal.tmp") {
            match vfs.remove_file(&path) {
                Ok(()) => swept.push(path),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
    Ok(swept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use crate::vfs::MemVfs;
    use std::sync::Arc;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn sweep_removes_only_molq_tmp_droppings() {
        let vfs = MemVfs::new();
        for name in [
            "snap/d.molq",
            "snap/d.molq.tmp",
            "snap/d.journal",
            "snap/d.journal.tmp",
            "snap/other.txt",
            "snap/unrelated.tmp",
        ] {
            vfs.create(&p(name)).unwrap();
        }
        let swept = sweep_tmp(&vfs, &p("snap")).unwrap();
        assert_eq!(swept, vec![p("snap/d.journal.tmp"), p("snap/d.molq.tmp")]);
        let left = vfs.list(&p("snap")).unwrap();
        assert_eq!(
            left,
            vec![
                p("snap/d.journal"),
                p("snap/d.molq"),
                p("snap/other.txt"),
                p("snap/unrelated.tmp"),
            ]
        );
        // A directory that never existed sweeps to nothing.
        assert!(sweep_tmp(&vfs, &p("missing")).unwrap().is_empty());
    }

    #[test]
    fn set_aside_appends_the_suffix_and_keeps_the_bytes() {
        let vfs = MemVfs::new();
        let path = p("snap/d.journal");
        Journal::create_on(Arc::new(vfs.clone()), &path, "d", 1).unwrap();
        let aside = set_aside_journal(&vfs, &path, "stale").unwrap();
        assert_eq!(aside, p("snap/d.journal.stale"));
        assert!(vfs.read(&path).is_err());
        assert!(!vfs.read(&aside).unwrap().is_empty());
    }
}
