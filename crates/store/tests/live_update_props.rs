//! Property-based byte-identity for live updates: a random interleaving of
//! inserts and removes, applied incrementally through `LiveMovd::apply`,
//! must leave the dataset **bit-identical** — as checked through the
//! store's bit-exact snapshot encoding — to rebuilding the whole MOVD from
//! scratch after every step. Rejected updates (duplicate coordinates,
//! emptying a set) must leave the encoded bytes untouched.

use molq_core::prelude::*;
use molq_geom::{Mbr, Point};
use molq_store::{SourceFingerprint, StoredSnapshot};
use proptest::prelude::*;

fn bounds() -> Mbr {
    Mbr::new(0.0, 0.0, 100.0, 100.0)
}

/// Distinct lattice coordinates; index 0 maps to `-0.0` so signed zero
/// flows through patching, journal-style encoding, and the grid.
fn lattice(i: usize) -> f64 {
    if i == 0 {
        -0.0
    } else {
        i as f64 * 7.25
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Insert at a lattice point (may collide with an existing object —
    /// then the update must be rejected without changing a byte).
    Insert {
        set: usize,
        xi: usize,
        yi: usize,
        w_o: f64,
    },
    /// Remove `index % len` (or be rejected when the set has one object).
    Remove { set: usize, index: usize },
    /// Insert an exact duplicate of an existing object's location — always
    /// rejected by the underlying Voronoi builder.
    InsertDuplicate { set: usize, index: usize },
}

fn arb_sets() -> impl Strategy<Value = Vec<ObjectSet>> {
    prop::collection::vec(prop::collection::vec((0usize..12, 0usize..12), 2..8), 2..4).prop_map(
        |raw| {
            raw.into_iter()
                .enumerate()
                .map(|(k, cells)| {
                    // Dedup lattice cells so every site is distinct; top up to
                    // the two-object minimum when the draw collapses.
                    let mut seen = std::collections::HashSet::new();
                    let mut pts: Vec<Point> = cells
                        .into_iter()
                        .filter(|cell| seen.insert(*cell))
                        .map(|(xi, yi)| Point::new(lattice(xi), lattice(yi)))
                        .collect();
                    for cand in [(11 - k, k + 1), (10 - k, k + 2)] {
                        if pts.len() >= 2 {
                            break;
                        }
                        if seen.insert(cand) {
                            pts.push(Point::new(lattice(cand.0), lattice(cand.1)));
                        }
                    }
                    let name = format!("set{k}");
                    ObjectSet::uniform(&name, 1.0 + k as f64 * 0.5, pts)
                })
                .collect()
        },
    )
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0usize..4, 0usize..8, 0usize..12, 0usize..12, 1usize..4).prop_map(
            |(kind, sel, xi, yi, w)| match kind {
                0 | 1 => Op::Insert {
                    set: sel,
                    xi,
                    yi,
                    w_o: w as f64,
                },
                2 => Op::Remove {
                    set: sel,
                    index: xi,
                },
                _ => Op::InsertDuplicate {
                    set: sel,
                    index: xi,
                },
            },
        ),
        1..7,
    )
}

/// Wraps a diagram + grid in a snapshot so comparison uses the store's
/// bit-exact encoding (raw IEEE-754 bits, canonical section order).
fn encode(sets: &[ObjectSet], movd: MovdArena, grid: &LocateGrid, boundary: Boundary) -> Vec<u8> {
    StoredSnapshot {
        name: "live".into(),
        boundary,
        eps: 1e-6,
        explicit_bounds: Some(bounds()),
        fingerprint: SourceFingerprint { entries: vec![] },
        sets: sets.to_vec(),
        movd,
        grid: grid.clone(),
        update_epoch: 0,
        build: BuildMeta::exact(),
    }
    .encode()
}

fn encode_live(live: &LiveMovd, boundary: Boundary) -> Vec<u8> {
    // Encodes the *patched* arena directly — the copy-on-write publish path
    // is what must be byte-identical to a from-scratch rebuild.
    encode(
        live.sets(),
        live.index().arena().clone(),
        live.index().grid(),
        boundary,
    )
}

fn run_sequence(
    sets: Vec<ObjectSet>,
    ops: Vec<Op>,
    boundary: Boundary,
) -> Result<(), TestCaseError> {
    let exec = ExecConfig::serial();
    let mut live = match LiveMovd::build(sets, bounds(), boundary, exec) {
        Ok(live) => live,
        // The random lattice subsets are distinct within a set, so the
        // initial build can only fail on pathological shapes; skip those.
        Err(_) => return Ok(()),
    };

    for op in ops {
        let before = encode_live(&live, boundary);
        let update = match op {
            Op::Insert { set, xi, yi, w_o } => Update::Insert {
                set: set % live.sets().len(),
                object: SpatialObject {
                    loc: Point::new(lattice(xi), lattice(yi)),
                    w_t: 1.0,
                    w_o,
                },
            },
            Op::Remove { set, index } => {
                let set = set % live.sets().len();
                Update::Remove {
                    set,
                    index: index % live.sets()[set].objects.len(),
                }
            }
            Op::InsertDuplicate { set, index } => {
                let set = set % live.sets().len();
                let index = index % live.sets()[set].objects.len();
                Update::Insert {
                    set,
                    object: SpatialObject {
                        loc: live.sets()[set].objects[index].loc,
                        w_t: 1.0,
                        w_o: 1.0,
                    },
                }
            }
        };

        match live.apply(&update) {
            Ok(_) => {
                // Patched state must encode byte-for-byte like a from-scratch
                // rebuild over the updated sets.
                let fresh =
                    Movd::overlap_all_with(live.sets(), bounds(), boundary, exec).expect("rebuild");
                let grid = LocateGrid::build(&fresh);
                prop_assert_eq!(
                    encode_live(&live, boundary),
                    encode(live.sets(), MovdArena::from_movd(&fresh), &grid, boundary)
                );
            }
            Err(_) => {
                // A rejected update (duplicate coordinates, emptying a set,
                // ...) must leave the encoded dataset untouched.
                prop_assert_eq!(encode_live(&live, boundary), before);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interleaved_updates_match_fresh_rebuild_rrb(sets in arb_sets(), ops in arb_ops()) {
        run_sequence(sets, ops, Boundary::Rrb)?;
    }

    #[test]
    fn interleaved_updates_match_fresh_rebuild_mbrb(sets in arb_sets(), ops in arb_ops()) {
        run_sequence(sets, ops, Boundary::Mbrb)?;
    }

    #[test]
    fn duplicate_inserts_are_always_rejected(sets in arb_sets(), which in 0usize..16) {
        let exec = ExecConfig::serial();
        let mut live = match LiveMovd::build(sets, bounds(), Boundary::Rrb, exec) {
            Ok(live) => live,
            Err(_) => return Ok(()),
        };
        let set = which % live.sets().len();
        let index = which % live.sets()[set].objects.len();
        let before = encode_live(&live, Boundary::Rrb);
        let dup = Update::Insert {
            set,
            object: SpatialObject {
                loc: live.sets()[set].objects[index].loc,
                w_t: 1.0,
                w_o: 1.0,
            },
        };
        prop_assert!(live.apply(&dup).is_err());
        prop_assert_eq!(encode_live(&live, Boundary::Rrb), before);
    }
}
