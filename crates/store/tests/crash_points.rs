//! Crash-point enumeration: the recovery invariant, checked at **every**
//! injectable crash offset of a realistic update workload.
//!
//! The workload runs a base snapshot save, a journaled update stream
//! (`MOLQ_CRASH_UPDATES` records, default 60; CI runs 220), and one
//! mid-stream compaction — all against a [`MemVfs`] that logs every I/O
//! operation. For each prefix of that op log we materialize the durable
//! image a kernel could leave behind (nothing / a torn 16-byte fragment /
//! everything of the unsynced tail; directory entries flushed or not) and
//! run the production [`recover`] ladder over it. The invariant:
//!
//! 1. recovery never fails once the initial base save is durable (the CSV
//!    rebuild rung is reserved for a base that never made it to disk);
//! 2. the recovered base is byte-identical to a snapshot the workload
//!    actually saved, and the replayed records are an **exact prefix** of
//!    the updates issued against that base's epoch — no phantoms, no
//!    reordering, no cross-epoch resurrection;
//! 3. every fsync-**acknowledged** update of that epoch is present — an
//!    acked update survives any crash, full stop;
//! 4. a pure crash never presents as bit rot (`Salvaged` is reserved for
//!    defective complete records, which power loss cannot forge past a CRC).

use molq_core::prelude::*;
use molq_geom::{Mbr, Point};
use molq_store::{
    journal_path, recover, snapshot_path, Journal, JournalDisposition, JournalRecord, MemVfs,
    SourceFingerprint, StoredSnapshot, Survival, Vfs,
};
use std::path::PathBuf;
use std::sync::Arc;

const NAME: &str = "drill";

fn snap_dir() -> PathBuf {
    PathBuf::from("snap")
}

fn workload_size() -> usize {
    std::env::var("MOLQ_CRASH_UPDATES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// Deterministic xorshift-multiply generator — the workload is randomized
/// but reproducible (no ambient entropy in a crash matrix).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// A small but real dataset (two layers, full MOVD + grid) so the base
/// snapshot exercises the production encode/decode path. The epoch is the
/// only thing compaction changes in this harness — record *application*
/// correctness is covered by the live-update property tests.
fn sample_stored(epoch: u64) -> StoredSnapshot {
    let bounds = Mbr::new(0.0, 0.0, 100.0, 100.0);
    let sets = vec![
        ObjectSet::uniform(
            "stm",
            1.0,
            vec![
                Point::new(10.0, 10.0),
                Point::new(60.0, 35.0),
                Point::new(25.0, 80.0),
            ],
        ),
        ObjectSet::uniform(
            "sch",
            1.5,
            vec![Point::new(40.0, 55.0), Point::new(85.0, 20.0)],
        ),
    ];
    let movd = Movd::overlap_all_with(&sets, bounds, Boundary::Rrb, ExecConfig::serial())
        .expect("sample MOVD");
    let grid = LocateGrid::build(&movd);
    StoredSnapshot {
        name: NAME.into(),
        boundary: Boundary::Rrb,
        eps: 1e-6,
        explicit_bounds: Some(bounds),
        fingerprint: SourceFingerprint { entries: vec![] },
        sets,
        movd: MovdArena::from_movd(&movd),
        grid,
        update_epoch: epoch,
        build: BuildMeta::exact(),
    }
}

fn random_record(rng: &mut Lcg) -> JournalRecord {
    if rng.next() % 4 == 0 {
        JournalRecord::Remove {
            set: (rng.next() % 2) as u32,
            index: (rng.next() % 8) as u32,
        }
    } else {
        JournalRecord::Insert {
            set: (rng.next() % 2) as u32,
            x: (rng.next() % 4000) as f64 * 0.25,
            y: (rng.next() % 4000) as f64 * 0.25,
            w_t: 1.0 + (rng.next() % 4) as f64,
            w_o: 1.0 + (rng.next() % 16) as f64 * 0.5,
        }
    }
}

/// Per-epoch ground truth: the exact base bytes saved for that epoch, the
/// updates issued against it in order, and the op-log position at which
/// each append's fsync acknowledged (`ack_ops[i]` = `vfs.ops()` right
/// after append `i` returned).
struct EpochLedger {
    expected_base: Vec<u8>,
    issued: Vec<JournalRecord>,
    ack_ops: Vec<usize>,
}

struct Workload {
    vfs: MemVfs,
    ledgers: Vec<EpochLedger>,
    /// Op count at which the initial base save (including its directory
    /// fsync) completed — recovery must succeed at every point past this.
    base0_done: usize,
}

/// Runs the full workload against a fresh MemVfs: initial save, `n`
/// journaled updates, one compaction (base first, then journal reset) at
/// the halfway mark.
fn run_workload(n: usize) -> Workload {
    let vfs = MemVfs::new();
    let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let dir = snap_dir();

    let base0 = sample_stored(0);
    base0
        .save_file_on(&vfs, &snapshot_path(&dir, NAME))
        .expect("initial base save");
    let base0_done = vfs.ops();
    let mut journal =
        Journal::create_on(Arc::clone(&arc), &journal_path(&dir, NAME), NAME, 0).expect("journal");

    let mut ledgers = vec![EpochLedger {
        expected_base: base0.encode(),
        issued: Vec::new(),
        ack_ops: Vec::new(),
    }];
    let mut rng = Lcg(0x5eed_2026);
    for i in 0..n {
        if i == n / 2 {
            // Compaction, production order: the new base (same path, next
            // epoch) becomes durable before the journal is reset to bind
            // to it. A crash in between leaves new base + old-epoch
            // journal, which recovery must set aside, not replay.
            let epoch = ledgers.len() as u64;
            let base = sample_stored(epoch);
            base.save_file_on(&vfs, &snapshot_path(&dir, NAME))
                .expect("compacted base save");
            journal.reset(epoch).expect("journal reset");
            ledgers.push(EpochLedger {
                expected_base: base.encode(),
                issued: Vec::new(),
                ack_ops: Vec::new(),
            });
        }
        let rec = random_record(&mut rng);
        journal.append(&rec).expect("append");
        let led = ledgers.last_mut().expect("ledger");
        led.issued.push(rec);
        led.ack_ops.push(vfs.ops());
    }
    Workload {
        vfs,
        ledgers,
        base0_done,
    }
}

/// Checks the recovery invariant for one crash image.
fn check_image(crashed: &MemVfs, w: &Workload, k: usize, label: &str) {
    let dir = snap_dir();
    let rec = match recover(crashed, &dir, NAME) {
        Err(e) => {
            // The CSV-rebuild rung: only legal while the very first base
            // save is still in flight.
            assert!(
                k < w.base0_done,
                "crash point {k} [{label}]: base unreadable after the initial \
                 save was durable: {e}"
            );
            return;
        }
        Ok(rec) => rec,
    };
    let epoch = rec.base.update_epoch as usize;
    let led = w
        .ledgers
        .get(epoch)
        .unwrap_or_else(|| panic!("crash point {k} [{label}]: base has unknown epoch {epoch}"));
    assert_eq!(
        rec.base.encode(),
        led.expected_base,
        "crash point {k} [{label}]: recovered base differs from the saved \
         epoch-{epoch} snapshot"
    );
    assert!(
        !matches!(rec.disposition, JournalDisposition::Salvaged { .. }),
        "crash point {k} [{label}]: a pure crash image presented as bit rot \
         ({:?})",
        rec.disposition
    );
    // Exact-prefix: every replayed record is an issued record, in order.
    assert!(
        rec.records.len() <= led.issued.len(),
        "crash point {k} [{label}]: replayed {} records but only {} were \
         issued at epoch {epoch}",
        rec.records.len(),
        led.issued.len()
    );
    for (i, (got, want)) in rec.records.iter().zip(&led.issued).enumerate() {
        assert_eq!(
            got, want,
            "crash point {k} [{label}]: replayed record {i} differs from the \
             issued record"
        );
    }
    // Durability floor: appends whose fsync returned before the crash.
    let acked = led.ack_ops.partition_point(|&op| op <= k);
    match &rec.disposition {
        JournalDisposition::Missing | JournalDisposition::SetAside { .. } => assert_eq!(
            acked, 0,
            "crash point {k} [{label}]: {acked} acknowledged update(s) lost \
             to {:?}",
            rec.disposition
        ),
        _ => assert!(
            rec.records.len() >= acked,
            "crash point {k} [{label}]: only {} record(s) recovered but \
             {acked} were fsync-acknowledged at epoch {epoch}",
            rec.records.len()
        ),
    }
}

#[test]
fn recovery_invariant_holds_at_every_crash_point() {
    let w = run_workload(workload_size());
    let total = w.vfs.ops();
    let dir = snap_dir();

    // Sanity: the uncrashed state recovers cleanly with the full epoch-1
    // record stream.
    let clean = recover(&MemVfs::from_image(w.vfs.image()), &dir, NAME).expect("clean recover");
    let last = w.ledgers.last().expect("ledger");
    assert_eq!(clean.disposition, JournalDisposition::Clean);
    assert_eq!(clean.records, last.issued);

    let mut images = 0usize;
    for k in 0..=total {
        let mut variants = vec![
            (Survival::Nothing, false, "tail lost"),
            (Survival::Torn(16), false, "tail torn at 16 bytes"),
            (Survival::Everything, false, "tail flushed"),
        ];
        if w.vfs.has_pending_dir_ops(k) {
            // Directory entries can land independently of file data.
            variants.push((Survival::Nothing, true, "dir entries flushed, tail lost"));
            variants.push((Survival::Everything, true, "everything flushed"));
        }
        for (survival, dirs, label) in variants {
            let crashed = MemVfs::from_image(w.vfs.durable_image(k, survival, dirs));
            check_image(&crashed, &w, k, label);
            images += 1;
        }
    }
    // The matrix actually enumerated something proportional to the
    // workload (≈3-5 images per logged op).
    assert!(
        images >= 3 * total,
        "only {images} crash images for {total} ops"
    );
}

/// Recovery is itself crash-consistent: reopening the journal of a torn
/// crash image truncates the tail, appends continue from the salvaged
/// prefix, and a second recovery round-trips clean.
#[test]
fn reopen_after_torn_crash_truncates_and_continues() {
    let w = run_workload(24);
    let dir = snap_dir();
    let jpath = journal_path(&dir, NAME);

    // Find a crash point whose torn image actually ends mid-record.
    let torn = (0..=w.vfs.ops()).rev().find_map(|k| {
        let img = MemVfs::from_image(w.vfs.durable_image(k, Survival::Torn(16), false));
        match recover(&img, &dir, NAME) {
            Ok(rec) if matches!(rec.disposition, JournalDisposition::TornTail { .. }) => {
                Some((img, rec))
            }
            _ => None,
        }
    });
    let (img, rec) = torn.expect("workload produced no torn-tail crash image");
    let epoch = rec.base.update_epoch;
    let prefix = rec.records.clone();

    let arc: Arc<dyn Vfs> = Arc::new(img.clone());
    let mut journal =
        Journal::open_or_create_on(arc, &jpath, NAME, epoch).expect("reopen over torn tail");
    assert_eq!(journal.records(), prefix.len() as u64);
    let extra = JournalRecord::Insert {
        set: 0,
        x: 3.25,
        y: 4.5,
        w_t: 1.0,
        w_o: 2.0,
    };
    journal.append(&extra).expect("append after truncate");

    let again = recover(&img, &dir, NAME).expect("recover after reopen");
    assert_eq!(again.disposition, JournalDisposition::Clean);
    let mut want = prefix;
    want.push(extra);
    assert_eq!(again.records, want);
}

/// The compaction window specifically: between the new base landing and
/// the journal reset landing, recovery must serve the new base alone and
/// set the stale journal aside — never replay old-epoch records onto it.
#[test]
fn stale_journal_after_compacted_base_is_set_aside_not_replayed() {
    let vfs = MemVfs::new();
    let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let dir = snap_dir();
    sample_stored(0)
        .save_file_on(&vfs, &snapshot_path(&dir, NAME))
        .expect("base 0");
    let mut journal = Journal::create_on(arc, &journal_path(&dir, NAME), NAME, 0).expect("journal");
    journal
        .append(&JournalRecord::Remove { set: 0, index: 1 })
        .expect("append");
    // The compaction's first half only: base 1 is durable, the journal
    // still binds to epoch 0.
    sample_stored(1)
        .save_file_on(&vfs, &snapshot_path(&dir, NAME))
        .expect("base 1");

    let rec = recover(&vfs, &dir, NAME).expect("recover");
    assert_eq!(rec.base.update_epoch, 1);
    assert!(rec.records.is_empty());
    match &rec.disposition {
        JournalDisposition::SetAside { reason } => {
            assert!(reason.contains("epoch"), "unhelpful reason: {reason}")
        }
        other => panic!("stale journal not set aside: {other:?}"),
    }
}
