//! Property-based round-trip tests for the snapshot store: whatever gets
//! saved comes back **bit-identical**, including `-0.0`, subnormals, and
//! extreme-magnitude coordinates, across randomly-shaped datasets.

use molq_core::prelude::*;
use molq_geom::{ConvexPolygon, Mbr, Point, Polygon};
use molq_store::container::{read_container, write_container};
use molq_store::snapshot::SECTION_MOVD;
use molq_store::{SourceEntry, SourceFingerprint, StoreError, StoredSnapshot};
use proptest::prelude::*;

/// Coordinates the encoder must not normalize away: signed zero, the
/// smallest subnormals, and near-overflow magnitudes.
const SPECIALS: [f64; 8] = [
    0.0,
    -0.0,
    5e-324,
    -5e-324,
    f64::MIN_POSITIVE,
    1e300,
    -1e300,
    1.7976931348623157e308,
];

fn arb_coord() -> impl Strategy<Value = f64> {
    (0usize..16, -1000.0f64..1000.0).prop_map(
        |(i, v)| {
            if i < SPECIALS.len() {
                SPECIALS[i]
            } else {
                v
            }
        },
    )
}

fn arb_point() -> impl Strategy<Value = Point> {
    (arb_coord(), arb_coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_object() -> impl Strategy<Value = SpatialObject> {
    (arb_point(), arb_coord(), arb_coord()).prop_map(|(loc, w_t, w_o)| SpatialObject {
        loc,
        w_t,
        w_o,
    })
}

fn arb_sets() -> impl Strategy<Value = Vec<ObjectSet>> {
    prop::collection::vec(
        (
            0usize..2,
            prop::collection::vec(arb_object(), 1..5),
            0usize..3, // set-name length selector
        ),
        1..4,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (wf, objects, name_len))| {
                let name =
                    "sσ日".chars().take(name_len.max(1)).collect::<String>() + &i.to_string();
                ObjectSet::weighted(
                    &name,
                    objects,
                    if wf == 0 {
                        WeightFunction::Multiplicative
                    } else {
                        WeightFunction::Additive
                    },
                )
            })
            .collect()
    })
}

/// A region of each kind over arbitrary (often extreme) vertices. The codec
/// stores vertices exactly as given, so no geometric validity is needed to
/// exercise the round trip.
fn arb_region() -> impl Strategy<Value = Region> {
    (
        0usize..3,
        prop::collection::vec(arb_point(), 3..7),
        arb_point(),
        arb_point(),
    )
        .prop_map(|(kind, verts, a, b)| match kind {
            0 => Region::Convex(ConvexPolygon::from_ccw(verts)),
            1 => Region::Rect(Mbr::new(
                a.x.min(b.x),
                a.y.min(b.y),
                a.x.max(b.x),
                a.y.max(b.y),
            )),
            _ => Region::General(vec![Polygon::new(verts.clone()), Polygon::new(verts)]),
        })
}

fn arb_snapshot() -> impl Strategy<Value = StoredSnapshot> {
    (
        arb_sets(),
        prop::collection::vec((arb_region(), 0usize..100, 0usize..100), 1..6),
        0usize..2,
        arb_coord(),
        prop::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..3),
        0u64..4,
    )
        .prop_map(|(sets, raw_ovrs, boundary, eps, sources, update_epoch)| {
            let ovrs: Vec<Ovr> = raw_ovrs
                .into_iter()
                .map(|(region, s, i)| {
                    let set = s % sets.len();
                    let index = i % sets[set].objects.len();
                    Ovr {
                        region,
                        pois: vec![ObjectRef { set, index }],
                    }
                })
                .collect();
            // Bounds = union of every finite vertex/corner; the grid clamps
            // everything else.
            let bounds = ovrs
                .iter()
                .map(|o| o.region.mbr())
                .fold(Mbr::EMPTY, |acc, m| acc.union(&m));
            let bounds = if bounds.is_empty() {
                Mbr::new(0.0, 0.0, 1.0, 1.0)
            } else {
                bounds
            };
            let movd = Movd { bounds, ovrs };
            let grid = LocateGrid::build(&movd);
            let movd = MovdArena::from_movd(&movd);
            StoredSnapshot {
                name: "prop".into(),
                boundary: if boundary == 0 {
                    Boundary::Rrb
                } else {
                    Boundary::Mbrb
                },
                eps,
                explicit_bounds: None,
                fingerprint: SourceFingerprint {
                    entries: sources
                        .into_iter()
                        .enumerate()
                        .map(|(i, (size, hash))| SourceEntry {
                            path: format!("/data/layer{i}.csv"),
                            size,
                            hash,
                        })
                        .collect(),
                },
                sets,
                movd,
                grid,
                update_epoch,
                build: BuildMeta::exact(),
            }
        })
}

fn points_bit_eq(a: &[Point], b: &[Point]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(p, q)| p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits())
}

fn regions_bit_eq(a: &Region, b: &Region) -> bool {
    match (a, b) {
        (Region::Convex(p), Region::Convex(q)) => points_bit_eq(p.vertices(), q.vertices()),
        (Region::Rect(m), Region::Rect(n)) => [m.min_x, m.min_y, m.max_x, m.max_y]
            .iter()
            .zip([n.min_x, n.min_y, n.max_x, n.max_y].iter())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        (Region::General(ps), Region::General(qs)) => {
            ps.len() == qs.len()
                && ps
                    .iter()
                    .zip(qs)
                    .all(|(p, q)| points_bit_eq(p.vertices(), q.vertices()))
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_bit_identical(snap in arb_snapshot()) {
        let bytes = snap.encode();
        let decoded = StoredSnapshot::decode(&bytes).expect("decode");

        // Strongest form: re-encoding the decoded snapshot reproduces the
        // original byte stream exactly.
        prop_assert_eq!(decoded.encode(), bytes.clone());

        // Field-level bit equality, to localize failures.
        prop_assert_eq!(&decoded.name, &snap.name);
        prop_assert_eq!(decoded.boundary, snap.boundary);
        prop_assert_eq!(decoded.eps.to_bits(), snap.eps.to_bits());
        prop_assert_eq!(&decoded.fingerprint, &snap.fingerprint);
        prop_assert_eq!(decoded.sets.len(), snap.sets.len());
        for (d, s) in decoded.sets.iter().zip(&snap.sets) {
            prop_assert_eq!(&d.name, &s.name);
            prop_assert_eq!(d.object_weight_fn, s.object_weight_fn);
            prop_assert_eq!(d.objects.len(), s.objects.len());
            for (x, y) in d.objects.iter().zip(&s.objects) {
                prop_assert_eq!(x.loc.x.to_bits(), y.loc.x.to_bits());
                prop_assert_eq!(x.loc.y.to_bits(), y.loc.y.to_bits());
                prop_assert_eq!(x.w_t.to_bits(), y.w_t.to_bits());
                prop_assert_eq!(x.w_o.to_bits(), y.w_o.to_bits());
            }
        }
        prop_assert_eq!(decoded.movd.len(), snap.movd.len());
        // Lane-level bit equality on the arena buffers themselves...
        prop_assert_eq!(decoded.movd.kinds(), snap.movd.kinds());
        prop_assert_eq!(decoded.movd.poly_off(), snap.movd.poly_off());
        prop_assert_eq!(decoded.movd.vert_off(), snap.movd.vert_off());
        prop_assert_eq!(decoded.movd.group_off(), snap.movd.group_off());
        prop_assert_eq!(decoded.movd.pois(), snap.movd.pois());
        prop_assert!(points_bit_eq(decoded.movd.verts(), snap.movd.verts()));
        // ...and on the pointer-shaped diagram reconstructed from them.
        let (dm, sm) = (decoded.movd.to_movd(), snap.movd.to_movd());
        for (d, s) in dm.ovrs.iter().zip(&sm.ovrs) {
            prop_assert!(regions_bit_eq(&d.region, &s.region));
            prop_assert_eq!(&d.pois, &s.pois);
        }
        prop_assert_eq!(&decoded.grid, &snap.grid);
        prop_assert_eq!(decoded.update_epoch, snap.update_epoch);
    }

    #[test]
    fn decode_never_panics_on_mutation(snap in arb_snapshot(), at in 0usize..4096, bit in 0u8..8) {
        // Any single-bit flip either still decodes (flip in dead space does
        // not exist in this format: every byte is covered by a checksum or
        // the header) or fails with a typed error — never a panic.
        let mut bytes = snap.encode();
        let at = at % bytes.len();
        bytes[at] ^= 1 << bit;
        let _ = StoredSnapshot::decode(&bytes);
    }

    #[test]
    fn truncation_never_panics(snap in arb_snapshot(), cut in 0usize..4096) {
        let bytes = snap.encode();
        let cut = cut % bytes.len();
        prop_assert!(StoredSnapshot::decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn movd_lane_corruption_is_typed_never_panics(
        snap in arb_snapshot(),
        at in 0usize..4096,
        bit in 0u8..8,
    ) {
        // Flip one bit inside the MOVD arena payload and re-frame the
        // container so its CRC matches the damaged bytes: the checksum rung
        // cannot catch this, so arena validation must. A flip in a count or
        // offset lane must fail typed (Truncated/Malformed); a flip in the
        // vertex lane is plain data and may still decode. Never a panic or
        // out-of-bounds access.
        let mut sections: Vec<(u32, Vec<u8>)> = read_container(&snap.encode())
            .unwrap()
            .into_iter()
            .map(|s| (s.tag, s.payload))
            .collect();
        let payload = &mut sections
            .iter_mut()
            .find(|(tag, _)| *tag == SECTION_MOVD)
            .unwrap()
            .1;
        let at = at % payload.len();
        payload[at] ^= 1 << bit;
        let bytes = write_container(&sections);
        match StoredSnapshot::decode(&bytes) {
            Ok(_)
            | Err(StoreError::Truncated { .. })
            | Err(StoreError::Malformed { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error class: {e}"))),
        }
    }

    #[test]
    fn movd_lane_truncation_is_typed_never_panics(snap in arb_snapshot(), cut in 0usize..4096) {
        // Truncate the MOVD payload mid-lane (CRC re-framed to match): the
        // declared counts now overrun the payload, which must surface as
        // typed Truncated/Malformed from the guarded bulk reads.
        let mut sections: Vec<(u32, Vec<u8>)> = read_container(&snap.encode())
            .unwrap()
            .into_iter()
            .map(|s| (s.tag, s.payload))
            .collect();
        let payload = &mut sections
            .iter_mut()
            .find(|(tag, _)| *tag == SECTION_MOVD)
            .unwrap()
            .1;
        let keep = cut % payload.len();
        payload.truncate(keep);
        let bytes = write_container(&sections);
        match StoredSnapshot::decode(&bytes) {
            Err(StoreError::Truncated { .. }) | Err(StoreError::Malformed { .. }) => {}
            other => return Err(TestCaseError::fail(format!(
                "truncated lane must fail typed, got {other:?}"
            ))),
        }
    }
}
