//! Property-based salvage: for **any** journal byte stream mangled at an
//! arbitrary offset — truncated (a torn write) or bit-flipped (rot or
//! tampering) — the loader returns exactly the longest valid record
//! prefix, classifies the damage correctly, and never panics.

use molq_store::journal::{load_journal_on, RECORD_LEN};
use molq_store::{journal_path, Journal, JournalRecord, MemVfs, Vfs};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

fn jpath() -> PathBuf {
    journal_path(&PathBuf::from("snap"), "d")
}

/// Encodes `records` into real journal bytes through the production
/// append path; returns `(bytes, header_len)`.
fn journal_bytes(records: &[JournalRecord]) -> (Vec<u8>, usize) {
    let vfs = MemVfs::new();
    let path = jpath();
    let mut j = Journal::create_on(Arc::new(vfs.clone()), &path, "d", 7).expect("create");
    let header_len = vfs.read(&path).expect("header").len();
    for r in records {
        j.append(r).expect("append");
    }
    (vfs.read(&path).expect("bytes"), header_len)
}

/// Loads raw bytes as the journal file of a crash image.
fn load(bytes: Vec<u8>) -> Result<molq_store::JournalLoad, molq_store::StoreError> {
    let path = jpath();
    let vfs = MemVfs::from_image(HashMap::from([(path.clone(), bytes)]));
    load_journal_on(&vfs, &path)
}

fn arb_record() -> impl Strategy<Value = JournalRecord> {
    (
        0u32..4,
        0u32..8,
        -500i32..500,
        -500i32..500,
        1u32..9,
        1u32..9,
    )
        .prop_map(|(kind, set, x, y, wt, wo)| {
            if kind == 0 {
                JournalRecord::Remove {
                    set,
                    index: x.unsigned_abs() % 64,
                }
            } else {
                JournalRecord::Insert {
                    set,
                    x: x as f64 * 0.125,
                    y: y as f64 * 0.125,
                    w_t: wt as f64,
                    w_o: wo as f64 * 0.5,
                }
            }
        })
}

fn arb_records() -> impl Strategy<Value = Vec<JournalRecord>> {
    prop::collection::vec(arb_record(), 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Truncation at any offset — the torn-write shape. At or past the
    /// header the load must succeed with exactly `cut/RECORD_LEN` records
    /// and a torn tail iff the cut falls mid-record; inside the header it
    /// must error (never panic).
    #[test]
    fn truncation_keeps_exactly_the_complete_prefix(
        records in arb_records(),
        cut in 0usize..2048,
    ) {
        let (full, header_len) = journal_bytes(&records);
        let cut = cut % (full.len() + 1);
        let result = load(full[..cut].to_vec());
        if cut < header_len {
            prop_assert!(result.is_err(), "truncated header loaded: {result:?}");
        } else {
            let load = result.expect("body truncation must salvage");
            let keep = (cut - header_len) / RECORD_LEN;
            prop_assert_eq!(&load.records, &records[..keep]);
            prop_assert_eq!(load.torn_tail, (cut - header_len) % RECORD_LEN != 0);
            prop_assert_eq!(load.salvaged_bytes, 0);
            prop_assert!(load.defect.is_none());
            prop_assert_eq!(load.valid_len(), (header_len + keep * RECORD_LEN) as u64);
        }
    }

    /// A single bit flip anywhere in the record area: CRC-32 detects every
    /// 1-bit error, so the prefix ends exactly at the flipped record and
    /// the whole tail after it is reported as salvaged.
    #[test]
    fn bit_flip_in_a_record_ends_the_prefix_there(
        records in prop::collection::vec(arb_record(), 1..24),
        offset in 0usize..2048,
        bit in 0u8..8,
    ) {
        let (mut full, header_len) = journal_bytes(&records);
        let offset = header_len + offset % (full.len() - header_len);
        full[offset] ^= 1 << bit;
        let load = load(full.clone()).expect("record damage must salvage, not error");
        let hit = (offset - header_len) / RECORD_LEN;
        prop_assert_eq!(&load.records, &records[..hit]);
        prop_assert_eq!(
            load.salvaged_bytes,
            ((records.len() - hit) * RECORD_LEN) as u64
        );
        prop_assert!(load.defect.is_some());
        prop_assert!(!load.torn_tail);
        prop_assert_eq!(load.valid_len(), (header_len + hit * RECORD_LEN) as u64);
    }

    /// A bit flip inside the header makes the journal untrustworthy as a
    /// whole: the load errors (the caller sets the file aside) — it never
    /// panics and never fabricates records.
    #[test]
    fn bit_flip_in_the_header_is_an_error(
        records in arb_records(),
        offset in 0usize..64,
        bit in 0u8..8,
    ) {
        let (mut full, header_len) = journal_bytes(&records);
        let offset = offset % header_len;
        full[offset] ^= 1 << bit;
        prop_assert!(load(full).is_err());
    }

    /// Compound damage — flip a bit, then truncate: whatever comes back is
    /// still an exact prefix of what was written. (No classification
    /// asserted; this is the never-panic, never-fabricate backstop.)
    #[test]
    fn compound_damage_never_yields_phantom_records(
        records in arb_records(),
        offset in 0usize..2048,
        bit in 0u8..8,
        cut in 0usize..2048,
    ) {
        let (mut full, _) = journal_bytes(&records);
        let offset = offset % full.len();
        full[offset] ^= 1 << bit;
        let cut = cut % (full.len() + 1);
        if let Ok(load) = load(full[..cut].to_vec()) {
            prop_assert!(load.records.len() <= records.len());
            prop_assert_eq!(&load.records, &records[..load.records.len()]);
        }
    }
}
