//! A minimal SVG document builder with world-to-pixel mapping.

use molq_geom::{Mbr, Point};
use std::fmt::Write;

/// An SVG canvas mapping a world rectangle to pixel coordinates (y flipped so
/// world-north is up).
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    world: Mbr,
    width: usize,
    height: usize,
    body: String,
}

impl SvgCanvas {
    /// Creates a canvas `width_px` wide; height preserves the world aspect
    /// ratio.
    pub fn new(world: Mbr, width_px: usize) -> Self {
        assert!(
            !world.is_empty() && world.area() > 0.0,
            "world must have area"
        );
        let height = ((width_px as f64) * world.height() / world.width()).round() as usize;
        SvgCanvas {
            world,
            width: width_px,
            height: height.max(1),
            body: String::new(),
        }
    }

    fn map(&self, p: Point) -> (f64, f64) {
        let x = (p.x - self.world.min_x) / self.world.width() * self.width as f64;
        let y = (self.world.max_y - p.y) / self.world.height() * self.height as f64;
        (x, y)
    }

    fn points_attr(&self, pts: &[Point]) -> String {
        let mut s = String::with_capacity(pts.len() * 12);
        for (i, p) in pts.iter().enumerate() {
            let (x, y) = self.map(*p);
            if i > 0 {
                s.push(' ');
            }
            let _ = write!(s, "{x:.2},{y:.2}");
        }
        s
    }

    /// Adds a filled polygon.
    pub fn polygon(
        &mut self,
        pts: &[Point],
        fill: &str,
        fill_opacity: f64,
        stroke: &str,
        stroke_w: f64,
    ) {
        if pts.len() < 3 {
            return;
        }
        let attr = self.points_attr(pts);
        let _ = writeln!(
            self.body,
            r#"<polygon points="{attr}" fill="{fill}" fill-opacity="{fill_opacity}" stroke="{stroke}" stroke-width="{stroke_w}"/>"#
        );
    }

    /// Adds a rectangle.
    pub fn rect(&mut self, m: &Mbr, fill: &str, fill_opacity: f64, stroke: &str, stroke_w: f64) {
        if m.is_empty() {
            return;
        }
        let (x0, y1) = self.map(Point::new(m.min_x, m.min_y));
        let (x1, y0) = self.map(Point::new(m.max_x, m.max_y));
        let _ = writeln!(
            self.body,
            r#"<rect x="{x0:.2}" y="{y0:.2}" width="{:.2}" height="{:.2}" fill="{fill}" fill-opacity="{fill_opacity}" stroke="{stroke}" stroke-width="{stroke_w}"/>"#,
            x1 - x0,
            y1 - y0
        );
    }

    /// Adds a circle (radius in pixels).
    pub fn circle(&mut self, center: Point, r_px: f64, fill: &str, stroke: &str) {
        let (cx, cy) = self.map(center);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r_px}" fill="{fill}" stroke="{stroke}" stroke-width="0.8"/>"#
        );
    }

    /// Adds a line segment.
    pub fn line(&mut self, a: Point, b: Point, stroke: &str, stroke_w: f64) {
        let (x1, y1) = self.map(a);
        let (x2, y2) = self.map(b);
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{stroke_w}"/>"#
        );
    }

    /// Adds a text label.
    pub fn text(&mut self, at: Point, size_px: f64, content: &str) {
        let (x, y) = self.map(at);
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size_px}" font-family="sans-serif">{escaped}</text>"#
        );
    }

    /// Adds a five-pointed star marker (radius in pixels).
    pub fn star(&mut self, center: Point, r_px: f64, fill: &str) {
        let (cx, cy) = self.map(center);
        let mut pts = String::new();
        for k in 0..10 {
            let r = if k % 2 == 0 { r_px } else { r_px * 0.4 };
            let ang = std::f64::consts::PI * (k as f64 / 5.0 - 0.5);
            let _ = write!(pts, "{:.2},{:.2} ", cx + r * ang.cos(), cy + r * ang.sin());
        }
        let _ = writeln!(
            self.body,
            r##"<polygon points="{}" fill="{fill}" stroke="#000" stroke-width="0.8"/>"##,
            pts.trim_end()
        );
    }

    /// Finalises the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canvas_maps_world_to_pixels() {
        let c = SvgCanvas::new(Mbr::new(0.0, 0.0, 100.0, 50.0), 200);
        assert_eq!(c.width, 200);
        assert_eq!(c.height, 100);
        // World origin (bottom-left) maps to pixel bottom-left.
        assert_eq!(c.map(Point::new(0.0, 0.0)), (0.0, 100.0));
        assert_eq!(c.map(Point::new(100.0, 50.0)), (200.0, 0.0));
    }

    #[test]
    fn primitives_emit_elements() {
        let mut c = SvgCanvas::new(Mbr::new(0.0, 0.0, 10.0, 10.0), 100);
        c.polygon(
            &[
                Point::new(1.0, 1.0),
                Point::new(5.0, 1.0),
                Point::new(3.0, 4.0),
            ],
            "#f00",
            0.5,
            "#000",
            1.0,
        );
        c.rect(&Mbr::new(2.0, 2.0, 4.0, 4.0), "#0f0", 0.3, "#000", 0.5);
        c.circle(Point::new(5.0, 5.0), 2.0, "#00f", "#000");
        c.line(Point::new(0.0, 0.0), Point::new(10.0, 10.0), "#999", 1.0);
        c.text(Point::new(1.0, 9.0), 10.0, "a < b & c");
        c.star(Point::new(7.0, 7.0), 5.0, "#ff0");
        let svg = c.finish();
        for tag in ["<polygon", "<rect", "<circle", "<line", "<text"] {
            assert!(svg.contains(tag), "missing {tag}");
        }
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn degenerate_inputs_are_skipped() {
        let mut c = SvgCanvas::new(Mbr::new(0.0, 0.0, 1.0, 1.0), 10);
        c.polygon(&[Point::new(0.0, 0.0)], "#f00", 1.0, "#000", 1.0);
        c.rect(&Mbr::EMPTY, "#f00", 1.0, "#000", 1.0);
        let svg = c.finish();
        assert!(!svg.contains("<polygon") && !svg.contains("<rect x"));
    }
}
