//! SVG rendering of Voronoi diagrams, overlapped Voronoi diagrams, and MOLQ
//! answers — visual debugging for the pipeline, dependency-free.
//!
//! ```
//! use molq_geom::{Mbr, Point};
//! use molq_voronoi::OrdinaryVoronoi;
//! use molq_viz::render_voronoi;
//!
//! let vd = OrdinaryVoronoi::build(
//!     &[Point::new(2.0, 2.0), Point::new(8.0, 7.0)],
//!     Mbr::new(0.0, 0.0, 10.0, 10.0),
//! ).unwrap();
//! let svg = render_voronoi(&vd, 400);
//! assert!(svg.starts_with("<svg"));
//! ```

pub mod svg;

pub use svg::SvgCanvas;

use molq_core::{Movd, Region};
use molq_geom::{Mbr, Point};
use molq_voronoi::OrdinaryVoronoi;

/// A categorical palette (distinct, print-safe).
const PALETTE: [&str; 12] = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
    "#9c755f", "#bab0ac", "#86bcb6", "#d37295",
];

fn color(i: usize) -> &'static str {
    PALETTE[i % PALETTE.len()]
}

/// Renders an ordinary Voronoi diagram: cells tinted per site, sites as dots.
pub fn render_voronoi(vd: &OrdinaryVoronoi, width_px: usize) -> String {
    let mut canvas = SvgCanvas::new(*vd.bounds(), width_px);
    for (i, cell) in vd.cells().iter().enumerate() {
        if !cell.is_empty() {
            canvas.polygon(cell.vertices(), color(i), 0.35, "#333", 0.6);
        }
    }
    for (i, site) in vd.sites().iter().enumerate() {
        canvas.circle(*site, 2.5, color(i), "#000");
    }
    canvas.finish()
}

/// Renders an MOVD: each OVR tinted by a hash of its object combination, so
/// regions served by the same group share a colour. MBR regions are drawn as
/// outlined rectangles (the MBRB representation).
pub fn render_movd(movd: &Movd, width_px: usize) -> String {
    let mut canvas = SvgCanvas::new(movd.bounds, width_px);
    for ovr in &movd.ovrs {
        let mut h = 0usize;
        for p in &ovr.pois {
            h = h
                .wrapping_mul(31)
                .wrapping_add(p.set * 1013 + p.index * 7919);
        }
        match &ovr.region {
            Region::Convex(p) => canvas.polygon(p.vertices(), color(h), 0.45, "#222", 0.5),
            Region::Rect(m) => canvas.rect(m, "none", 0.0, color(h), 0.8),
            Region::General(ps) => {
                for p in ps {
                    canvas.polygon(p.vertices(), color(h), 0.45, "#222", 0.5);
                }
            }
        }
    }
    canvas.finish()
}

/// Renders an MOVD with the answer location and the POIs on top.
pub fn render_answer(
    movd: &Movd,
    pois: &[(Point, usize)],
    answer: Point,
    width_px: usize,
) -> String {
    let mut canvas = SvgCanvas::new(movd.bounds, width_px);
    for ovr in &movd.ovrs {
        if let Region::Convex(p) = &ovr.region {
            canvas.polygon(p.vertices(), "#eef2f7", 1.0, "#9aa7b4", 0.5);
        }
    }
    for &(p, set) in pois {
        canvas.circle(p, 3.0, color(set), "#000");
    }
    canvas.star(answer, 8.0, "#d62728");
    canvas.finish()
}

/// Convenience: render the basic diagrams + the overlapped MOVD of a query
/// side by side is left to callers; this renders the MBRs of a weighted
/// diagram for MBRB debugging.
pub fn render_mbrs(bounds: Mbr, mbrs: &[Mbr], width_px: usize) -> String {
    let mut canvas = SvgCanvas::new(bounds, width_px);
    for (i, m) in mbrs.iter().enumerate() {
        if !m.is_empty() {
            canvas.rect(m, "none", 0.0, color(i), 1.0);
        }
    }
    canvas.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use molq_core::{Boundary, ObjectSet};

    fn pts(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    #[test]
    fn voronoi_svg_is_well_formed() {
        let vd = OrdinaryVoronoi::build(&pts(20, 1), Mbr::new(0.0, 0.0, 100.0, 100.0)).unwrap();
        let svg = render_voronoi(&vd, 500);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<circle").count(), 20);
        assert!(svg.matches("<polygon").count() >= 18);
    }

    #[test]
    fn movd_svg_renders_both_region_kinds() {
        let b = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let a = Movd::basic(&ObjectSet::uniform("a", 1.0, pts(8, 2)), 0, b).unwrap();
        let c = Movd::basic(&ObjectSet::uniform("b", 1.0, pts(8, 3)), 1, b).unwrap();
        let rrb = a.overlap(&c, Boundary::Rrb);
        let mbrb = a.overlap(&c, Boundary::Mbrb);
        let svg_rrb = render_movd(&rrb, 400);
        let svg_mbrb = render_movd(&mbrb, 400);
        assert!(svg_rrb.contains("<polygon"));
        assert!(svg_mbrb.contains("<rect"));
    }

    #[test]
    fn answer_svg_has_a_star() {
        let b = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let a = Movd::basic(&ObjectSet::uniform("a", 1.0, pts(5, 4)), 0, b).unwrap();
        let svg = render_answer(
            &a,
            &[(Point::new(10.0, 10.0), 0)],
            Point::new(50.0, 50.0),
            300,
        );
        assert!(svg.contains("polygon")); // star is a polygon
    }

    #[test]
    fn mbr_sheet() {
        let b = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let svg = render_mbrs(b, &[Mbr::new(1.0, 1.0, 3.0, 3.0), Mbr::EMPTY], 200);
        // One drawn rectangle (the empty MBR is skipped); the background
        // <rect width="100%"> does not count.
        assert_eq!(svg.matches("<rect x=").count(), 1);
    }
}
