//! A total-order wrapper over `f64` for use as ordered-container keys.

use std::cmp::Ordering;
use std::fmt;

/// An `f64` with the IEEE-754 `totalOrder` relation, usable as a key in
/// `BTreeMap`/`BTreeSet` (the plane-sweep status structures of Algorithm 2).
///
/// NaN sorts after `+inf`; `-0.0 < +0.0`. The sweep never produces NaN keys,
/// but the ordering is still total so container invariants can never break.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TotalF64(pub f64);

impl TotalF64 {
    /// Extracts the wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for TotalF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl From<f64> for TotalF64 {
    #[inline]
    fn from(v: f64) -> Self {
        TotalF64(v)
    }
}

impl fmt::Display for TotalF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn orders_ordinary_values() {
        let mut s = BTreeSet::new();
        for v in [3.0, -1.0, 2.5, 0.0, -0.0] {
            s.insert(TotalF64(v));
        }
        let sorted: Vec<f64> = s.iter().map(|t| t.get()).collect();
        assert_eq!(sorted, vec![-1.0, -0.0, 0.0, 2.5, 3.0]);
    }

    #[test]
    fn nan_is_orderable() {
        let mut s = BTreeSet::new();
        s.insert(TotalF64(f64::NAN));
        s.insert(TotalF64(f64::INFINITY));
        s.insert(TotalF64(1.0));
        // NaN sorts last under totalOrder.
        assert!(s.iter().last().unwrap().get().is_nan());
    }
}
