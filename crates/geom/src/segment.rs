//! Line segments and exact-sign intersection tests.

use crate::point::Point;
use crate::robust::orient2d;

/// A closed line segment between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

/// How two segments intersect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegmentIntersection {
    /// No common point.
    None,
    /// A single common point (proper crossing or endpoint touch).
    Point(Point),
    /// The segments are collinear and share a sub-segment.
    Overlap(Point, Point),
}

impl Segment {
    /// Creates a segment.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Midpoint.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.mid(self.b)
    }

    /// The point at parameter `t` (`0` → `a`, `1` → `b`).
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Closest point on the segment to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        let d = self.b - self.a;
        let len_sq = d.norm_sq();
        if len_sq == 0.0 {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        self.at(t)
    }

    /// Distance from `p` to the segment.
    #[inline]
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).dist(p)
    }

    /// `true` when `p` lies on the segment (exact collinearity + box test).
    pub fn contains_point(&self, p: Point) -> bool {
        if orient2d(self.a, self.b, p) != 0.0 {
            return false;
        }
        p.x >= self.a.x.min(self.b.x)
            && p.x <= self.a.x.max(self.b.x)
            && p.y >= self.a.y.min(self.b.y)
            && p.y <= self.a.y.max(self.b.y)
    }

    /// Intersection with another segment.
    ///
    /// Orientation *signs* are exact, so the crossing/no-crossing decision is
    /// robust; the returned coordinates are computed in plain `f64`.
    pub fn intersect(&self, other: &Segment) -> SegmentIntersection {
        let (p1, p2, p3, p4) = (self.a, self.b, other.a, other.b);
        let d1 = orient2d(p3, p4, p1);
        let d2 = orient2d(p3, p4, p2);
        let d3 = orient2d(p1, p2, p3);
        let d4 = orient2d(p1, p2, p4);

        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            // Proper crossing: solve for the parameter on `self`.
            let r = p2 - p1;
            let s = p4 - p3;
            let denom = r.cross(s);
            let t = (p3 - p1).cross(s) / denom;
            return SegmentIntersection::Point(self.at(t));
        }

        // Collinear overlap?
        if d1 == 0.0 && d2 == 0.0 && d3 == 0.0 && d4 == 0.0 {
            // Project on the dominant axis of `self`.
            let use_x = (p2.x - p1.x).abs() >= (p2.y - p1.y).abs();
            let key = |p: Point| if use_x { p.x } else { p.y };
            let (s0, s1) = (key(p1).min(key(p2)), key(p1).max(key(p2)));
            let (o0, o1) = (key(p3).min(key(p4)), key(p3).max(key(p4)));
            let lo = s0.max(o0);
            let hi = s1.min(o1);
            if lo > hi {
                return SegmentIntersection::None;
            }
            let pick = |v: f64| -> Point {
                for q in [p1, p2, p3, p4] {
                    if key(q) == v {
                        return q;
                    }
                }
                // Unreachable: lo/hi are endpoint projections.
                p1
            };
            let pa = pick(lo);
            let pb = pick(hi);
            return if lo == hi {
                SegmentIntersection::Point(pa)
            } else {
                SegmentIntersection::Overlap(pa, pb)
            };
        }

        // Endpoint touching cases.
        if d1 == 0.0 && other.contains_point(p1) {
            return SegmentIntersection::Point(p1);
        }
        if d2 == 0.0 && other.contains_point(p2) {
            return SegmentIntersection::Point(p2);
        }
        if d3 == 0.0 && self.contains_point(p3) {
            return SegmentIntersection::Point(p3);
        }
        if d4 == 0.0 && self.contains_point(p4) {
            return SegmentIntersection::Point(p4);
        }
        SegmentIntersection::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn proper_crossing() {
        let s1 = seg(0.0, 0.0, 2.0, 2.0);
        let s2 = seg(0.0, 2.0, 2.0, 0.0);
        crate::assert_matches!(s1.intersect(&s2), SegmentIntersection::Point(p) => {
            assert!((p.x - 1.0).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12)
        });
    }

    #[test]
    fn disjoint_segments() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 1.0, 1.0, 1.0);
        assert_eq!(s1.intersect(&s2), SegmentIntersection::None);
    }

    #[test]
    fn endpoint_touch() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(1.0, 0.0, 2.0, 1.0);
        assert_eq!(
            s1.intersect(&s2),
            SegmentIntersection::Point(Point::new(1.0, 0.0))
        );
    }

    #[test]
    fn t_intersection() {
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, -1.0, 1.0, 0.0);
        assert_eq!(
            s1.intersect(&s2),
            SegmentIntersection::Point(Point::new(1.0, 0.0))
        );
    }

    #[test]
    fn collinear_overlap() {
        let s1 = seg(0.0, 0.0, 3.0, 0.0);
        let s2 = seg(1.0, 0.0, 5.0, 0.0);
        crate::assert_matches!(s1.intersect(&s2), SegmentIntersection::Overlap(a, b) => {
            let (lo, hi) = (a.x.min(b.x), a.x.max(b.x));
            assert_eq!((lo, hi), (1.0, 3.0));
        });
    }

    #[test]
    fn collinear_touching_at_point() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(1.0, 0.0, 2.0, 0.0);
        assert_eq!(
            s1.intersect(&s2),
            SegmentIntersection::Point(Point::new(1.0, 0.0))
        );
    }

    #[test]
    fn collinear_disjoint() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(2.0, 0.0, 3.0, 0.0);
        assert_eq!(s1.intersect(&s2), SegmentIntersection::None);
    }

    #[test]
    fn closest_point_clamps() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        assert_eq!(s.closest_point(Point::new(-1.0, 1.0)), Point::new(0.0, 0.0));
        assert_eq!(s.closest_point(Point::new(1.0, 1.0)), Point::new(1.0, 0.0));
        assert_eq!(s.closest_point(Point::new(9.0, -2.0)), Point::new(2.0, 0.0));
        assert_eq!(s.dist_to_point(Point::new(1.0, 3.0)), 3.0);
    }

    #[test]
    fn contains_point_exact() {
        let s = seg(0.0, 0.0, 4.0, 4.0);
        assert!(s.contains_point(Point::new(2.0, 2.0)));
        assert!(!s.contains_point(Point::new(2.0, 2.0 + 1e-15)));
        assert!(!s.contains_point(Point::new(5.0, 5.0)));
    }
}
