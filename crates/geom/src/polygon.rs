//! Simple (possibly non-convex) polygons.
//!
//! Used by the weighted-Voronoi path, where dominance regions are not convex
//! and the paper falls back to a general polygon-clipping library (GPC). Our
//! general intersection lives in [`crate::clip`].

use crate::mbr::Mbr;
use crate::point::Point;

/// A simple polygon (non-self-intersecting ring, no holes).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polygon {
    verts: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from a vertex ring (either orientation). Rings are
    /// stored as given; use [`Polygon::ensure_ccw`] to normalise.
    pub fn new(verts: Vec<Point>) -> Self {
        Polygon { verts }
    }

    /// The vertex ring.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.verts
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// `true` when the ring has fewer than three vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.verts.len() < 3
    }

    /// Signed area (positive for counter-clockwise rings).
    pub fn signed_area(&self) -> f64 {
        let n = self.verts.len();
        if n < 3 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..n {
            sum += self.verts[i].cross(self.verts[(i + 1) % n]);
        }
        sum * 0.5
    }

    /// Area (non-negative).
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// `true` for counter-clockwise rings.
    #[inline]
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// Reverses the ring if needed so it is counter-clockwise.
    pub fn ensure_ccw(mut self) -> Self {
        if self.signed_area() < 0.0 {
            self.verts.reverse();
        }
        self
    }

    /// Bounding rectangle.
    pub fn mbr(&self) -> Mbr {
        Mbr::of_points(self.verts.iter().copied())
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        let n = self.verts.len();
        (0..n)
            .map(|i| self.verts[i].dist(self.verts[(i + 1) % n]))
            .sum()
    }

    /// Even–odd (ray casting) point-in-polygon test. Points exactly on the
    /// boundary may go either way; the MOLQ pipeline never depends on
    /// boundary classification of general polygons.
    pub fn contains(&self, p: Point) -> bool {
        ring_contains(&self.verts, p)
    }

    /// Number of stored `f64` coordinates (memory-accounting unit).
    #[inline]
    pub fn coord_count(&self) -> usize {
        self.verts.len() * 2
    }
}

/// [`Polygon::contains`] over a bare vertex ring, for callers that keep
/// vertices in flat buffers instead of owned polygons (even–odd ray cast;
/// boundary points may go either way).
pub fn ring_contains(verts: &[Point], p: Point) -> bool {
    let n = verts.len();
    if n < 3 {
        return false;
    }
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let vi = verts[i];
        let vj = verts[j];
        if (vi.y > p.y) != (vj.y > p.y) {
            let x_cross = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
            if p.x < x_cross {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

impl From<crate::convex::ConvexPolygon> for Polygon {
    fn from(c: crate::convex::ConvexPolygon) -> Self {
        Polygon::new(c.vertices().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polygon {
        // Non-convex L: 3x3 square minus the top-right 2x2 corner.
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 3.0),
            Point::new(0.0, 3.0),
        ])
    }

    #[test]
    fn area_of_l_shape() {
        let l = l_shape();
        assert!((l.area() - 5.0).abs() < 1e-12);
        assert!(l.is_ccw());
    }

    #[test]
    fn orientation_flip() {
        let mut verts = l_shape().vertices().to_vec();
        verts.reverse();
        let cw = Polygon::new(verts);
        assert!(!cw.is_ccw());
        let ccw = cw.ensure_ccw();
        assert!(ccw.is_ccw());
        assert!((ccw.area() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn contains_in_concavity() {
        let l = l_shape();
        assert!(l.contains(Point::new(0.5, 0.5)));
        assert!(l.contains(Point::new(2.0, 0.5)));
        assert!(l.contains(Point::new(0.5, 2.0)));
        // The notch is outside.
        assert!(!l.contains(Point::new(2.0, 2.0)));
        assert!(!l.contains(Point::new(-1.0, 1.0)));
    }

    #[test]
    fn perimeter_of_square() {
        let sq = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ]);
        assert!((sq.perimeter() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn from_convex() {
        let c = crate::convex::ConvexPolygon::from_mbr(&Mbr::new(0.0, 0.0, 1.0, 1.0));
        let p: Polygon = c.into();
        assert_eq!(p.len(), 4);
        assert!((p.area() - 1.0).abs() < 1e-15);
    }
}
