//! General polygon intersection (Greiner–Hormann).
//!
//! The RRB overlap of *weighted* Voronoi diagrams produces non-convex regions;
//! the paper clips those with the GPC C library. This module is the
//! from-scratch replacement: Greiner–Hormann boolean intersection of two
//! simple polygons, with a deterministic perturb-and-retry fallback for the
//! degenerate configurations the classic algorithm cannot handle (vertex on
//! edge, collinear edge overlap).

use crate::point::Point;
use crate::polygon::Polygon;

/// Relative parameter tolerance that classifies an edge intersection as
/// degenerate (too close to an endpoint).
const PARAM_EPS: f64 = 1e-9;
/// Area below which an output ring is dropped as a numerical sliver.
const SLIVER_AREA: f64 = 1e-16;
/// Retry budget for the perturbation fallback.
const MAX_RETRIES: usize = 8;

#[derive(Debug, Clone)]
struct Node {
    p: Point,
    next: usize,
    prev: usize,
    /// Index of the twin node in the *other* ring (intersections only).
    neighbor: usize,
    is_intersection: bool,
    entry: bool,
    visited: bool,
}

#[derive(Debug)]
struct Ring {
    nodes: Vec<Node>,
    /// Indices of intersection nodes, in ring order of insertion.
    intersections: Vec<usize>,
}

/// Error raised when the configuration is degenerate for plain
/// Greiner–Hormann.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Degenerate;

/// Intersection of two simple polygons. Returns the (possibly several)
/// disjoint rings of `subject ∩ clip`.
///
/// Degenerate inputs (shared vertices, edges crossing at endpoints, collinear
/// overlapping edges) are handled by perturbing the clip polygon by a
/// deterministic sub-`1e-7`-relative offset and retrying; the returned area
/// error is of the same order. Exact coincidence cases that matter to MOLQ
/// (identical regions) should be detected upstream by the caller.
pub fn intersect_polygons(subject: &Polygon, clip: &Polygon) -> Vec<Polygon> {
    if subject.is_empty() || clip.is_empty() {
        return Vec::new();
    }
    if !subject.mbr().intersects(&clip.mbr()) {
        return Vec::new();
    }
    let subject = subject.clone().ensure_ccw();
    let mut clip = clip.clone().ensure_ccw();

    let scale = subject.mbr().union(&clip.mbr()).margin().max(1.0);
    for attempt in 0..=MAX_RETRIES {
        match try_intersect(&subject, &clip) {
            Ok(rings) => return rings,
            Err(Degenerate) => {
                // Deterministic diagonal nudge, growing with each attempt.
                let delta = scale * 1e-9 * (attempt + 1) as f64;
                let jitter = Point::new(delta, delta * 0.618_033_988_749_894_9);
                clip = Polygon::new(clip.vertices().iter().map(|&v| v + jitter).collect());
            }
        }
    }
    // Out of retries: fall back to the containment-only answer (drops any
    // partial overlap; callers on this path tolerate approximation).
    containment_fallback(&subject, &clip)
}

fn containment_fallback(subject: &Polygon, clip: &Polygon) -> Vec<Polygon> {
    if clip.contains(centroid_sample(subject))
        && subject.vertices().iter().all(|&v| clip.contains(v))
    {
        return vec![subject.clone()];
    }
    if subject.contains(centroid_sample(clip))
        && clip.vertices().iter().all(|&v| subject.contains(v))
    {
        return vec![clip.clone()];
    }
    Vec::new()
}

fn centroid_sample(p: &Polygon) -> Point {
    let n = p.len().max(1) as f64;
    p.vertices().iter().fold(Point::ORIGIN, |a, &v| a + v) / n
}

fn try_intersect(subject: &Polygon, clip: &Polygon) -> Result<Vec<Polygon>, Degenerate> {
    let sv = subject.vertices();
    let cv = clip.vertices();

    // Records: (subject edge index, t, clip edge index, u, point).
    let mut records: Vec<(usize, f64, usize, f64, Point)> = Vec::new();
    for (i, sa) in sv.iter().enumerate() {
        let sb = sv[(i + 1) % sv.len()];
        for (j, ca) in cv.iter().enumerate() {
            let cb = cv[(j + 1) % cv.len()];
            if let Some((t, u, p)) = edge_intersection(*sa, sb, *ca, cb)? {
                records.push((i, t, j, u, p))
            }
        }
    }

    if records.is_empty() {
        // No boundary crossings: containment or disjoint.
        return containment_no_crossings(subject, clip);
    }

    // Build augmented rings.
    let mut s_ring = build_ring(sv, records.iter().map(|r| (r.0, r.1, r.4)));
    let mut c_ring = build_ring(cv, records.iter().map(|r| (r.2, r.3, r.4)));

    // Cross-link neighbors: records were inserted in the same order into both
    // builders, so match by the stored record id.
    link_neighbors(&mut s_ring, &mut c_ring);

    // Entry/exit marking.
    mark_entries(&mut s_ring, clip)?;
    mark_entries(&mut c_ring, subject)?;

    // Traversal.
    Ok(trace(&mut s_ring, &mut c_ring))
}

/// Classifies the intersection of edges `a→b` and `c→d`.
///
/// `Ok(Some((t, u, p)))` for a proper interior crossing, `Ok(None)` for no
/// intersection, `Err(Degenerate)` for endpoint/collinear configurations.
fn edge_intersection(
    a: Point,
    b: Point,
    c: Point,
    d: Point,
) -> Result<Option<(f64, f64, Point)>, Degenerate> {
    let r = b - a;
    let s = d - c;
    let denom = r.cross(s);
    let qp = c - a;
    let len_scale = r.norm() * s.norm();
    if denom.abs() <= 1e-14 * len_scale.max(1e-300) {
        // Parallel. Overlapping collinear edges are degenerate.
        if qp.cross(r).abs() <= 1e-12 * r.norm().max(1e-300) * qp.norm().max(1.0) {
            // Collinear: overlap iff projections intersect.
            let proj = |p: Point| (p - a).dot(r);
            let (s0, s1) = (0.0, r.norm_sq());
            let (mut o0, mut o1) = (proj(c), proj(d));
            if o0 > o1 {
                std::mem::swap(&mut o0, &mut o1);
            }
            if o1 >= s0 && o0 <= s1 {
                return Err(Degenerate);
            }
        }
        return Ok(None);
    }
    let t = qp.cross(s) / denom;
    let u = qp.cross(r) / denom;
    let inside = |v: f64| v > PARAM_EPS && v < 1.0 - PARAM_EPS;
    let near_end = |v: f64| {
        (-PARAM_EPS..=PARAM_EPS).contains(&v) || (1.0 - PARAM_EPS..=1.0 + PARAM_EPS).contains(&v)
    };
    let in_range = |v: f64| (-PARAM_EPS..=1.0 + PARAM_EPS).contains(&v);

    if inside(t) && inside(u) {
        return Ok(Some((t, u, a + r * t)));
    }
    if (near_end(t) && in_range(u)) || (near_end(u) && in_range(t)) {
        return Err(Degenerate);
    }
    Ok(None)
}

fn containment_no_crossings(subject: &Polygon, clip: &Polygon) -> Result<Vec<Polygon>, Degenerate> {
    // Use a vertex as representative; if it sits exactly on the other
    // boundary we are degenerate (perturbation will resolve it).
    let s0 = subject.vertices()[0];
    if on_boundary(clip, s0) {
        return Err(Degenerate);
    }
    if clip.contains(s0) {
        return Ok(vec![subject.clone()]);
    }
    let c0 = clip.vertices()[0];
    if on_boundary(subject, c0) {
        return Err(Degenerate);
    }
    if subject.contains(c0) {
        return Ok(vec![clip.clone()]);
    }
    Ok(Vec::new())
}

fn on_boundary(poly: &Polygon, p: Point) -> bool {
    let v = poly.vertices();
    let n = v.len();
    let scale = poly.mbr().margin().max(1.0);
    for i in 0..n {
        let s = crate::segment::Segment::new(v[i], v[(i + 1) % n]);
        if s.dist_to_point(p) <= 1e-12 * scale {
            return true;
        }
    }
    false
}

/// Builds an augmented doubly-linked ring from original vertices plus
/// intersection insertions `(edge index, alpha, point)`.
fn build_ring<I: Iterator<Item = (usize, f64, Point)>>(verts: &[Point], inserts: I) -> Ring {
    let n = verts.len();
    // Group inserts per edge, remembering their global record id.
    let mut per_edge: Vec<Vec<(f64, Point, usize)>> = vec![Vec::new(); n];
    for (rec_id, (edge, alpha, p)) in inserts.enumerate() {
        per_edge[edge].push((alpha, p, rec_id));
    }
    for edge in &mut per_edge {
        edge.sort_by(|a, b| a.0.total_cmp(&b.0));
    }

    let mut nodes: Vec<Node> = Vec::with_capacity(n * 2);
    // record id -> node index, fixed up later in link_neighbors.
    let mut intersections: Vec<(usize, usize)> = Vec::new(); // (record id, node idx)
    for i in 0..n {
        nodes.push(Node {
            p: verts[i],
            next: 0,
            prev: 0,
            neighbor: usize::MAX,
            is_intersection: false,
            entry: false,
            visited: false,
        });
        for &(_, p, rec_id) in &per_edge[i] {
            let idx = nodes.len();
            nodes.push(Node {
                p,
                next: 0,
                prev: 0,
                neighbor: rec_id, // temporarily store the record id here
                is_intersection: true,
                entry: false,
                visited: false,
            });
            intersections.push((rec_id, idx));
        }
    }
    let m = nodes.len();
    for (i, node) in nodes.iter_mut().enumerate() {
        node.next = (i + 1) % m;
        node.prev = (i + m - 1) % m;
    }
    intersections.sort_by_key(|&(rec_id, _)| rec_id);
    Ring {
        nodes,
        intersections: intersections.into_iter().map(|(_, idx)| idx).collect(),
    }
}

fn link_neighbors(s_ring: &mut Ring, c_ring: &mut Ring) {
    debug_assert_eq!(s_ring.intersections.len(), c_ring.intersections.len());
    for k in 0..s_ring.intersections.len() {
        let si = s_ring.intersections[k];
        let ci = c_ring.intersections[k];
        s_ring.nodes[si].neighbor = ci;
        c_ring.nodes[ci].neighbor = si;
    }
}

fn mark_entries(ring: &mut Ring, other: &Polygon) -> Result<(), Degenerate> {
    // Find an original vertex to anchor the inside/outside parity.
    let start = ring
        .nodes
        .iter()
        .position(|n| !n.is_intersection)
        .expect("ring retains original vertices");
    let p0 = ring.nodes[start].p;
    if on_boundary(other, p0) {
        return Err(Degenerate);
    }
    let mut entry = !other.contains(p0);
    // Walk the ring once, toggling at every intersection.
    let mut cur = ring.nodes[start].next;
    while cur != start {
        if ring.nodes[cur].is_intersection {
            ring.nodes[cur].entry = entry;
            entry = !entry;
        }
        cur = ring.nodes[cur].next;
    }
    Ok(())
}

fn trace(s_ring: &mut Ring, c_ring: &mut Ring) -> Vec<Polygon> {
    let mut results = Vec::new();
    #[allow(clippy::while_let_loop)] // borrow of s_ring must end before the body
    loop {
        // Find an unvisited intersection in the subject ring.
        let Some(&start) = s_ring
            .intersections
            .iter()
            .find(|&&i| !s_ring.nodes[i].visited)
        else {
            break;
        };
        let mut ring_pts: Vec<Point> = Vec::new();
        // (which ring: false = subject, true = clip, node index)
        let mut on_clip = false;
        let mut cur = start;
        ring_pts.push(s_ring.nodes[start].p);
        let mut guard = 0usize;
        let max_steps = (s_ring.nodes.len() + c_ring.nodes.len()) * 2 + 8;
        loop {
            guard += 1;
            if guard > max_steps {
                // Defensive: malformed linkage (should not happen). Abandon
                // this ring rather than loop forever.
                ring_pts.clear();
                break;
            }
            let ring: &mut Ring = if on_clip { c_ring } else { s_ring };
            ring.nodes[cur].visited = true;
            let forward = ring.nodes[cur].entry;
            // Walk until the next intersection on this ring.
            loop {
                cur = if forward {
                    ring.nodes[cur].next
                } else {
                    ring.nodes[cur].prev
                };
                ring_pts.push(ring.nodes[cur].p);
                if ring.nodes[cur].is_intersection {
                    break;
                }
            }
            ring.nodes[cur].visited = true;
            // Jump to the twin on the other ring.
            cur = ring.nodes[cur].neighbor;
            on_clip = !on_clip;
            let here = if on_clip {
                &c_ring.nodes[cur]
            } else {
                &s_ring.nodes[cur]
            };
            let back_at_start =
                (!on_clip && cur == start) || (on_clip && s_ring.nodes[start].neighbor == cur);
            let _ = here;
            if back_at_start {
                break;
            }
        }
        if ring_pts.len() >= 3 {
            // Drop the duplicated closing vertex if present.
            if ring_pts
                .last()
                .map(|&l| l.dist_sq(ring_pts[0]) < 1e-24)
                .unwrap_or(false)
            {
                ring_pts.pop();
            }
            let poly = Polygon::new(ring_pts).ensure_ccw();
            if poly.area() > SLIVER_AREA {
                results.push(poly);
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mbr::Mbr;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::new(Mbr::new(x0, y0, x1, y1).corners().to_vec())
    }

    fn total_area(ps: &[Polygon]) -> f64 {
        ps.iter().map(|p| p.area()).sum()
    }

    #[test]
    fn overlapping_rectangles() {
        let a = rect(0.0, 0.0, 4.0, 4.0);
        let b = rect(2.0, 1.0, 6.0, 3.0);
        let r = intersect_polygons(&a, &b);
        assert_eq!(r.len(), 1);
        assert!(
            (total_area(&r) - 4.0).abs() < 1e-9,
            "area = {}",
            total_area(&r)
        );
    }

    #[test]
    fn disjoint_polygons() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(5.0, 5.0, 6.0, 6.0);
        assert!(intersect_polygons(&a, &b).is_empty());
    }

    #[test]
    fn containment_without_crossings() {
        let outer = rect(0.0, 0.0, 10.0, 10.0);
        let inner = rect(2.0, 2.0, 3.0, 3.0);
        let r = intersect_polygons(&outer, &inner);
        assert_eq!(r.len(), 1);
        assert!((total_area(&r) - 1.0).abs() < 1e-12);
        // Symmetric.
        let r2 = intersect_polygons(&inner, &outer);
        assert!((total_area(&r2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concave_subject_two_output_rings() {
        // U-shaped subject crossed by a horizontal bar: intersection has two
        // disjoint components.
        let u = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(5.0, 4.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        let bar = rect(-1.0, 2.0, 6.0, 3.0);
        let r = intersect_polygons(&u, &bar);
        assert_eq!(r.len(), 2, "{r:?}");
        assert!((total_area(&r) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn triangle_square_overlap() {
        let sq = rect(0.0, 0.0, 2.0, 2.0);
        let tri = Polygon::new(vec![
            Point::new(1.0, -1.0),
            Point::new(3.0, 1.0),
            Point::new(1.0, 3.0),
        ]);
        let r = intersect_polygons(&sq, &tri);
        assert_eq!(r.len(), 1);
        let area = total_area(&r);
        // The triangle covers x ≥ 1, y ≥ x−2, y ≤ 4−x; inside [0,2]² that is
        // exactly the rectangle [1,2] × [0,2], area 2. The square corner
        // (2,2) lies exactly on a triangle edge, so the perturbation fallback
        // runs and the area carries an error of the perturbation's order.
        assert!((area - 2.0).abs() < 1e-6, "area = {area}");
    }

    #[test]
    fn degenerate_shared_edge_resolved_by_perturbation() {
        let a = rect(0.0, 0.0, 2.0, 2.0);
        let b = rect(2.0, 0.0, 4.0, 2.0); // shares the edge x = 2
        let r = intersect_polygons(&a, &b);
        // Perturbation resolves to either empty or a sliver below tolerance.
        assert!(total_area(&r) < 1e-6);
    }

    #[test]
    fn degenerate_shared_vertex() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = Polygon::new(vec![
            Point::new(1.0, 1.0),
            Point::new(2.0, 1.0),
            Point::new(2.0, 2.0),
        ]);
        let r = intersect_polygons(&a, &b);
        assert!(total_area(&r) < 1e-6);
    }

    #[test]
    fn identical_rectangles() {
        let a = rect(0.0, 0.0, 3.0, 2.0);
        let r = intersect_polygons(&a, &a.clone());
        assert!(
            (total_area(&r) - 6.0).abs() < 1e-4,
            "area = {}",
            total_area(&r)
        );
    }

    #[test]
    fn matches_convex_clipper_on_convex_inputs() {
        use crate::convex::ConvexPolygon;
        let a = rect(0.0, 0.0, 5.0, 5.0);
        let b = Polygon::new(vec![
            Point::new(2.5, -1.0),
            Point::new(7.0, 3.0),
            Point::new(2.5, 7.0),
            Point::new(-2.0, 3.0),
        ]);
        let gh_area = total_area(&intersect_polygons(&a, &b));
        let ca = ConvexPolygon::from_ccw(a.vertices().to_vec());
        let cb = ConvexPolygon::from_ccw(b.vertices().to_vec());
        let cv_area = ca.intersect(&cb).area();
        assert!(
            (gh_area - cv_area).abs() < 1e-9,
            "gh={gh_area} cv={cv_area}"
        );
    }
}
