//! Convex hull (Andrew's monotone chain).

use crate::convex::ConvexPolygon;
use crate::point::Point;
use crate::robust::orient2d;
use crate::total::TotalF64;

/// Computes the convex hull of a point set as a CCW [`ConvexPolygon`].
///
/// Collinear points on the hull boundary are dropped. Fewer than three
/// non-collinear points give an empty polygon.
pub fn convex_hull(points: &[Point]) -> ConvexPolygon {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by_key(|p| (TotalF64(p.x), TotalF64(p.y)));
    pts.dedup_by(|a, b| a == b);
    let n = pts.len();
    if n < 3 {
        return ConvexPolygon::empty();
    }

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first

    if hull.len() < 3 {
        ConvexPolygon::empty()
    } else {
        ConvexPolygon::from_ccw(hull)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
            Point::new(0.5, 0.5),
            Point::new(0.25, 0.75),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!((hull.area() - 1.0).abs() < 1e-15);
        assert!(hull.is_convex_ccw());
    }

    #[test]
    fn hull_drops_collinear_boundary_points() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert!(convex_hull(&[Point::new(1.0, 1.0)]).is_empty());
        assert!(convex_hull(&[Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).is_empty());
        // All collinear.
        let line: Vec<Point> = (0..10)
            .map(|i| Point::new(i as f64, 2.0 * i as f64))
            .collect();
        assert!(convex_hull(&line).is_empty());
    }

    #[test]
    fn hull_contains_all_points() {
        // Deterministic pseudo-random points.
        let mut pts = Vec::new();
        let mut s = 12345u64;
        for _ in 0..200 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 33) as f64) / (u32::MAX as f64) * 10.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((s >> 33) as f64) / (u32::MAX as f64) * 10.0;
            pts.push(Point::new(x, y));
        }
        let hull = convex_hull(&pts);
        assert!(hull.is_convex_ccw());
        for p in &pts {
            assert!(hull.contains(*p), "{p} outside hull");
        }
    }
}
