//! Geometric substrate for the MOLQ (Multi-criteria Optimal Location Query)
//! reproduction.
//!
//! This crate provides everything the Voronoi substrate and the OVD/MOVD model
//! need from plane geometry, implemented from scratch:
//!
//! * [`Point`] / vector arithmetic and distances,
//! * [`TotalF64`], a total-order wrapper used as B-tree keys in the plane sweep,
//! * [`Mbr`], axis-aligned minimum bounding rectangles (the MBRB boundary
//!   representation of the paper),
//! * [`Segment`] with exact-sign intersection tests,
//! * [`ConvexPolygon`] with half-plane and convex–convex clipping (the RRB
//!   boundary representation: ordinary Voronoi cells and their intersections
//!   are convex),
//! * [`Polygon`] (simple, possibly non-convex) with Greiner–Hormann
//!   intersection in [`clip`] (the general-region path the paper delegated to
//!   the GPC library),
//! * robust [`orient2d`](robust::orient2d) / [`incircle`](robust::incircle)
//!   predicates with Shewchuk-style floating-point expansion fallbacks, used by
//!   the Delaunay triangulator,
//! * [`Circle`] and Apollonius circles for multiplicatively weighted Voronoi
//!   bounds.

/// Asserts that an expression matches a pattern, optionally running a body
/// with the pattern's bindings.
///
/// A shared replacement for ad-hoc `match … other => panic!(…)` test
/// helpers: the failure message names the expression, the expected pattern,
/// the actual value, and the call site.
///
/// ```
/// molq_geom::assert_matches!(Some(3), Some(n) => assert_eq!(n, 3));
/// molq_geom::assert_matches!(Option::<i32>::None, None);
/// ```
#[macro_export]
macro_rules! assert_matches {
    ($expr:expr, $pat:pat $(if $guard:expr)? $(,)?) => {
        $crate::assert_matches!($expr, $pat $(if $guard)? => ())
    };
    ($expr:expr, $pat:pat $(if $guard:expr)? => $body:expr $(,)?) => {
        match $expr {
            $pat $(if $guard)? => $body,
            ref other => ::core::panic!(
                "assertion failed at {}:{}: `{}` does not match `{}`; got {:?}",
                ::core::file!(),
                ::core::line!(),
                ::core::stringify!($expr),
                ::core::stringify!($pat),
                other
            ),
        }
    };
}

pub mod circle;
pub mod clip;
pub mod convex;
pub mod hull;
pub mod mbr;
pub mod point;
pub mod polygon;
pub mod robust;
pub mod segment;
pub mod total;

pub use circle::Circle;
pub use convex::{convex_contains, ConvexPolygon};
pub use mbr::Mbr;
pub use point::Point;
pub use polygon::{ring_contains, Polygon};
pub use segment::Segment;
pub use total::TotalF64;

/// Relative/absolute tolerance used by non-exact geometric comparisons.
///
/// Exact decisions (orientation, in-circle) never use this; it only guards
/// constructions such as clipping against accumulating slivers.
pub const EPS: f64 = 1e-12;
