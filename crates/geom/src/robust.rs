//! Robust geometric predicates.
//!
//! The Delaunay triangulator (and hence every Voronoi diagram the MOLQ
//! pipeline builds) needs `orient2d` and `incircle` decisions that are *never*
//! wrong, or the triangulation data structure corrupts on near-degenerate
//! input (collinear street grids, co-circular POIs, duplicated coordinates).
//!
//! Both predicates follow Shewchuk's two-stage scheme:
//!
//! 1. a fast floating-point evaluation with a certified forward error bound —
//!    when the magnitude of the result exceeds the bound, its sign is provably
//!    correct and we return immediately;
//! 2. an *exact* evaluation using floating-point expansions (nonoverlapping
//!    sums of `f64` terms) when the filter is inconclusive.
//!
//! The exact stage here favours clarity over Shewchuk's full adaptivity: it
//! recomputes the whole determinant with expansion arithmetic. It only runs on
//! near-degenerate inputs, which are rare in the workloads this crate serves.

use crate::point::Point;

/// Machine epsilon for `f64` halved, as used in Shewchuk's error bounds
/// (`2^-53`).
const EPSILON: f64 = 1.110_223_024_625_156_5e-16;
/// Splitter constant `2^27 + 1` for Dekker's product splitting.
const SPLITTER: f64 = 134_217_729.0;

const CCW_ERR_BOUND_A: f64 = (3.0 + 16.0 * EPSILON) * EPSILON;
const ICC_ERR_BOUND_A: f64 = (10.0 + 96.0 * EPSILON) * EPSILON;

/// Result of an exact sign computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// The sign of a plain `f64` (which must be finite).
    #[inline]
    pub fn of(v: f64) -> Sign {
        if v > 0.0 {
            Sign::Positive
        } else if v < 0.0 {
            Sign::Negative
        } else {
            Sign::Zero
        }
    }
}

// ---------------------------------------------------------------------------
// Expansion arithmetic (Shewchuk 1997).
//
// An expansion is a sum of f64 components, stored least-significant first,
// whose components are nonoverlapping: the exact value is the sum and the
// sign is the sign of the largest-magnitude (last nonzero) component.
// ---------------------------------------------------------------------------

/// `a + b` as an exact two-term expansion `(hi, lo)`.
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bvirt = x - a;
    let avirt = x - bvirt;
    let bround = b - bvirt;
    let around = a - avirt;
    (x, around + bround)
}

/// `a - b` as an exact two-term expansion `(hi, lo)`.
#[inline]
fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let x = a - b;
    let bvirt = a - x;
    let avirt = x + bvirt;
    let bround = bvirt - b;
    let around = a - avirt;
    (x, around + bround)
}

/// Splits `a` into high and low halves for Dekker multiplication.
#[inline]
fn split(a: f64) -> (f64, f64) {
    let c = SPLITTER * a;
    let abig = c - a;
    let ahi = c - abig;
    let alo = a - ahi;
    (ahi, alo)
}

/// `a * b` as an exact two-term expansion `(hi, lo)`.
#[inline]
fn two_product(a: f64, b: f64) -> (f64, f64) {
    let x = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let err1 = x - ahi * bhi;
    let err2 = err1 - alo * bhi;
    let err3 = err2 - ahi * blo;
    (x, alo * blo - err3)
}

/// Adds two expansions with zero elimination (`fast_expansion_sum_zeroelim`).
///
/// Inputs must be nonoverlapping and sorted by increasing magnitude; the
/// output has the same properties.
fn expansion_sum(e: &[f64], f: &[f64]) -> Vec<f64> {
    let mut h = Vec::with_capacity(e.len() + f.len());
    let (mut ei, mut fi) = (0usize, 0usize);

    if e.is_empty() {
        return f.to_vec();
    }
    if f.is_empty() {
        return e.to_vec();
    }

    let mut enow = e[0];
    let mut fnow = f[0];
    let mut q;
    if (fnow > enow) == (fnow > -enow) {
        q = enow;
        ei += 1;
    } else {
        q = fnow;
        fi += 1;
    }

    if ei < e.len() && fi < f.len() {
        enow = e[ei];
        fnow = f[fi];
        let (qnew, hh);
        if (fnow > enow) == (fnow > -enow) {
            let r = two_sum(enow, q);
            qnew = r.0;
            hh = r.1;
            ei += 1;
        } else {
            let r = two_sum(fnow, q);
            qnew = r.0;
            hh = r.1;
            fi += 1;
        }
        q = qnew;
        if hh != 0.0 {
            h.push(hh);
        }
        while ei < e.len() && fi < f.len() {
            enow = e[ei];
            fnow = f[fi];
            let (qnew, hh);
            if (fnow > enow) == (fnow > -enow) {
                let r = two_sum(q, enow);
                qnew = r.0;
                hh = r.1;
                ei += 1;
            } else {
                let r = two_sum(q, fnow);
                qnew = r.0;
                hh = r.1;
                fi += 1;
            }
            q = qnew;
            if hh != 0.0 {
                h.push(hh);
            }
        }
    }
    while ei < e.len() {
        let r = two_sum(q, e[ei]);
        q = r.0;
        if r.1 != 0.0 {
            h.push(r.1);
        }
        ei += 1;
    }
    while fi < f.len() {
        let r = two_sum(q, f[fi]);
        q = r.0;
        if r.1 != 0.0 {
            h.push(r.1);
        }
        fi += 1;
    }
    if q != 0.0 || h.is_empty() {
        h.push(q);
    }
    h
}

/// Multiplies an expansion by a scalar (`scale_expansion_zeroelim`).
fn scale_expansion(e: &[f64], b: f64) -> Vec<f64> {
    let mut h = Vec::with_capacity(2 * e.len().max(1));
    if e.is_empty() || b == 0.0 {
        return vec![0.0];
    }
    let (mut q, hh) = two_product(e[0], b);
    if hh != 0.0 {
        h.push(hh);
    }
    for &enow in &e[1..] {
        let (p1, p0) = two_product(enow, b);
        let (sum, hh) = two_sum(q, p0);
        if hh != 0.0 {
            h.push(hh);
        }
        let (qnew, hh) = two_sum(p1, sum);
        if hh != 0.0 {
            h.push(hh);
        }
        q = qnew;
    }
    if q != 0.0 || h.is_empty() {
        h.push(q);
    }
    h
}

/// Product of two expansions (distributes `scale_expansion` over `f`).
fn mul_expansions(e: &[f64], f: &[f64]) -> Vec<f64> {
    let mut acc = vec![0.0];
    for &fi in f {
        if fi != 0.0 {
            acc = expansion_sum(&acc, &scale_expansion(e, fi));
        }
    }
    acc
}

/// Negates an expansion in place.
fn negate(e: &mut [f64]) {
    for v in e.iter_mut() {
        *v = -*v;
    }
}

/// The exact sign of an expansion (sign of its most significant component).
fn expansion_sign(e: &[f64]) -> Sign {
    for &v in e.iter().rev() {
        if v != 0.0 {
            return Sign::of(v);
        }
    }
    Sign::Zero
}

/// Approximate value of an expansion (exact when it fits one f64).
#[allow(dead_code)]
fn estimate(e: &[f64]) -> f64 {
    e.iter().sum()
}

// ---------------------------------------------------------------------------
// Predicates
// ---------------------------------------------------------------------------

/// Orientation of point `c` relative to the directed line `a -> b`.
///
/// Returns a value whose **sign** is exact: positive when `(a, b, c)` makes a
/// counter-clockwise turn, negative when clockwise, zero when collinear. The
/// magnitude is twice the signed triangle area (approximate when the exact
/// path was taken, but the sign is always right).
pub fn orient2d(a: Point, b: Point, c: Point) -> f64 {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return det;
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return det;
        }
        -detleft - detright
    } else {
        return det;
    };

    let errbound = CCW_ERR_BOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        return det;
    }

    match orient2d_exact(a, b, c) {
        Sign::Positive => 1.0,
        Sign::Negative => -1.0,
        Sign::Zero => 0.0,
    }
}

/// Exact orientation sign via expansion arithmetic.
pub fn orient2d_exact(a: Point, b: Point, c: Point) -> Sign {
    // det = (ax - cx)(by - cy) - (ay - cy)(bx - cx), all exact.
    let acx = two_diff(a.x, c.x);
    let bcy = two_diff(b.y, c.y);
    let acy = two_diff(a.y, c.y);
    let bcx = two_diff(b.x, c.x);
    // two_diff returns (hi, lo); expansions are lo-first.
    let left = mul_expansions(&[acx.1, acx.0], &[bcy.1, bcy.0]);
    let mut right = mul_expansions(&[acy.1, acy.0], &[bcx.1, bcx.0]);
    negate(&mut right);
    expansion_sign(&expansion_sum(&left, &right))
}

/// In-circle test: positive when `d` lies strictly inside the circle through
/// `a`, `b`, `c` (which must be in counter-clockwise order), negative when
/// outside, zero when co-circular. The sign is exact.
pub fn incircle(a: Point, b: Point, c: Point, d: Point) -> f64 {
    let adx = a.x - d.x;
    let bdx = b.x - d.x;
    let cdx = c.x - d.x;
    let ady = a.y - d.y;
    let bdy = b.y - d.y;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = ICC_ERR_BOUND_A * permanent;
    if det > errbound || -det > errbound {
        return det;
    }

    match incircle_exact(a, b, c, d) {
        Sign::Positive => 1.0,
        Sign::Negative => -1.0,
        Sign::Zero => 0.0,
    }
}

/// Exact in-circle sign via expansion arithmetic.
pub fn incircle_exact(a: Point, b: Point, c: Point, d: Point) -> Sign {
    // Work with exact translated coordinates as 2-expansions.
    let exp2 = |hi_lo: (f64, f64)| vec![hi_lo.1, hi_lo.0];
    let adx = exp2(two_diff(a.x, d.x));
    let ady = exp2(two_diff(a.y, d.y));
    let bdx = exp2(two_diff(b.x, d.x));
    let bdy = exp2(two_diff(b.y, d.y));
    let cdx = exp2(two_diff(c.x, d.x));
    let cdy = exp2(two_diff(c.y, d.y));

    let lift = |x: &[f64], y: &[f64]| expansion_sum(&mul_expansions(x, x), &mul_expansions(y, y));
    let alift = lift(&adx, &ady);
    let blift = lift(&bdx, &bdy);
    let clift = lift(&cdx, &cdy);

    // Minor determinants (2x2 cofactors of the lift column).
    let det2 = |x1: &[f64], y2: &[f64], x2: &[f64], y1: &[f64]| {
        let left = mul_expansions(x1, y2);
        let mut right = mul_expansions(x2, y1);
        negate(&mut right);
        expansion_sum(&left, &right)
    };
    let bc = det2(&bdx, &cdy, &cdx, &bdy);
    let ca = det2(&cdx, &ady, &adx, &cdy);
    let ab = det2(&adx, &bdy, &bdx, &ady);

    let t1 = mul_expansions(&alift, &bc);
    let t2 = mul_expansions(&blift, &ca);
    let t3 = mul_expansions(&clift, &ab);
    expansion_sign(&expansion_sum(&expansion_sum(&t1, &t2), &t3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orient_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert!(orient2d(a, b, Point::new(0.0, 1.0)) > 0.0);
        assert!(orient2d(a, b, Point::new(0.0, -1.0)) < 0.0);
        assert_eq!(orient2d(a, b, Point::new(2.0, 0.0)), 0.0);
    }

    #[test]
    fn orient_near_degenerate_is_consistent() {
        // Classic adversarial case: points nearly collinear, where naive f64
        // evaluation returns inconsistent signs for permuted arguments.
        let a = Point::new(0.5, 0.5);
        let b = Point::new(12.0, 12.0);
        let c = Point::new(24.0, 24.0);
        assert_eq!(orient2d(a, b, c), 0.0);

        // Tiny perturbations around a collinear triple must give opposite,
        // antisymmetric results under swapping.
        let eps = f64::EPSILON;
        for i in 0..64 {
            let p = Point::new(0.5 + eps * i as f64, 0.5);
            let s1 = orient2d(p, b, c);
            let s2 = orient2d(b, p, c);
            // orient2d(p,b,c) and orient2d(b,p,c) must have opposite signs
            // (or both be zero).
            assert_eq!(Sign::of(s1), flip(Sign::of(s2)), "i={i}");
        }
    }

    fn flip(s: Sign) -> Sign {
        match s {
            Sign::Positive => Sign::Negative,
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
        }
    }

    #[test]
    fn orient_exact_matches_integer_determinant() {
        // With small integer coordinates, the f64 determinant is exact, so the
        // expansion path must agree with it.
        let pts = [-3i64, -1, 0, 1, 2, 5];
        for &ax in &pts {
            for &ay in &pts {
                for &bx in &pts {
                    for &by in &pts {
                        for &cx in &pts {
                            for &cy in &pts {
                                let a = Point::new(ax as f64, ay as f64);
                                let b = Point::new(bx as f64, by as f64);
                                let c = Point::new(cx as f64, cy as f64);
                                let exact = (ax - cx) * (by - cy) - (ay - cy) * (bx - cx);
                                assert_eq!(
                                    orient2d_exact(a, b, c),
                                    Sign::of(exact as f64),
                                    "{a} {b} {c}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn incircle_basic() {
        // Unit circle through (1,0), (0,1), (-1,0); CCW order.
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        let c = Point::new(-1.0, 0.0);
        assert!(incircle(a, b, c, Point::new(0.0, 0.0)) > 0.0);
        assert!(incircle(a, b, c, Point::new(2.0, 0.0)) < 0.0);
        assert_eq!(incircle(a, b, c, Point::new(0.0, -1.0)), 0.0);
    }

    #[test]
    fn incircle_cocircular_grid() {
        // Points on a circle of radius 5 centred at origin with integer
        // coordinates: (3,4),(4,3),(5,0),(0,5), etc. All co-circular.
        let a = Point::new(3.0, 4.0);
        let b = Point::new(-4.0, 3.0);
        let c = Point::new(-3.0, -4.0);
        assert!(orient2d(a, b, c) > 0.0);
        assert_eq!(incircle(a, b, c, Point::new(4.0, -3.0)), 0.0);
        assert_eq!(incircle(a, b, c, Point::new(5.0, 0.0)), 0.0);
        assert_eq!(incircle(a, b, c, Point::new(0.0, -5.0)), 0.0);
        assert!(incircle(a, b, c, Point::new(0.1, 0.0)) > 0.0);
        assert!(incircle(a, b, c, Point::new(5.0, 5.0)) < 0.0);
    }

    #[test]
    fn expansion_roundtrip() {
        let e = expansion_sum(&[1e-30, 1.0], &[1e-30, 2.0]);
        assert_eq!(estimate(&e), 3.0);
        let s = scale_expansion(&[1e-30, 1.0], 3.0);
        assert!((estimate(&s) - 3.0).abs() < 1e-12);
        let m = mul_expansions(&[0.5], &[0.25]);
        assert_eq!(estimate(&m), 0.125);
    }

    #[test]
    fn two_ops_are_exact() {
        let (hi, lo) = two_sum(1.0, 1e-20);
        assert_eq!(hi, 1.0);
        assert_eq!(lo, 1e-20);
        let (hi, lo) = two_product(1.0 + f64::EPSILON, 1.0 + f64::EPSILON);
        // (1+e)^2 = 1 + 2e + e^2; hi holds 1+2e, lo holds e^2.
        assert_eq!(hi, 1.0 + 2.0 * f64::EPSILON);
        assert_eq!(lo, f64::EPSILON * f64::EPSILON);
        let (hi, lo) = two_diff(1.0, 1e-20);
        assert_eq!(hi, 1.0);
        assert_eq!(lo, -1e-20);
    }
}
