//! Axis-aligned minimum bounding rectangles.
//!
//! In the MBRB solution of the paper, the *shape* of every overlapped Voronoi
//! region is replaced by its MBR, so rectangle intersection (`O(1)`) replaces
//! polygon intersection.

use crate::point::Point;

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
///
/// The rectangle is closed; a degenerate rectangle (a point or a segment) is
/// valid. An *empty* MBR (used as the identity for [`Mbr::union`]) has
/// `min > max` and intersects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mbr {
    /// Smallest x coordinate.
    pub min_x: f64,
    /// Smallest y coordinate.
    pub min_y: f64,
    /// Largest x coordinate.
    pub max_x: f64,
    /// Largest y coordinate.
    pub max_y: f64,
}

impl Mbr {
    /// The empty rectangle: identity for [`Mbr::union`], absorbing for
    /// [`Mbr::intersection`].
    pub const EMPTY: Mbr = Mbr {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    /// Creates a rectangle from extents. `min` components must not exceed
    /// `max` components (use [`Mbr::EMPTY`] for the empty rectangle).
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted MBR");
        Mbr {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The MBR of a single point.
    #[inline]
    pub fn of_point(p: Point) -> Self {
        Mbr::new(p.x, p.y, p.x, p.y)
    }

    /// The MBR of a set of points; [`Mbr::EMPTY`] for an empty iterator.
    pub fn of_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        points
            .into_iter()
            .fold(Mbr::EMPTY, |acc, p| acc.union(&Mbr::of_point(p)))
    }

    /// `true` when no point lies inside (the `EMPTY` rectangle).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Width (`0` for degenerate, negative never returned; empty gives `0`).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Height.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half the perimeter (the R-tree "margin" metric).
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point. Meaningless for empty rectangles.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// `true` when `other` lies entirely inside `self` (empty is contained in
    /// everything).
    #[inline]
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        other.is_empty()
            || (other.min_x >= self.min_x
                && other.max_x <= self.max_x
                && other.min_y >= self.min_y
                && other.max_y <= self.max_y)
    }

    /// `true` when the two closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Mbr) -> bool {
        !(self.is_empty()
            || other.is_empty()
            || self.min_x > other.max_x
            || other.min_x > self.max_x
            || self.min_y > other.max_y
            || other.min_y > self.max_y)
    }

    /// Intersection rectangle; [`Mbr::EMPTY`] when disjoint.
    pub fn intersection(&self, other: &Mbr) -> Mbr {
        if !self.intersects(other) {
            return Mbr::EMPTY;
        }
        Mbr {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        }
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Mbr) -> Mbr {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Mbr {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Grows the rectangle by `delta` on every side.
    pub fn inflate(&self, delta: f64) -> Mbr {
        if self.is_empty() {
            return *self;
        }
        Mbr {
            min_x: self.min_x - delta,
            min_y: self.min_y - delta,
            max_x: self.max_x + delta,
            max_y: self.max_y + delta,
        }
    }

    /// Minimum distance from `p` to the rectangle (0 when inside).
    pub fn min_dist(&self, p: Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        dx.hypot(dy)
    }

    /// The four corners in counter-clockwise order starting at `(min_x, min_y)`.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.min_x, self.min_y),
            Point::new(self.max_x, self.min_y),
            Point::new(self.max_x, self.max_y),
            Point::new(self.min_x, self.max_y),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_behaves_as_identity() {
        let r = Mbr::new(0.0, 0.0, 2.0, 3.0);
        assert!(Mbr::EMPTY.is_empty());
        assert_eq!(Mbr::EMPTY.union(&r), r);
        assert_eq!(r.union(&Mbr::EMPTY), r);
        assert!(!Mbr::EMPTY.intersects(&r));
        assert!(Mbr::EMPTY.intersection(&r).is_empty());
    }

    #[test]
    fn intersection_of_overlapping() {
        let a = Mbr::new(0.0, 0.0, 4.0, 4.0);
        let b = Mbr::new(2.0, 1.0, 6.0, 3.0);
        let i = a.intersection(&b);
        assert_eq!(i, Mbr::new(2.0, 1.0, 4.0, 3.0));
        assert!(a.intersects(&b) && b.intersects(&a));
    }

    #[test]
    fn touching_rectangles_intersect() {
        let a = Mbr::new(0.0, 0.0, 1.0, 1.0);
        let b = Mbr::new(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).area(), 0.0);
    }

    #[test]
    fn disjoint_rectangles() {
        let a = Mbr::new(0.0, 0.0, 1.0, 1.0);
        let b = Mbr::new(2.0, 2.0, 3.0, 3.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_empty());
    }

    #[test]
    fn of_points_covers_all() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(3.0, 2.0),
        ];
        let m = Mbr::of_points(pts);
        assert_eq!(m, Mbr::new(-2.0, 0.0, 3.0, 5.0));
        for p in pts {
            assert!(m.contains(p));
        }
    }

    #[test]
    fn containment() {
        let outer = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let inner = Mbr::new(1.0, 1.0, 2.0, 2.0);
        assert!(outer.contains_mbr(&inner));
        assert!(!inner.contains_mbr(&outer));
        assert!(outer.contains_mbr(&Mbr::EMPTY));
    }

    #[test]
    fn min_dist_from_outside_and_inside() {
        let r = Mbr::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(r.min_dist(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(r.min_dist(Point::new(5.0, 1.0)), 3.0);
        assert!((r.min_dist(Point::new(5.0, 6.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn inflate_grows_area() {
        let r = Mbr::new(0.0, 0.0, 2.0, 2.0).inflate(1.0);
        assert_eq!(r, Mbr::new(-1.0, -1.0, 3.0, 3.0));
    }

    #[test]
    fn corners_are_ccw() {
        let r = Mbr::new(0.0, 0.0, 1.0, 2.0);
        let c = r.corners();
        // Shoelace area of the corner loop must be positive (CCW).
        let mut area = 0.0;
        for i in 0..4 {
            let a = c[i];
            let b = c[(i + 1) % 4];
            area += a.cross(b);
        }
        assert!(area > 0.0);
    }
}
