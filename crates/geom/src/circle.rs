//! Circles and Apollonius dominance constraints for weighted Voronoi
//! diagrams.
//!
//! For multiplicatively weighted sites `p` (weight `w_p`) and `q` (weight
//! `w_q`) — where *smaller* weighted distance `w · d` wins, per the paper's
//! convention that "more preferred objects have smaller weights" — the region
//! where `p` dominates `q` is bounded by an Apollonius circle:
//!
//! * `w_p = w_q`: a half-plane (the perpendicular bisector),
//! * `w_p > w_q`: a disk around `p` (the less attractive site holds only a
//!   bubble near itself),
//! * `w_p < w_q`: the complement of a disk around `q`.

use crate::mbr::Mbr;
use crate::point::Point;

/// A circle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center.
    pub center: Point,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle.
    pub fn new(center: Point, radius: f64) -> Self {
        debug_assert!(radius >= 0.0);
        Circle { center, radius }
    }

    /// `true` when `p` lies inside or on the circle.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius
    }

    /// Bounding rectangle.
    pub fn mbr(&self) -> Mbr {
        Mbr::new(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )
    }

    /// Circumcircle of three non-collinear points, `None` when collinear.
    pub fn circumcircle(a: Point, b: Point, c: Point) -> Option<Circle> {
        let d = 2.0 * ((b - a).cross(c - a));
        if d == 0.0 {
            return None;
        }
        let a2 = a.norm_sq();
        let b2 = b.norm_sq();
        let c2 = c.norm_sq();
        let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
        let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
        let center = Point::new(ux, uy);
        Some(Circle::new(center, center.dist(a)))
    }
}

/// The region `{ l : w_p · d(l, p) ≤ w_q · d(l, q) }` where site `p`
/// (multiplicatively weighted) dominates site `q`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DominanceConstraint {
    /// Half-plane containing `p`, bounded by the perpendicular bisector;
    /// stored as the directed line `a → b` whose **left** side is the region.
    HalfPlane {
        /// Line anchor.
        a: Point,
        /// Second point on the line; the kept side is to the left of `a → b`.
        b: Point,
    },
    /// The closed disk.
    Disk(Circle),
    /// Everything outside the open disk.
    DiskComplement(Circle),
}

impl DominanceConstraint {
    /// Builds the dominance region of `p` over `q` for multiplicative weights
    /// (`w · d`, smaller wins). Weights must be strictly positive and the
    /// sites distinct.
    pub fn multiplicative(p: Point, wp: f64, q: Point, wq: f64) -> DominanceConstraint {
        assert!(wp > 0.0 && wq > 0.0, "weights must be positive");
        assert!(p != q, "sites must be distinct");
        if wp == wq {
            // Perpendicular bisector; left side of the directed line holds p.
            let m = p.mid(q);
            let dir = (q - p).perp();
            // p must be left of (m, m + dir): cross(dir, p - m) > 0?
            let a = m;
            let b = m + dir;
            if (b - a).cross(p - a) >= 0.0 {
                return DominanceConstraint::HalfPlane { a, b };
            }
            return DominanceConstraint::HalfPlane { a: b, b: a };
        }
        // w_p d_p <= w_q d_q  ⇔  d_p/d_q <= λ with λ = w_q / w_p.
        let lambda = wq / wp;
        let l2 = lambda * lambda;
        // (1 - λ²)|l|² - 2 l·(p - λ² q) + (|p|² - λ²|q|²) ≤ 0.
        let denom = 1.0 - l2;
        let center = (p - q * l2) / denom;
        let k = (p.norm_sq() - l2 * q.norm_sq()) / denom;
        let r2 = center.norm_sq() - k;
        let radius = r2.max(0.0).sqrt();
        let circle = Circle::new(center, radius);
        if denom > 0.0 {
            // λ < 1 (w_q < w_p): p's dominance is the disk.
            DominanceConstraint::Disk(circle)
        } else {
            // λ > 1: dividing by negative flips the inequality.
            DominanceConstraint::DiskComplement(circle)
        }
    }

    /// `true` when `l` satisfies the constraint.
    pub fn contains(&self, l: Point) -> bool {
        match self {
            DominanceConstraint::HalfPlane { a, b } => (*b - *a).cross(l - *a) >= 0.0,
            DominanceConstraint::Disk(c) => c.contains(l),
            DominanceConstraint::DiskComplement(c) => {
                !c.contains(l) || c.center.dist(l) == c.radius
            }
        }
    }

    /// A rectangle guaranteed to contain `region ∩ bounds` — used to compute
    /// superset MBRs of weighted dominance regions for the MBRB path.
    pub fn mbr_within(&self, bounds: &Mbr) -> Mbr {
        match self {
            // Conservative for the unbounded shapes.
            DominanceConstraint::HalfPlane { .. } | DominanceConstraint::DiskComplement(_) => {
                *bounds
            }
            DominanceConstraint::Disk(c) => c.mbr().intersection(bounds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circumcircle_of_right_triangle() {
        let c = Circle::circumcircle(
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
        )
        .unwrap();
        assert!((c.center.x - 1.0).abs() < 1e-12);
        assert!((c.center.y - 1.0).abs() < 1e-12);
        assert!((c.radius - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn circumcircle_collinear_is_none() {
        assert!(Circle::circumcircle(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0)
        )
        .is_none());
    }

    #[test]
    fn equal_weights_give_halfplane() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(2.0, 0.0);
        let c = DominanceConstraint::multiplicative(p, 1.0, q, 1.0);
        assert!(c.contains(p));
        assert!(!c.contains(q));
        assert!(c.contains(Point::new(1.0, 5.0))); // on bisector
    }

    #[test]
    fn heavier_site_gets_disk() {
        // w_p = 2 > w_q = 1: p keeps only a bubble near itself.
        let p = Point::new(0.0, 0.0);
        let q = Point::new(3.0, 0.0);
        let c = DominanceConstraint::multiplicative(p, 2.0, q, 1.0);
        crate::assert_matches!(&c, DominanceConstraint::Disk(circle) => {
            // Boundary point on segment: 2·d_p = d_q → d_p = 1 at x = 1.
            assert!(circle.contains(Point::new(1.0, 0.0)));
            assert!(circle.contains(p));
            assert!(!circle.contains(Point::new(1.5, 0.0)));
        });
        assert!(c.contains(p));
        assert!(!c.contains(q));
    }

    #[test]
    fn lighter_site_gets_disk_complement() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(3.0, 0.0);
        let c = DominanceConstraint::multiplicative(p, 1.0, q, 2.0);
        assert!(matches!(c, DominanceConstraint::DiskComplement(_)));
        assert!(c.contains(p));
        assert!(!c.contains(q));
        // Far away, the lighter (more attractive) site always wins.
        assert!(c.contains(Point::new(100.0, 100.0)));
    }

    #[test]
    fn constraint_agrees_with_direct_comparison() {
        // Brute-force check over a grid for several weight combinations.
        let p = Point::new(1.0, 2.0);
        let q = Point::new(4.0, -1.0);
        for (wp, wq) in [(1.0, 1.0), (2.0, 1.0), (1.0, 3.0), (0.5, 0.7)] {
            let c = DominanceConstraint::multiplicative(p, wp, q, wq);
            for i in -10..=10 {
                for j in -10..=10 {
                    let l = Point::new(i as f64 * 0.7, j as f64 * 0.7);
                    let direct = wp * l.dist(p) <= wq * l.dist(q);
                    let via = c.contains(l);
                    // Allow boundary wobble.
                    let margin = (wp * l.dist(p) - wq * l.dist(q)).abs();
                    if margin > 1e-9 {
                        assert_eq!(via, direct, "wp={wp} wq={wq} l={l}");
                    }
                }
            }
        }
    }

    #[test]
    fn disk_mbr_within_bounds() {
        let bounds = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let c = DominanceConstraint::Disk(Circle::new(Point::new(1.0, 1.0), 3.0));
        let m = c.mbr_within(&bounds);
        assert_eq!(m, Mbr::new(0.0, 0.0, 4.0, 4.0));
        let hp = DominanceConstraint::HalfPlane {
            a: Point::new(0.0, 0.0),
            b: Point::new(1.0, 0.0),
        };
        assert_eq!(hp.mbr_within(&bounds), bounds);
    }
}
