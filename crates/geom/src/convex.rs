//! Convex polygons with half-plane and convex–convex clipping.
//!
//! Ordinary Voronoi cells are convex, and convexity is preserved under
//! intersection, so the whole RRB pipeline over ordinary Voronoi diagrams
//! works exclusively with this type. Clipping one convex polygon by another
//! with `v` and `w` vertices costs `O(v · w)` via iterated half-plane clips —
//! the paper's observation that "the complexity of overlapping two polygons is
//! proportional to the number of vertices in the polygons".

use crate::mbr::Mbr;
use crate::point::Point;

/// Minimum area below which a clipped polygon is discarded as a numerical
/// sliver. Relative to nothing — callers operating on microscopic coordinate
/// ranges should scale their data first (the MOLQ pipeline works in
/// kilometre-scale coordinates).
const SLIVER_AREA: f64 = 1e-18;

/// A convex polygon with vertices in counter-clockwise order.
///
/// May be empty (no vertices) — the result of clipping away everything.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConvexPolygon {
    verts: Vec<Point>,
}

impl ConvexPolygon {
    /// Creates a polygon from counter-clockwise vertices.
    ///
    /// The caller asserts convexity and orientation; use
    /// [`ConvexPolygon::is_convex_ccw`] in debug checks or
    /// [`crate::hull::convex_hull`] to build from unordered points.
    pub fn from_ccw(verts: Vec<Point>) -> Self {
        ConvexPolygon { verts }
    }

    /// The empty polygon.
    pub fn empty() -> Self {
        ConvexPolygon { verts: Vec::new() }
    }

    /// A rectangle as a convex polygon (counter-clockwise).
    pub fn from_mbr(mbr: &Mbr) -> Self {
        if mbr.is_empty() {
            return Self::empty();
        }
        ConvexPolygon {
            verts: mbr.corners().to_vec(),
        }
    }

    /// The vertices in counter-clockwise order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.verts
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// `true` when the polygon has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.verts.len() < 3
    }

    /// Signed area via the shoelace formula (positive for CCW).
    pub fn signed_area(&self) -> f64 {
        let n = self.verts.len();
        if n < 3 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..n {
            let a = self.verts[i];
            let b = self.verts[(i + 1) % n];
            sum += a.cross(b);
        }
        sum * 0.5
    }

    /// Area (non-negative).
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Centroid of the polygon interior. `None` when empty/degenerate.
    pub fn centroid(&self) -> Option<Point> {
        let n = self.verts.len();
        if n == 0 {
            return None;
        }
        let a = self.signed_area();
        if a.abs() < SLIVER_AREA {
            // Degenerate: fall back to the vertex average.
            let sum = self.verts.iter().fold(Point::ORIGIN, |acc, &p| acc + p);
            return Some(sum / n as f64);
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.verts[i];
            let q = self.verts[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        let f = 1.0 / (6.0 * a);
        Some(Point::new(cx * f, cy * f))
    }

    /// Bounding rectangle.
    pub fn mbr(&self) -> Mbr {
        Mbr::of_points(self.verts.iter().copied())
    }

    /// `true` when `p` lies inside or on the boundary (tolerant test; uses
    /// plain f64 cross products, adequate away from exact degeneracy).
    pub fn contains(&self, p: Point) -> bool {
        convex_contains(&self.verts, p)
    }

    /// Validates convexity and counter-clockwise orientation (allows
    /// collinear runs).
    pub fn is_convex_ccw(&self) -> bool {
        let n = self.verts.len();
        if n < 3 {
            return false;
        }
        for i in 0..n {
            let a = self.verts[i];
            let b = self.verts[(i + 1) % n];
            let c = self.verts[(i + 2) % n];
            if (b - a).cross(c - b) < 0.0 {
                return false;
            }
        }
        self.signed_area() > 0.0
    }

    /// Clips the polygon by the half-plane **left of** the directed line
    /// `a → b` (Sutherland–Hodgman step). Returns the clipped polygon, which
    /// may be empty.
    pub fn clip_halfplane(&self, a: Point, b: Point) -> ConvexPolygon {
        let n = self.verts.len();
        if n == 0 {
            return ConvexPolygon::empty();
        }
        let dir = b - a;
        let side = |p: Point| dir.cross(p - a);

        let mut out: Vec<Point> = Vec::with_capacity(n + 2);
        for i in 0..n {
            let cur = self.verts[i];
            let nxt = self.verts[(i + 1) % n];
            let sc = side(cur);
            let sn = side(nxt);
            if sc >= 0.0 {
                out.push(cur);
            }
            if (sc > 0.0 && sn < 0.0) || (sc < 0.0 && sn > 0.0) {
                let t = sc / (sc - sn);
                out.push(cur.lerp(nxt, t));
            }
        }
        ConvexPolygon::cleaned(out)
    }

    /// Intersection with another convex polygon (both CCW). Returns the
    /// (convex) intersection, possibly empty.
    pub fn intersect(&self, other: &ConvexPolygon) -> ConvexPolygon {
        if self.is_empty() || other.is_empty() {
            return ConvexPolygon::empty();
        }
        // Quick reject via MBRs — cheap and common in the sweep.
        if !self.mbr().intersects(&other.mbr()) {
            return ConvexPolygon::empty();
        }
        let mut result = self.clone();
        let n = other.verts.len();
        for i in 0..n {
            let a = other.verts[i];
            let b = other.verts[(i + 1) % n];
            result = result.clip_halfplane(a, b);
            if result.is_empty() {
                return ConvexPolygon::empty();
            }
        }
        result
    }

    /// Removes duplicate consecutive vertices and discards slivers.
    fn cleaned(mut verts: Vec<Point>) -> ConvexPolygon {
        verts.dedup_by(|a, b| a.dist_sq(*b) < 1e-24);
        if verts.len() > 1 && verts[0].dist_sq(verts[verts.len() - 1]) < 1e-24 {
            verts.pop();
        }
        let poly = ConvexPolygon { verts };
        if poly.verts.len() < 3 || poly.area() < SLIVER_AREA {
            ConvexPolygon::empty()
        } else {
            poly
        }
    }

    /// Number of `f64` coordinates stored — the unit of the paper's memory
    /// accounting (Fig 13: "all vertices of polygons have to be recorded in
    /// RRB").
    #[inline]
    pub fn coord_count(&self) -> usize {
        self.verts.len() * 2
    }
}

/// [`ConvexPolygon::contains`] over a bare CCW vertex slice, for callers
/// that keep vertices in flat buffers instead of owned polygons.
pub fn convex_contains(verts: &[Point], p: Point) -> bool {
    let n = verts.len();
    if n < 3 {
        return false;
    }
    let scale = Mbr::of_points(verts.iter().copied()).margin().max(1.0);
    let tol = -1e-9 * scale * scale;
    for i in 0..n {
        let a = verts[i];
        let b = verts[(i + 1) % n];
        if (b - a).cross(p - a) < tol {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> ConvexPolygon {
        ConvexPolygon::from_mbr(&Mbr::new(0.0, 0.0, 1.0, 1.0))
    }

    #[test]
    fn square_properties() {
        let sq = unit_square();
        assert!(sq.is_convex_ccw());
        assert!((sq.area() - 1.0).abs() < 1e-15);
        let c = sq.centroid().unwrap();
        assert!((c.x - 0.5).abs() < 1e-15 && (c.y - 0.5).abs() < 1e-15);
        assert!(sq.contains(Point::new(0.5, 0.5)));
        assert!(sq.contains(Point::new(0.0, 0.0))); // boundary
        assert!(!sq.contains(Point::new(1.5, 0.5)));
    }

    #[test]
    fn halfplane_clip_cuts_square_in_half() {
        let sq = unit_square();
        // Keep left of upward line x = 0.5.
        let half = sq.clip_halfplane(Point::new(0.5, 0.0), Point::new(0.5, 1.0));
        assert!((half.area() - 0.5).abs() < 1e-12);
        assert!(half.contains(Point::new(0.25, 0.5)));
        assert!(!half.contains(Point::new(0.75, 0.5)));
    }

    #[test]
    fn clip_away_everything() {
        let sq = unit_square();
        let none = sq.clip_halfplane(Point::new(2.0, 0.0), Point::new(2.0, -1.0));
        assert!(none.is_empty());
        assert_eq!(none.area(), 0.0);
    }

    #[test]
    fn clip_keeps_everything() {
        let sq = unit_square();
        // Left of the downward line x = -1 is the half-plane x > -1.
        let all = sq.clip_halfplane(Point::new(-1.0, 1.0), Point::new(-1.0, 0.0));
        assert!((all.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersect_overlapping_squares() {
        let a = unit_square();
        let b = ConvexPolygon::from_mbr(&Mbr::new(0.5, 0.5, 1.5, 1.5));
        let i = a.intersect(&b);
        assert!((i.area() - 0.25).abs() < 1e-12);
        assert!(i.is_convex_ccw());
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = unit_square();
        let b = ConvexPolygon::from_mbr(&Mbr::new(2.0, 2.0, 3.0, 3.0));
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn intersect_triangle_and_square() {
        let sq = unit_square();
        let tri = ConvexPolygon::from_ccw(vec![
            Point::new(-1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.5, 3.0),
        ]);
        let i = sq.intersect(&tri);
        assert!(!i.is_empty());
        assert!(i.area() <= 1.0 + 1e-12);
        assert!(i.is_convex_ccw());
        // The intersection must lie inside both inputs.
        let c = i.centroid().unwrap();
        assert!(sq.contains(c) && tri.contains(c));
    }

    #[test]
    fn intersect_is_commutative_in_area() {
        let a = ConvexPolygon::from_ccw(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 3.0),
            Point::new(0.0, 3.0),
        ]);
        let b = ConvexPolygon::from_ccw(vec![
            Point::new(1.0, -1.0),
            Point::new(5.0, 2.0),
            Point::new(2.0, 5.0),
        ]);
        let ab = a.intersect(&b).area();
        let ba = b.intersect(&a).area();
        assert!((ab - ba).abs() < 1e-9, "ab={ab} ba={ba}");
    }

    #[test]
    fn contained_polygon_intersects_to_itself() {
        let outer = ConvexPolygon::from_mbr(&Mbr::new(-10.0, -10.0, 10.0, 10.0));
        let inner = unit_square();
        let i = outer.intersect(&inner);
        assert!((i.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mbr_of_polygon() {
        let tri = ConvexPolygon::from_ccw(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 3.0),
        ]);
        assert_eq!(tri.mbr(), Mbr::new(0.0, 0.0, 2.0, 3.0));
    }

    #[test]
    fn coord_count_counts_vertices() {
        assert_eq!(unit_square().coord_count(), 8);
        assert_eq!(ConvexPolygon::empty().coord_count(), 0);
    }
}
