//! Points in the plane with vector arithmetic.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or free vector) in the Euclidean plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point {
    /// Origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Dot product, treating both points as vectors from the origin.
    #[inline]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z component of the cross product, treating both points as vectors.
    #[inline]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm of the vector from the origin.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Midpoint of `self` and `other`.
    #[inline]
    pub fn mid(&self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Unit vector in the direction of `self`, or `None` for (near-)zero
    /// vectors.
    pub fn normalized(&self) -> Option<Point> {
        let n = self.norm();
        if n <= f64::MIN_POSITIVE {
            None
        } else {
            Some(Point::new(self.x / n, self.y / n))
        }
    }

    /// The vector rotated 90° counter-clockwise.
    #[inline]
    pub fn perp(&self) -> Point {
        Point::new(-self.y, self.x)
    }

    /// `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.dist(b), b.dist(a));
        assert_eq!(a.dist(b), 5.0);
    }

    #[test]
    fn dist_sq_matches_dist() {
        let a = Point::new(-3.0, 0.5);
        let b = Point::new(2.0, -1.5);
        assert!((a.dist(b).powi(2) - a.dist_sq(b)).abs() < 1e-12);
    }

    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a / 2.0, Point::new(0.5, 1.0));
        assert_eq!(-a, Point::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.mid(b), Point::new(1.0, 2.0));
        assert_eq!(a.lerp(b, 0.25), Point::new(0.5, 1.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Point::ORIGIN.normalized().is_none());
        let u = Point::new(3.0, 4.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn perp_is_ccw_rotation() {
        let v = Point::new(1.0, 0.0);
        assert_eq!(v.perp(), Point::new(0.0, 1.0));
        assert_eq!(v.perp().perp(), -v);
    }
}
