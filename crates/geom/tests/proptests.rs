//! Property-based tests for the geometry substrate.

use molq_geom::clip::intersect_polygons;
use molq_geom::hull::convex_hull;
use molq_geom::robust::{incircle, orient2d};
use molq_geom::{ConvexPolygon, Mbr, Point, Polygon, Segment};
use proptest::prelude::*;

/// Points on a jittered grid: degenerate alignments common, exact duplicates
/// impossible.
fn grid_points(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::btree_set((0i32..40, 0i32..40), min..=max).prop_map(|cells| {
        cells
            .into_iter()
            .map(|(i, j)| Point::new(i as f64 * 2.5, j as f64 * 2.5))
            .collect()
    })
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Mbr> {
    (arb_point(), 0.5f64..50.0, 0.5f64..50.0)
        .prop_map(|(p, w, h)| Mbr::new(p.x, p.y, p.x + w, p.y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn orient2d_is_antisymmetric(a in arb_point(), b in arb_point(), c in arb_point()) {
        let s1 = orient2d(a, b, c);
        let s2 = orient2d(b, a, c);
        prop_assert_eq!(s1 > 0.0, s2 < 0.0);
        prop_assert_eq!(s1 == 0.0, s2 == 0.0);
        // Cyclic permutation preserves the sign.
        let s3 = orient2d(b, c, a);
        prop_assert_eq!(s1 > 0.0, s3 > 0.0);
        prop_assert_eq!(s1 < 0.0, s3 < 0.0);
    }

    #[test]
    fn incircle_symmetry_under_rotation(a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point()) {
        prop_assume!(orient2d(a, b, c) > 0.0);
        let s1 = incircle(a, b, c, d);
        let s2 = incircle(b, c, a, d);
        prop_assert_eq!(s1 > 0.0, s2 > 0.0);
        prop_assert_eq!(s1 < 0.0, s2 < 0.0);
    }

    #[test]
    fn hull_is_convex_and_covers(pts in grid_points(3, 30)) {
        let hull = convex_hull(&pts);
        if !hull.is_empty() {
            prop_assert!(hull.is_convex_ccw());
            for p in &pts {
                prop_assert!(hull.contains(*p), "{p} outside hull");
            }
            // Hull area never exceeds the bounding-box area.
            prop_assert!(hull.area() <= hull.mbr().area() + 1e-9);
        }
    }

    #[test]
    fn convex_intersection_is_sound(r1 in arb_rect(), r2 in arb_rect()) {
        let a = ConvexPolygon::from_mbr(&r1);
        let b = ConvexPolygon::from_mbr(&r2);
        let i = a.intersect(&b);
        // Rect ∩ rect has a closed form to compare against.
        let expect = r1.intersection(&r2).area();
        prop_assert!((i.area() - expect).abs() < 1e-9 * (1.0 + expect));
        if !i.is_empty() {
            prop_assert!(i.is_convex_ccw());
            let c = i.centroid().unwrap();
            prop_assert!(a.contains(c) && b.contains(c));
        }
    }

    #[test]
    fn convex_intersection_with_hulls(pts1 in grid_points(3, 15), pts2 in grid_points(3, 15)) {
        let a = convex_hull(&pts1);
        let b = convex_hull(&pts2);
        prop_assume!(!a.is_empty() && !b.is_empty());
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        // Commutative in area, bounded by both inputs.
        prop_assert!((ab.area() - ba.area()).abs() < 1e-6 * (1.0 + ab.area()));
        prop_assert!(ab.area() <= a.area().min(b.area()) + 1e-9);
    }

    #[test]
    fn greiner_hormann_matches_convex_clipper(pts1 in grid_points(3, 12), pts2 in grid_points(3, 12)) {
        let a = convex_hull(&pts1);
        let b = convex_hull(&pts2);
        prop_assume!(!a.is_empty() && !b.is_empty());
        let cv = a.intersect(&b).area();
        let gh: f64 = intersect_polygons(&Polygon::from(a), &Polygon::from(b))
            .iter()
            .map(|p| p.area())
            .sum();
        // Grid-aligned inputs hit many degeneracies; the perturbation
        // fallback bounds the error at ~1e-6 relative to the scale.
        prop_assert!((cv - gh).abs() < 1e-3 * (1.0 + cv), "cv {cv} gh {gh}");
    }

    #[test]
    fn segment_intersection_is_symmetric(a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        let i12 = s1.intersect(&s2);
        let i21 = s2.intersect(&s1);
        use molq_geom::segment::SegmentIntersection as SI;
        match (i12, i21) {
            (SI::None, SI::None) => {}
            (SI::Point(p), SI::Point(q)) => prop_assert!(p.dist(q) < 1e-9),
            (SI::Overlap(..), SI::Overlap(..)) => {}
            (x, y) => prop_assert!(false, "asymmetric: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn mbr_union_intersection_laws(r1 in arb_rect(), r2 in arb_rect(), r3 in arb_rect()) {
        // Union is commutative/associative; intersection distributes sanity.
        prop_assert_eq!(r1.union(&r2), r2.union(&r1));
        prop_assert_eq!(r1.union(&r2).union(&r3), r1.union(&r2.union(&r3)));
        let i = r1.intersection(&r2);
        if !i.is_empty() {
            prop_assert!(r1.contains_mbr(&i) && r2.contains_mbr(&i));
        }
        prop_assert!(r1.union(&r2).contains_mbr(&r1));
    }

    #[test]
    fn halfplane_clip_never_grows(pts in grid_points(3, 15), a in arb_point(), b in arb_point()) {
        prop_assume!(a != b);
        let poly = convex_hull(&pts);
        prop_assume!(!poly.is_empty());
        let clipped = poly.clip_halfplane(a, b);
        prop_assert!(clipped.area() <= poly.area() + 1e-9);
        // Clipping by the reversed line keeps the complement: the two parts
        // partition the polygon's area.
        let other = poly.clip_halfplane(b, a);
        prop_assert!(
            (clipped.area() + other.area() - poly.area()).abs() < 1e-6 * (1.0 + poly.area())
        );
    }
}
