//! Spatial indexes supporting the MOLQ pipeline.
//!
//! * [`grid::UniformGrid`] — bucket grid used to seed the
//!   Delaunay walk point-location and for dense range counting,
//! * [`kdtree::KdTree`] — static 2-d tree for exact nearest-neighbour
//!   queries (ground truth in tests, closest-object lookups in examples),
//! * [`rtree::RTree`] — STR bulk-loaded R-tree over MBRs, used to probe
//!   which overlapped Voronoi region contains a candidate location.

pub mod grid;
pub mod kdtree;
pub mod rtree;

pub use grid::UniformGrid;
pub use kdtree::KdTree;
pub use rtree::RTree;
