//! Uniform bucket grid over a rectangular domain.

use molq_geom::{Mbr, Point};

/// A uniform grid storing `(Point, id)` pairs in square-ish buckets.
///
/// Primarily used to pick a good starting vertex for the Delaunay walk
/// point-location (`O(1)` expected) and for coarse density queries in the
/// workload generator.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    bounds: Mbr,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
    cells: Vec<Vec<(Point, usize)>>,
    len: usize,
}

impl UniformGrid {
    /// Creates a grid over `bounds` with roughly `target_cells` buckets.
    ///
    /// `bounds` must be non-empty with positive area.
    pub fn new(bounds: Mbr, target_cells: usize) -> Self {
        assert!(!bounds.is_empty(), "grid bounds must be non-empty");
        let aspect = (bounds.width() / bounds.height()).max(1e-9);
        let rows = (((target_cells.max(1) as f64) / aspect).sqrt().ceil() as usize).max(1);
        let cols = target_cells.max(1).div_ceil(rows).max(1);
        UniformGrid {
            bounds,
            cols,
            rows,
            cell_w: bounds.width() / cols as f64,
            cell_h: bounds.height() / rows as f64,
            cells: vec![Vec::new(); cols * rows],
            len: 0,
        }
    }

    /// Creates a grid sized for `n` points (about one point per bucket).
    pub fn for_points(bounds: Mbr, n: usize) -> Self {
        Self::new(bounds, n.max(1))
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let cx = (((p.x - self.bounds.min_x) / self.cell_w) as isize)
            .clamp(0, self.cols as isize - 1) as usize;
        let cy = (((p.y - self.bounds.min_y) / self.cell_h) as isize)
            .clamp(0, self.rows as isize - 1) as usize;
        (cx, cy)
    }

    #[inline]
    fn bucket(&self, cx: usize, cy: usize) -> usize {
        cy * self.cols + cx
    }

    /// Inserts a point with an external identifier. Points outside the bounds
    /// are clamped into the border cells.
    pub fn insert(&mut self, p: Point, id: usize) {
        let (cx, cy) = self.cell_of(p);
        let b = self.bucket(cx, cy);
        self.cells[b].push((p, id));
        self.len += 1;
    }

    /// Any stored point near `p`: scans outward ring by ring and returns the
    /// first non-empty bucket's closest entry. Returns `None` on an empty
    /// grid. This is a *seed* lookup (approximately nearest), not an exact NN.
    pub fn near(&self, p: Point) -> Option<(Point, usize)> {
        if self.len == 0 {
            return None;
        }
        let (cx, cy) = self.cell_of(p);
        let max_r = self.cols.max(self.rows);
        for r in 0..=max_r {
            let mut best: Option<(Point, usize)> = None;
            let mut best_d = f64::INFINITY;
            self.visit_ring(cx, cy, r, |&(q, id)| {
                let d = q.dist_sq(p);
                if d < best_d {
                    best_d = d;
                    best = Some((q, id));
                }
            });
            if best.is_some() {
                return best;
            }
        }
        None
    }

    /// Exact nearest neighbour via ring expansion with a distance guarantee.
    pub fn nearest(&self, p: Point) -> Option<(Point, usize)> {
        if self.len == 0 {
            return None;
        }
        let (cx, cy) = self.cell_of(p);
        let max_r = self.cols.max(self.rows);
        let cell_min = self.cell_w.min(self.cell_h);
        let mut best: Option<(Point, usize)> = None;
        let mut best_d = f64::INFINITY;
        for r in 0..=max_r {
            // Once a candidate is found, one extra ring suffices to certify
            // it (a closer point can be at most one ring further out).
            if best.is_some() && (r as f64 - 1.0) * cell_min > best_d.sqrt() {
                break;
            }
            self.visit_ring(cx, cy, r, |&(q, id)| {
                let d = q.dist_sq(p);
                if d < best_d {
                    best_d = d;
                    best = Some((q, id));
                }
            });
        }
        best
    }

    /// All points inside `query` (inclusive bounds).
    pub fn range(&self, query: &Mbr) -> Vec<(Point, usize)> {
        let mut out = Vec::new();
        if query.is_empty() {
            return out;
        }
        let lo = self.cell_of(Point::new(query.min_x, query.min_y));
        let hi = self.cell_of(Point::new(query.max_x, query.max_y));
        for cy in lo.1..=hi.1 {
            for cx in lo.0..=hi.0 {
                for &(q, id) in &self.cells[self.bucket(cx, cy)] {
                    if query.contains(q) {
                        out.push((q, id));
                    }
                }
            }
        }
        out
    }

    fn visit_ring<F: FnMut(&(Point, usize))>(&self, cx: usize, cy: usize, r: usize, mut f: F) {
        let (cx, cy, r) = (cx as isize, cy as isize, r as isize);
        let in_bounds = |x: isize, y: isize| {
            x >= 0 && y >= 0 && x < self.cols as isize && y < self.rows as isize
        };
        if r == 0 {
            if in_bounds(cx, cy) {
                self.cells[self.bucket(cx as usize, cy as usize)]
                    .iter()
                    .for_each(&mut f);
            }
            return;
        }
        for x in (cx - r)..=(cx + r) {
            for &y in &[cy - r, cy + r] {
                if in_bounds(x, y) {
                    self.cells[self.bucket(x as usize, y as usize)]
                        .iter()
                        .for_each(&mut f);
                }
            }
        }
        for y in (cy - r + 1)..=(cy + r - 1) {
            for &x in &[cx - r, cx + r] {
                if in_bounds(x, y) {
                    self.cells[self.bucket(x as usize, y as usize)]
                        .iter()
                        .for_each(&mut f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_grid() -> (UniformGrid, Vec<Point>) {
        let bounds = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let mut grid = UniformGrid::new(bounds, 100);
        let mut pts = Vec::new();
        let mut s = 99u64;
        for i in 0..500 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 33) as f64 / u32::MAX as f64) * 10.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((s >> 33) as f64 / u32::MAX as f64) * 10.0;
            let p = Point::new(x, y);
            grid.insert(p, i);
            pts.push(p);
        }
        (grid, pts)
    }

    #[test]
    fn empty_grid_queries() {
        let g = UniformGrid::new(Mbr::new(0.0, 0.0, 1.0, 1.0), 16);
        assert!(g.is_empty());
        assert!(g.near(Point::new(0.5, 0.5)).is_none());
        assert!(g.nearest(Point::new(0.5, 0.5)).is_none());
        assert!(g.range(&Mbr::new(0.0, 0.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    fn nearest_matches_brute_force() {
        let (grid, pts) = sample_grid();
        for qi in 0..50 {
            let q = Point::new((qi % 10) as f64 + 0.37, (qi / 10) as f64 + 0.71);
            let (found, _) = grid.nearest(q).unwrap();
            let brute = pts
                .iter()
                .min_by(|a, b| a.dist_sq(q).total_cmp(&b.dist_sq(q)))
                .unwrap();
            assert!(
                (found.dist(q) - brute.dist(q)).abs() < 1e-12,
                "q={q} found={found} brute={brute}"
            );
        }
    }

    #[test]
    fn near_returns_something_close() {
        let (grid, _) = sample_grid();
        let q = Point::new(5.0, 5.0);
        let (p, _) = grid.near(q).unwrap();
        // "near" is a seed: within a couple of cell diagonals.
        assert!(p.dist(q) < 3.0);
    }

    #[test]
    fn range_query_exact() {
        let (grid, pts) = sample_grid();
        let q = Mbr::new(2.0, 3.0, 6.0, 7.0);
        let mut got: Vec<usize> = grid.range(&q).into_iter().map(|(_, id)| id).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains(**p))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn outside_points_clamp_into_border() {
        let mut g = UniformGrid::new(Mbr::new(0.0, 0.0, 1.0, 1.0), 4);
        g.insert(Point::new(5.0, 5.0), 7);
        assert_eq!(g.len(), 1);
        let (p, id) = g.nearest(Point::new(0.9, 0.9)).unwrap();
        assert_eq!(id, 7);
        assert_eq!(p, Point::new(5.0, 5.0));
    }
}
