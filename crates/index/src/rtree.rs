//! STR bulk-loaded R-tree over MBRs.
//!
//! Used by the MOLQ pipeline to locate which overlapped Voronoi regions a
//! point or rectangle may intersect, and by tests to cross-check the plane
//! sweep's pair detection.

use molq_geom::{Mbr, Point};

/// Fan-out of internal and leaf nodes.
const NODE_CAPACITY: usize = 16;

/// An immutable R-tree over `(Mbr, id)` entries, bulk loaded with the
/// Sort-Tile-Recursive (STR) algorithm.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    root: Option<usize>,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        mbr: Mbr,
        entries: Vec<(Mbr, usize)>,
    },
    Inner {
        mbr: Mbr,
        children: Vec<usize>,
    },
}

impl Node {
    fn mbr(&self) -> &Mbr {
        match self {
            Node::Leaf { mbr, .. } => mbr,
            Node::Inner { mbr, .. } => mbr,
        }
    }
}

impl RTree {
    /// Bulk loads the tree from `(mbr, id)` entries. Empty input gives an
    /// empty tree; empty MBRs are skipped.
    pub fn bulk_load(entries: &[(Mbr, usize)]) -> Self {
        let mut items: Vec<(Mbr, usize)> = entries
            .iter()
            .filter(|(m, _)| !m.is_empty())
            .copied()
            .collect();
        let len = items.len();
        if items.is_empty() {
            return RTree {
                nodes: Vec::new(),
                root: None,
                len: 0,
            };
        }
        let mut nodes = Vec::new();

        // STR: sort by center x, slice into vertical strips, sort each strip
        // by center y, pack runs of NODE_CAPACITY into leaves.
        items.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
        let leaf_count = items.len().div_ceil(NODE_CAPACITY);
        let strip_count = (leaf_count as f64).sqrt().ceil() as usize;
        let per_strip = items.len().div_ceil(strip_count);

        let mut level: Vec<usize> = Vec::new();
        for strip in items.chunks_mut(per_strip.max(1)) {
            strip.sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
            for run in strip.chunks(NODE_CAPACITY) {
                let mbr = run.iter().fold(Mbr::EMPTY, |acc, (m, _)| acc.union(m));
                nodes.push(Node::Leaf {
                    mbr,
                    entries: run.to_vec(),
                });
                level.push(nodes.len() - 1);
            }
        }

        // Build upper levels by packing child runs.
        while level.len() > 1 {
            let mut next = Vec::new();
            for run in level.chunks(NODE_CAPACITY) {
                let mbr = run
                    .iter()
                    .fold(Mbr::EMPTY, |acc, &c| acc.union(nodes[c].mbr()));
                nodes.push(Node::Inner {
                    mbr,
                    children: run.to_vec(),
                });
                next.push(nodes.len() - 1);
            }
            level = next;
        }

        let root = Some(level[0]);
        RTree { nodes, root, len }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ids of all entries whose MBR intersects `query`.
    pub fn query_intersecting(&self, query: &Mbr) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.query_rec(root, query, &mut out);
        }
        out
    }

    /// Ids of all entries whose MBR contains `p`.
    pub fn query_point(&self, p: Point) -> Vec<usize> {
        self.query_intersecting(&Mbr::of_point(p))
    }

    fn query_rec(&self, idx: usize, query: &Mbr, out: &mut Vec<usize>) {
        match &self.nodes[idx] {
            Node::Leaf { mbr, entries } => {
                if mbr.intersects(query) {
                    for (m, id) in entries {
                        if m.intersects(query) {
                            out.push(*id);
                        }
                    }
                }
            }
            Node::Inner { mbr, children } => {
                if mbr.intersects(query) {
                    for &c in children {
                        self.query_rec(c, query, out);
                    }
                }
            }
        }
    }

    /// The entry whose MBR is nearest to `p` (by minimum distance), with that
    /// distance. Branch-and-bound over node MBRs.
    pub fn nearest(&self, p: Point) -> Option<(usize, f64)> {
        let root = self.root?;
        let mut best: Option<(usize, f64)> = None;
        self.nearest_rec(root, p, &mut best);
        best
    }

    fn nearest_rec(&self, idx: usize, p: Point, best: &mut Option<(usize, f64)>) {
        let bound = best.map(|(_, d)| d).unwrap_or(f64::INFINITY);
        match &self.nodes[idx] {
            Node::Leaf { mbr, entries } => {
                if mbr.min_dist(p) > bound {
                    return;
                }
                for (m, id) in entries {
                    let d = m.min_dist(p);
                    if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                        *best = Some((*id, d));
                    }
                }
            }
            Node::Inner { mbr, children } => {
                if mbr.min_dist(p) > bound {
                    return;
                }
                // Visit children closest-first for tighter pruning.
                let mut order: Vec<(f64, usize)> = children
                    .iter()
                    .map(|&c| (self.nodes[c].mbr().min_dist(p), c))
                    .collect();
                order.sort_by(|a, b| a.0.total_cmp(&b.0));
                for (d, c) in order {
                    let bound = best.map(|(_, bd)| bd).unwrap_or(f64::INFINITY);
                    if d > bound {
                        break;
                    }
                    self.nearest_rec(c, p, best);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_mbrs(n: usize, seed: u64) -> Vec<(Mbr, usize)> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        (0..n)
            .map(|i| {
                let x = next() * 100.0;
                let y = next() * 100.0;
                let w = next() * 5.0;
                let h = next() * 5.0;
                (Mbr::new(x, y, x + w, y + h), i)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = RTree::bulk_load(&[]);
        assert!(t.is_empty());
        assert!(t
            .query_intersecting(&Mbr::new(0.0, 0.0, 1.0, 1.0))
            .is_empty());
        assert!(t.nearest(Point::ORIGIN).is_none());
    }

    #[test]
    fn intersection_query_matches_brute_force() {
        let entries = pseudo_mbrs(500, 42);
        let tree = RTree::bulk_load(&entries);
        assert_eq!(tree.len(), 500);
        for qi in 0..25 {
            let q = Mbr::new(
                (qi * 3) as f64,
                (qi * 2) as f64,
                (qi * 3 + 10) as f64,
                (qi * 2 + 8) as f64,
            );
            let mut got = tree.query_intersecting(&q);
            got.sort_unstable();
            let mut want: Vec<usize> = entries
                .iter()
                .filter(|(m, _)| m.intersects(&q))
                .map(|(_, id)| *id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query {qi}");
        }
    }

    #[test]
    fn point_query() {
        let entries = vec![
            (Mbr::new(0.0, 0.0, 2.0, 2.0), 0),
            (Mbr::new(1.0, 1.0, 3.0, 3.0), 1),
            (Mbr::new(10.0, 10.0, 11.0, 11.0), 2),
        ];
        let tree = RTree::bulk_load(&entries);
        let mut got = tree.query_point(Point::new(1.5, 1.5));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
        assert!(tree.query_point(Point::new(5.0, 5.0)).is_empty());
    }

    #[test]
    fn nearest_matches_brute_force() {
        let entries = pseudo_mbrs(300, 7);
        let tree = RTree::bulk_load(&entries);
        for qi in 0..30 {
            let p = Point::new((qi * 7 % 100) as f64, (qi * 13 % 100) as f64);
            let (_, got_d) = tree.nearest(p).unwrap();
            let want_d = entries
                .iter()
                .map(|(m, _)| m.min_dist(p))
                .fold(f64::INFINITY, f64::min);
            assert!((got_d - want_d).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn skips_empty_mbrs() {
        let entries = vec![(Mbr::EMPTY, 0), (Mbr::new(0.0, 0.0, 1.0, 1.0), 1)];
        let tree = RTree::bulk_load(&entries);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.query_point(Point::new(0.5, 0.5)), vec![1]);
    }

    #[test]
    fn large_bulk_load_has_valid_mbrs() {
        let entries = pseudo_mbrs(2000, 123);
        let tree = RTree::bulk_load(&entries);
        // Every entry must be findable by querying its own MBR.
        for (m, id) in &entries {
            let got = tree.query_intersecting(m);
            assert!(got.contains(id));
        }
    }
}
