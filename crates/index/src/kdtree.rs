//! Static 2-d kd-tree for exact nearest-neighbour queries.

use molq_geom::Point;

/// A balanced, static kd-tree over points with external `usize` identifiers.
///
/// Build is `O(n log n)`; nearest-neighbour is `O(log n)` expected. The tree
/// is immutable after construction — MOLQ datasets are loaded once per query,
/// matching the paper's main-memory evaluation setting.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    root: Option<usize>,
}

#[derive(Debug, Clone)]
struct Node {
    p: Point,
    id: usize,
    left: Option<usize>,
    right: Option<usize>,
    axis: u8,
}

impl KdTree {
    /// Builds a tree from `(point, id)` pairs.
    pub fn build(items: &[(Point, usize)]) -> Self {
        let mut work: Vec<(Point, usize)> = items.to_vec();
        let mut nodes = Vec::with_capacity(items.len());
        let n = work.len();
        let root = Self::build_rec(&mut work[..], 0, &mut nodes);
        debug_assert_eq!(nodes.len(), n);
        KdTree { nodes, root }
    }

    /// Builds a tree over points with their positional indices as ids.
    pub fn from_points(points: &[Point]) -> Self {
        let items: Vec<(Point, usize)> = points.iter().copied().zip(0..).collect();
        Self::build(&items)
    }

    fn build_rec(items: &mut [(Point, usize)], depth: u8, nodes: &mut Vec<Node>) -> Option<usize> {
        if items.is_empty() {
            return None;
        }
        let axis = depth % 2;
        let mid = items.len() / 2;
        items.select_nth_unstable_by(mid, |a, b| {
            if axis == 0 {
                a.0.x.total_cmp(&b.0.x)
            } else {
                a.0.y.total_cmp(&b.0.y)
            }
        });
        let (p, id) = items[mid];
        let (lo, hi) = items.split_at_mut(mid);
        let hi = &mut hi[1..];
        let left = Self::build_rec(lo, depth + 1, nodes);
        let right = Self::build_rec(hi, depth + 1, nodes);
        nodes.push(Node {
            p,
            id,
            left,
            right,
            axis,
        });
        Some(nodes.len() - 1)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nearest indexed point to `q` with its id, or `None` when empty.
    pub fn nearest(&self, q: Point) -> Option<(Point, usize)> {
        let root = self.root?;
        let mut best = (f64::INFINITY, root);
        self.nearest_rec(root, q, &mut best);
        let node = &self.nodes[best.1];
        Some((node.p, node.id))
    }

    /// Like [`KdTree::nearest`], but also reports the squared distances of
    /// the winner and the runner-up: `(point, id, best_sq, second_sq)`.
    ///
    /// The winner is the same point `nearest` returns — ties are broken by
    /// the identical first-strictly-closer-wins traversal (the wider pruning
    /// bound only *adds* visited nodes, and an added node never displaces an
    /// equal-distance incumbent). `second_sq` is `INFINITY` for a one-point
    /// tree; `second_sq == best_sq` (bit-equal) signals an exact tie, i.e.
    /// the winner's identity hinges on tree shape rather than geometry.
    pub fn nearest2(&self, q: Point) -> Option<(Point, usize, f64, f64)> {
        let root = self.root?;
        let mut best = (f64::INFINITY, root);
        let mut second = f64::INFINITY;
        self.nearest2_rec(root, q, &mut best, &mut second);
        let node = &self.nodes[best.1];
        Some((node.p, node.id, best.0, second))
    }

    /// The `k` nearest points in ascending distance order.
    pub fn k_nearest(&self, q: Point, k: usize) -> Vec<(Point, usize, f64)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // Max-heap of (dist_sq, node) capped at k, kept as a sorted Vec —
        // k is small in every caller.
        let mut heap: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        self.knn_rec(self.root.unwrap(), q, k, &mut heap);
        heap.sort_by(|a, b| a.0.total_cmp(&b.0));
        heap.into_iter()
            .map(|(d, i)| (self.nodes[i].p, self.nodes[i].id, d.sqrt()))
            .collect()
    }

    fn nearest_rec(&self, idx: usize, q: Point, best: &mut (f64, usize)) {
        let node = &self.nodes[idx];
        let d = node.p.dist_sq(q);
        if d < best.0 {
            *best = (d, idx);
        }
        let delta = if node.axis == 0 {
            q.x - node.p.x
        } else {
            q.y - node.p.y
        };
        let (near, far) = if delta <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.nearest_rec(n, q, best);
        }
        if let Some(f) = far {
            if delta * delta < best.0 {
                self.nearest_rec(f, q, best);
            }
        }
    }

    fn nearest2_rec(&self, idx: usize, q: Point, best: &mut (f64, usize), second: &mut f64) {
        let node = &self.nodes[idx];
        let d = node.p.dist_sq(q);
        if d < best.0 {
            *second = best.0;
            *best = (d, idx);
        } else if d < *second {
            *second = d;
        }
        let delta = if node.axis == 0 {
            q.x - node.p.x
        } else {
            q.y - node.p.y
        };
        let (near, far) = if delta <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.nearest2_rec(n, q, best, second);
        }
        if let Some(f) = far {
            // Prune against the runner-up: the far side may still hold the
            // true second-nearest even when it cannot beat the winner.
            if delta * delta < *second {
                self.nearest2_rec(f, q, best, second);
            }
        }
    }

    fn knn_rec(&self, idx: usize, q: Point, k: usize, heap: &mut Vec<(f64, usize)>) {
        let node = &self.nodes[idx];
        let d = node.p.dist_sq(q);
        let worst = heap.iter().map(|e| e.0).fold(f64::NEG_INFINITY, f64::max);
        if heap.len() < k || d < worst {
            heap.push((d, idx));
            if heap.len() > k {
                // Drop the current worst.
                let (wi, _) = heap
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                    .unwrap();
                heap.swap_remove(wi);
            }
        }
        let delta = if node.axis == 0 {
            q.x - node.p.x
        } else {
            q.y - node.p.y
        };
        let (near, far) = if delta <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.knn_rec(n, q, k, heap);
        }
        if let Some(f) = far {
            let worst = heap.iter().map(|e| e.0).fold(f64::NEG_INFINITY, f64::max);
            if heap.len() < k || delta * delta < worst {
                self.knn_rec(f, q, k, heap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) as f64 / u32::MAX as f64) * 100.0;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) as f64 / u32::MAX as f64) * 100.0;
                Point::new(x, y)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::from_points(&[]);
        assert!(t.is_empty());
        assert!(t.nearest(Point::ORIGIN).is_none());
        assert!(t.k_nearest(Point::ORIGIN, 3).is_empty());
    }

    #[test]
    fn single_point() {
        let t = KdTree::from_points(&[Point::new(1.0, 2.0)]);
        let (p, id) = t.nearest(Point::new(50.0, 50.0)).unwrap();
        assert_eq!(id, 0);
        assert_eq!(p, Point::new(1.0, 2.0));
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = pseudo_points(1000, 7);
        let tree = KdTree::from_points(&pts);
        let queries = pseudo_points(100, 99);
        for q in queries {
            let (found, _) = tree.nearest(q).unwrap();
            let brute = pts
                .iter()
                .min_by(|a, b| a.dist_sq(q).total_cmp(&b.dist_sq(q)))
                .unwrap();
            assert!((found.dist(q) - brute.dist(q)).abs() < 1e-12);
        }
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let pts = pseudo_points(300, 3);
        let tree = KdTree::from_points(&pts);
        let q = Point::new(42.0, 13.0);
        for k in [1, 5, 17] {
            let got: Vec<f64> = tree.k_nearest(q, k).iter().map(|e| e.2).collect();
            let mut dists: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
            dists.sort_by(|a, b| a.total_cmp(b));
            for (g, w) in got.iter().zip(dists.iter().take(k)) {
                assert!((g - w).abs() < 1e-12, "k={k}");
            }
            assert_eq!(got.len(), k);
        }
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let pts = pseudo_points(5, 11);
        let tree = KdTree::from_points(&pts);
        let got = tree.k_nearest(Point::ORIGIN, 50);
        assert_eq!(got.len(), 5);
        // Ascending order.
        for w in got.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
    }

    #[test]
    fn duplicate_points_are_kept() {
        let p = Point::new(1.0, 1.0);
        let tree = KdTree::build(&[(p, 10), (p, 20), (Point::new(5.0, 5.0), 30)]);
        assert_eq!(tree.len(), 3);
        let two = tree.k_nearest(p, 2);
        assert_eq!(two.len(), 2);
        assert!(two.iter().all(|e| e.2 == 0.0));
    }
}
