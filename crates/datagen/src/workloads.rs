//! Ready-made query workloads matching the paper's experimental setup (§6).

use crate::geonames::{layer_object_set, GeoLayer};
use molq_core::MolqQuery;
use molq_fw::{StoppingRule, WeightedPoint};
use molq_geom::{Mbr, Point};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random type weights "from 0 to 10" (§6.1) — clamped away from zero since
/// the model requires positive weights.
pub fn random_type_weights(count: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen_range(0.1..=10.0)).collect()
}

/// The paper's standard query: the `type_count` largest layers in order
/// (STM, CH, SCH, PPL, BLDG), `objects_per_type` objects sampled per layer,
/// random type weights, `w^o = 1`, multiplicative weight functions, ε = 0.001.
pub fn standard_query(
    type_count: usize,
    objects_per_type: usize,
    bounds: Mbr,
    seed: u64,
) -> MolqQuery {
    assert!(
        (1..=GeoLayer::ALL.len()).contains(&type_count),
        "1..=5 object types"
    );
    let weights = random_type_weights(type_count, seed);
    let sets = GeoLayer::ALL[..type_count]
        .iter()
        .zip(weights)
        .map(|(&layer, w_t)| layer_object_set(layer, objects_per_type, w_t, bounds, seed))
        .collect();
    MolqQuery::new(sets, bounds).with_rule(StoppingRule::Either(1e-3, 10_000))
}

/// Random Fermat–Weber problems for the Fig 10 experiment: `count` groups of
/// `points_per_group` points with coordinates in the bounds and type weights
/// in (0, 10].
pub fn random_fw_groups(
    count: usize,
    points_per_group: usize,
    bounds: Mbr,
    seed: u64,
) -> Vec<Vec<WeightedPoint>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..points_per_group)
                .map(|_| {
                    WeightedPoint::new(
                        Point::new(
                            rng.gen_range(bounds.min_x..=bounds.max_x),
                            rng.gen_range(bounds.min_y..=bounds.max_y),
                        ),
                        rng.gen_range(0.1..=10.0),
                    )
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_weights_in_range() {
        let w = random_type_weights(100, 5);
        assert_eq!(w.len(), 100);
        assert!(w.iter().all(|&x| x > 0.0 && x <= 10.0));
        assert_eq!(w, random_type_weights(100, 5));
    }

    #[test]
    fn standard_query_is_valid() {
        let b = Mbr::new(0.0, 0.0, 1000.0, 1000.0);
        for types in 1..=5 {
            let q = standard_query(types, 30, b, 11);
            assert!(q.validate().is_ok(), "types={types}");
            assert_eq!(q.sets.len(), types);
            assert_eq!(q.sets[0].name, "STM");
        }
    }

    #[test]
    #[should_panic(expected = "object types")]
    fn standard_query_rejects_six_types() {
        let _ = standard_query(6, 10, Mbr::new(0.0, 0.0, 1.0, 1.0), 0);
    }

    #[test]
    fn fw_groups_shape() {
        let b = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let groups = random_fw_groups(10, 5, b, 3);
        assert_eq!(groups.len(), 10);
        assert!(groups.iter().all(|g| g.len() == 5));
        for g in &groups {
            for p in g {
                assert!(b.contains(p.loc));
                assert!(p.weight > 0.0 && p.weight <= 10.0);
            }
        }
    }
}
