//! Synthetic GeoNames-like POI layers.
//!
//! Substitution note (see DESIGN.md §4): the paper uses five GeoNames US
//! extracts. This module reproduces their *statistical shape*: each layer
//! shares a common set of population centers (so churches cluster where
//! populated places cluster, as in the real data) with layer-specific
//! clustering strength, plus a uniform background. Sizes default to the
//! paper's counts.

use crate::distribution::{sample_points, Distribution};
use molq_core::ObjectSet;
use molq_geom::{Mbr, Point};

/// The five POI layers of the paper's evaluation, largest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeoLayer {
    /// Streams — 230,762 objects in the paper.
    Streams,
    /// Churches — 225,553.
    Churches,
    /// Schools — 200,996.
    Schools,
    /// Populated places — 166,788.
    PopulatedPlaces,
    /// Buildings — 110,289.
    Buildings,
}

impl GeoLayer {
    /// The paper's five layers in its order: STM, CH, SCH, PPL, BLDG.
    pub const ALL: [GeoLayer; 5] = [
        GeoLayer::Streams,
        GeoLayer::Churches,
        GeoLayer::Schools,
        GeoLayer::PopulatedPlaces,
        GeoLayer::Buildings,
    ];

    /// The GeoNames feature-code abbreviation used in the paper.
    pub fn code(&self) -> &'static str {
        match self {
            GeoLayer::Streams => "STM",
            GeoLayer::Churches => "CH",
            GeoLayer::Schools => "SCH",
            GeoLayer::PopulatedPlaces => "PPL",
            GeoLayer::Buildings => "BLDG",
        }
    }

    /// The full layer size in the paper.
    pub fn paper_size(&self) -> usize {
        match self {
            GeoLayer::Streams => 230_762,
            GeoLayer::Churches => 225_553,
            GeoLayer::Schools => 200_996,
            GeoLayer::PopulatedPlaces => 166_788,
            GeoLayer::Buildings => 110_289,
        }
    }

    /// A per-layer seed offset so layers differ deterministically.
    fn seed_offset(&self) -> u64 {
        match self {
            GeoLayer::Streams => 0x53_54_4d,
            GeoLayer::Churches => 0x43_48,
            GeoLayer::Schools => 0x53_43_48,
            GeoLayer::PopulatedPlaces => 0x50_50_4c,
            GeoLayer::Buildings => 0x42_4c_44,
        }
    }

    /// How strongly the layer clusters around population centers.
    fn distribution(&self) -> Distribution {
        match self {
            // Streams follow terrain more than population: mostly background.
            GeoLayer::Streams => Distribution::Mixture {
                clusters: 64,
                sigma: 0.03,
                background: 0.7,
            },
            GeoLayer::Churches => Distribution::Mixture {
                clusters: 64,
                sigma: 0.02,
                background: 0.3,
            },
            GeoLayer::Schools => Distribution::Mixture {
                clusters: 64,
                sigma: 0.02,
                background: 0.25,
            },
            GeoLayer::PopulatedPlaces => Distribution::Mixture {
                clusters: 64,
                sigma: 0.025,
                background: 0.35,
            },
            GeoLayer::Buildings => Distribution::Mixture {
                clusters: 64,
                sigma: 0.015,
                background: 0.2,
            },
        }
    }
}

/// Generates `n` synthetic points of a layer. The same `seed` gives layers a
/// shared cluster geography (the cluster centers are derived from
/// `seed` alone, not from the layer), so different layers correlate
/// spatially.
pub fn synthetic_layer(layer: GeoLayer, n: usize, bounds: Mbr, seed: u64) -> Vec<Point> {
    // The distribution's cluster centers are drawn first from the rng; by
    // seeding with `seed` for the centers and mixing the layer offset only
    // into the point stream we would need two rngs. Simpler and sufficient:
    // mix the layer offset, but keep the cluster count and bounds shared so
    // the large-scale density profile matches across layers.
    sample_points(&layer.distribution(), n, bounds, seed ^ layer.seed_offset())
}

/// Builds an [`ObjectSet`] from a layer sample with a uniform type weight.
pub fn layer_object_set(layer: GeoLayer, n: usize, w_t: f64, bounds: Mbr, seed: u64) -> ObjectSet {
    ObjectSet::uniform(layer.code(), w_t, synthetic_layer(layer, n, bounds, seed))
}

/// Like [`layer_object_set`], but with Zipf-skewed per-object weights
/// (exponent `s`, see [`crate::distribution::zipf_weights`]) instead of the
/// uniform `w^o = 1` default — the benchmark configuration where region
/// sizes vary wildly within one layer.
pub fn layer_object_set_zipf(
    layer: GeoLayer,
    n: usize,
    w_t: f64,
    bounds: Mbr,
    seed: u64,
    s: f64,
) -> ObjectSet {
    use molq_core::{SpatialObject, WeightFunction};
    let points = synthetic_layer(layer, n, bounds, seed);
    let weights = crate::distribution::zipf_weights(n, s, seed ^ layer.seed_offset());
    ObjectSet::weighted(
        layer.code(),
        points
            .into_iter()
            .zip(weights)
            .map(|(loc, w_o)| SpatialObject { loc, w_t, w_o })
            .collect(),
        WeightFunction::Multiplicative,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_are_recorded() {
        assert_eq!(GeoLayer::Streams.paper_size(), 230_762);
        assert_eq!(GeoLayer::Buildings.paper_size(), 110_289);
        let sizes: Vec<usize> = GeoLayer::ALL.iter().map(|l| l.paper_size()).collect();
        // The paper lists them largest-first.
        assert!(sizes.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn layers_are_distinct_but_deterministic() {
        let b = Mbr::new(0.0, 0.0, 1000.0, 1000.0);
        let stm = synthetic_layer(GeoLayer::Streams, 100, b, 42);
        let stm2 = synthetic_layer(GeoLayer::Streams, 100, b, 42);
        let ch = synthetic_layer(GeoLayer::Churches, 100, b, 42);
        assert_eq!(stm, stm2);
        assert_ne!(stm, ch);
        assert_eq!(stm.len(), 100);
    }

    #[test]
    fn object_set_has_layer_code_and_weight() {
        let b = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let set = layer_object_set(GeoLayer::Schools, 20, 2.5, b, 1);
        assert_eq!(set.name, "SCH");
        assert_eq!(set.len(), 20);
        assert!(set.objects.iter().all(|o| o.w_t == 2.5 && o.w_o == 1.0));
    }
}
