//! Workload substrate: synthetic GeoNames-like POI layers, distributions,
//! and CSV interchange.
//!
//! The paper evaluates on five GeoNames US extracts — 230,762 streams (STM),
//! 225,553 churches (CH), 200,996 schools (SCH), 166,788 populated places
//! (PPL) and 110,289 buildings (BLDG). Those extracts are not redistributed
//! here; this crate generates synthetic layers with the same names, default
//! sizes, and a shared population-cluster structure so the layers correlate
//! spatially the way real POI types do. The algorithms under test consume
//! only point coordinates and weights, so set size, density and skew — all
//! reproduced — are the performance drivers. A CSV loader is provided so real
//! extracts can be dropped in unchanged.

pub mod csv;
pub mod distribution;
pub mod geonames;
pub mod workloads;

pub use distribution::{sample_points, zipf_weights, Distribution};
pub use geonames::{layer_object_set_zipf, synthetic_layer, GeoLayer};
pub use workloads::{random_type_weights, standard_query};
