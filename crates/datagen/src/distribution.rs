//! Point distributions for synthetic workloads.

use molq_geom::{Mbr, Point};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// How points are spread over the search space.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Uniform over the bounds.
    Uniform,
    /// Gaussian clusters: `count` cluster centers (themselves uniform), each
    /// point drawn from a cluster-centered normal with standard deviation
    /// `sigma` (rejected back into bounds).
    GaussianClusters {
        /// Number of clusters.
        count: usize,
        /// Cluster spread as a fraction of the bounds' larger side.
        sigma: f64,
    },
    /// A mixture of clustered points with a uniform background — the shape of
    /// real POI layers (dense around population centers, sparse elsewhere).
    Mixture {
        /// Number of clusters.
        clusters: usize,
        /// Cluster spread fraction.
        sigma: f64,
        /// Fraction of points drawn uniformly (0..1).
        background: f64,
    },
}

/// Samples `n` *distinct* points from the distribution, deterministically
/// from `seed`. Duplicate draws are rejected, so the result is always usable
/// as Voronoi generators.
pub fn sample_points(dist: &Distribution, n: usize, bounds: Mbr, seed: u64) -> Vec<Point> {
    assert!(
        !bounds.is_empty() && bounds.area() > 0.0,
        "bounds must have area"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut seen: HashSet<(u64, u64)> = HashSet::with_capacity(n * 2);

    let centers: Vec<Point> = match dist {
        Distribution::Uniform => Vec::new(),
        Distribution::GaussianClusters { count, .. }
        | Distribution::Mixture {
            clusters: count, ..
        } => (0..*count)
            .map(|_| uniform_point(&mut rng, &bounds))
            .collect(),
    };
    let side = bounds.width().max(bounds.height());

    while out.len() < n {
        let p = match dist {
            Distribution::Uniform => uniform_point(&mut rng, &bounds),
            Distribution::GaussianClusters { sigma, .. } => {
                cluster_point(&mut rng, &centers, *sigma * side, &bounds)
            }
            Distribution::Mixture {
                sigma, background, ..
            } => {
                if rng.gen::<f64>() < *background {
                    uniform_point(&mut rng, &bounds)
                } else {
                    cluster_point(&mut rng, &centers, *sigma * side, &bounds)
                }
            }
        };
        if seen.insert((p.x.to_bits(), p.y.to_bits())) {
            out.push(p);
        }
    }
    out
}

/// Zipf-skewed object weights for non-uniform benchmark inputs.
///
/// The object at rank `k` (1-based) gets raw mass `k^-s`; the masses are
/// normalized to mean 1 so aggregate costs stay comparable with the uniform
/// `w_o = 1` default, then the ranks are assigned to object indices by a
/// deterministic Fisher–Yates shuffle of `seed`. Larger `s` skews harder:
/// `s = 0` degenerates to all-ones, `s ≈ 1` is the classic Zipf profile
/// where a handful of objects carry most of the mass. Weights multiply
/// distance, so low-rank (heavy) objects are *dispreferred* and shrink
/// their own Voronoi regions — exactly the irregular region-size mix that
/// stresses the approximate builder's refinement.
pub fn zipf_weights(n: usize, s: f64, seed: u64) -> Vec<f64> {
    assert!(s.is_finite() && s >= 0.0, "zipf exponent must be >= 0");
    if n == 0 {
        return Vec::new();
    }
    let mut raw: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
    let mean = raw.iter().sum::<f64>() / n as f64;
    for w in &mut raw {
        *w /= mean;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        raw.swap(i, rng.gen_range(0..=i));
    }
    raw
}

fn uniform_point(rng: &mut SmallRng, b: &Mbr) -> Point {
    Point::new(
        rng.gen_range(b.min_x..=b.max_x),
        rng.gen_range(b.min_y..=b.max_y),
    )
}

fn cluster_point(rng: &mut SmallRng, centers: &[Point], sigma: f64, b: &Mbr) -> Point {
    let c = centers[rng.gen_range(0..centers.len())];
    loop {
        // Box–Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt() * sigma;
        let p = Point::new(
            c.x + r * (2.0 * std::f64::consts::PI * u2).cos(),
            c.y + r * (2.0 * std::f64::consts::PI * u2).sin(),
        );
        if b.contains(p) {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> Mbr {
        Mbr::new(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn uniform_points_are_in_bounds_and_distinct() {
        let pts = sample_points(&Distribution::Uniform, 1000, bounds(), 1);
        assert_eq!(pts.len(), 1000);
        for p in &pts {
            assert!(bounds().contains(*p));
        }
        let mut uniq: Vec<(u64, u64)> =
            pts.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 1000);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = sample_points(&Distribution::Uniform, 50, bounds(), 7);
        let b = sample_points(&Distribution::Uniform, 50, bounds(), 7);
        let c = sample_points(&Distribution::Uniform, 50, bounds(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clusters_concentrate_mass() {
        let dist = Distribution::GaussianClusters {
            count: 3,
            sigma: 0.01,
        };
        let pts = sample_points(&dist, 600, bounds(), 42);
        // With sigma 1% of the side, most nearest-neighbour distances are
        // tiny compared to uniform spacing (~4.0 for 600 pts in 100x100).
        let mut close = 0;
        for (i, p) in pts.iter().enumerate() {
            let nn = pts
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, q)| p.dist(*q))
                .fold(f64::INFINITY, f64::min);
            if nn < 1.0 {
                close += 1;
            }
        }
        assert!(close > 500, "only {close} clustered points");
    }

    #[test]
    fn zipf_weights_are_skewed_normalized_and_deterministic() {
        let w = zipf_weights(1000, 1.0, 5);
        assert_eq!(w.len(), 1000);
        // Mean-1 normalization.
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
        // Heavy tail: the largest weight dwarfs the median.
        let mut sorted = w.clone();
        sorted.sort_by(f64::total_cmp);
        assert!(sorted[999] > 20.0 * sorted[500], "not skewed: {sorted:?}");
        // Deterministic by seed; the shuffle actually permutes.
        assert_eq!(w, zipf_weights(1000, 1.0, 5));
        assert_ne!(w, zipf_weights(1000, 1.0, 6));
        let unshuffled: Vec<f64> = {
            let raw: Vec<f64> = (1..=1000).map(|k| (k as f64).powf(-1.0)).collect();
            let m = raw.iter().sum::<f64>() / 1000.0;
            raw.into_iter().map(|x| x / m).collect()
        };
        assert_ne!(w, unshuffled);
        // s = 0 degenerates to all-ones.
        assert!(zipf_weights(64, 0.0, 1).iter().all(|&x| x == 1.0));
    }

    #[test]
    fn mixture_has_background() {
        let dist = Distribution::Mixture {
            clusters: 2,
            sigma: 0.005,
            background: 0.5,
        };
        let pts = sample_points(&dist, 400, bounds(), 3);
        assert_eq!(pts.len(), 400);
        // The background fraction spreads points widely: the bounding box of
        // the sample covers most of the domain.
        let m = Mbr::of_points(pts.iter().copied());
        assert!(m.area() > 0.8 * bounds().area());
    }
}
