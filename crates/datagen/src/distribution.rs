//! Point distributions for synthetic workloads.

use molq_geom::{Mbr, Point};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// How points are spread over the search space.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Uniform over the bounds.
    Uniform,
    /// Gaussian clusters: `count` cluster centers (themselves uniform), each
    /// point drawn from a cluster-centered normal with standard deviation
    /// `sigma` (rejected back into bounds).
    GaussianClusters {
        /// Number of clusters.
        count: usize,
        /// Cluster spread as a fraction of the bounds' larger side.
        sigma: f64,
    },
    /// A mixture of clustered points with a uniform background — the shape of
    /// real POI layers (dense around population centers, sparse elsewhere).
    Mixture {
        /// Number of clusters.
        clusters: usize,
        /// Cluster spread fraction.
        sigma: f64,
        /// Fraction of points drawn uniformly (0..1).
        background: f64,
    },
}

/// Samples `n` *distinct* points from the distribution, deterministically
/// from `seed`. Duplicate draws are rejected, so the result is always usable
/// as Voronoi generators.
pub fn sample_points(dist: &Distribution, n: usize, bounds: Mbr, seed: u64) -> Vec<Point> {
    assert!(
        !bounds.is_empty() && bounds.area() > 0.0,
        "bounds must have area"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut seen: HashSet<(u64, u64)> = HashSet::with_capacity(n * 2);

    let centers: Vec<Point> = match dist {
        Distribution::Uniform => Vec::new(),
        Distribution::GaussianClusters { count, .. }
        | Distribution::Mixture {
            clusters: count, ..
        } => (0..*count)
            .map(|_| uniform_point(&mut rng, &bounds))
            .collect(),
    };
    let side = bounds.width().max(bounds.height());

    while out.len() < n {
        let p = match dist {
            Distribution::Uniform => uniform_point(&mut rng, &bounds),
            Distribution::GaussianClusters { sigma, .. } => {
                cluster_point(&mut rng, &centers, *sigma * side, &bounds)
            }
            Distribution::Mixture {
                sigma, background, ..
            } => {
                if rng.gen::<f64>() < *background {
                    uniform_point(&mut rng, &bounds)
                } else {
                    cluster_point(&mut rng, &centers, *sigma * side, &bounds)
                }
            }
        };
        if seen.insert((p.x.to_bits(), p.y.to_bits())) {
            out.push(p);
        }
    }
    out
}

fn uniform_point(rng: &mut SmallRng, b: &Mbr) -> Point {
    Point::new(
        rng.gen_range(b.min_x..=b.max_x),
        rng.gen_range(b.min_y..=b.max_y),
    )
}

fn cluster_point(rng: &mut SmallRng, centers: &[Point], sigma: f64, b: &Mbr) -> Point {
    let c = centers[rng.gen_range(0..centers.len())];
    loop {
        // Box–Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt() * sigma;
        let p = Point::new(
            c.x + r * (2.0 * std::f64::consts::PI * u2).cos(),
            c.y + r * (2.0 * std::f64::consts::PI * u2).sin(),
        );
        if b.contains(p) {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> Mbr {
        Mbr::new(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn uniform_points_are_in_bounds_and_distinct() {
        let pts = sample_points(&Distribution::Uniform, 1000, bounds(), 1);
        assert_eq!(pts.len(), 1000);
        for p in &pts {
            assert!(bounds().contains(*p));
        }
        let mut uniq: Vec<(u64, u64)> =
            pts.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 1000);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = sample_points(&Distribution::Uniform, 50, bounds(), 7);
        let b = sample_points(&Distribution::Uniform, 50, bounds(), 7);
        let c = sample_points(&Distribution::Uniform, 50, bounds(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clusters_concentrate_mass() {
        let dist = Distribution::GaussianClusters {
            count: 3,
            sigma: 0.01,
        };
        let pts = sample_points(&dist, 600, bounds(), 42);
        // With sigma 1% of the side, most nearest-neighbour distances are
        // tiny compared to uniform spacing (~4.0 for 600 pts in 100x100).
        let mut close = 0;
        for (i, p) in pts.iter().enumerate() {
            let nn = pts
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, q)| p.dist(*q))
                .fold(f64::INFINITY, f64::min);
            if nn < 1.0 {
                close += 1;
            }
        }
        assert!(close > 500, "only {close} clustered points");
    }

    #[test]
    fn mixture_has_background() {
        let dist = Distribution::Mixture {
            clusters: 2,
            sigma: 0.005,
            background: 0.5,
        };
        let pts = sample_points(&dist, 400, bounds(), 3);
        assert_eq!(pts.len(), 400);
        // The background fraction spreads points widely: the bounding box of
        // the sample covers most of the domain.
        let m = Mbr::of_points(pts.iter().copied());
        assert!(m.area() > 0.8 * bounds().area());
    }
}
