//! CSV interchange for object sets.
//!
//! Format: a header line `x,y,w_t,w_o` followed by one object per line. This
//! lets real GeoNames extracts (converted with any external tool) replace
//! the synthetic layers without code changes.

use molq_core::{ObjectSet, SpatialObject, WeightFunction};
use molq_geom::Point;
use std::io::{BufRead, BufReader, Read, Write};

/// Writes an object set as CSV.
pub fn write_csv<W: Write>(set: &ObjectSet, mut w: W) -> std::io::Result<()> {
    writeln!(w, "x,y,w_t,w_o")?;
    for o in &set.objects {
        writeln!(w, "{},{},{},{}", o.loc.x, o.loc.y, o.w_t, o.w_o)?;
    }
    Ok(())
}

/// Reads an object set from CSV produced by [`write_csv`] (or hand-made with
/// the same header).
pub fn read_csv<R: Read>(name: &str, r: R) -> Result<ObjectSet, String> {
    let reader = BufReader::new(r);
    let mut objects = Vec::new();
    for (ln, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", ln + 1))?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if ln == 0 {
            if line != "x,y,w_t,w_o" {
                return Err(format!("unexpected header: {line:?}"));
            }
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(format!(
                "line {}: expected 4 fields, got {}",
                ln + 1,
                fields.len()
            ));
        }
        let parse = |s: &str, what: &str| -> Result<f64, String> {
            s.trim()
                .parse::<f64>()
                .map_err(|e| format!("line {}: bad {what}: {e}", ln + 1))
        };
        objects.push(SpatialObject {
            loc: Point::new(parse(fields[0], "x")?, parse(fields[1], "y")?),
            w_t: parse(fields[2], "w_t")?,
            w_o: parse(fields[3], "w_o")?,
        });
    }
    Ok(ObjectSet::weighted(
        name,
        objects,
        WeightFunction::Multiplicative,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use molq_geom::Mbr;

    #[test]
    fn roundtrip() {
        let set = crate::geonames::layer_object_set(
            crate::GeoLayer::Churches,
            25,
            3.0,
            Mbr::new(0.0, 0.0, 100.0, 100.0),
            9,
        );
        let mut buf = Vec::new();
        write_csv(&set, &mut buf).unwrap();
        let back = read_csv("CH", buf.as_slice()).unwrap();
        assert_eq!(back.len(), set.len());
        for (a, b) in set.objects.iter().zip(back.objects.iter()) {
            assert_eq!(a.loc, b.loc);
            assert_eq!(a.w_t, b.w_t);
            assert_eq!(a.w_o, b.w_o);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_csv("x", "nonsense header\n1,2,3,4\n".as_bytes()).is_err());
        assert!(read_csv("x", "x,y,w_t,w_o\n1,2,3\n".as_bytes()).is_err());
        assert!(read_csv("x", "x,y,w_t,w_o\n1,2,3,abc\n".as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let set = read_csv("x", "x,y,w_t,w_o\n1,2,3,4\n\n5,6,7,8\n".as_bytes()).unwrap();
        assert_eq!(set.len(), 2);
    }
}
