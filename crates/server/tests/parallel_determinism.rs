//! Served answers must not depend on the service's thread count.
//!
//! Two services over identical datasets — one scanning serially, one on an
//! 8-thread pool — must produce **byte-identical** response bodies for
//! `/solve`, `/topk`, and `/locate` (the scan layer's determinism
//! contract, surfaced end to end). The 504 partial-progress path must stay
//! well-formed at any thread count: `completed_groups ≤ total_groups`.

use molq_core::prelude::*;
use molq_geom::{Mbr, Point};
use molq_server::engine::{DatasetSpec, Engine};
use molq_server::service::{Request, Service, ServiceConfig};
use std::time::Duration;

fn pseudo_set(name: &str, w_t: f64, n: usize, seed: u64) -> ObjectSet {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as f64 / u32::MAX as f64
    };
    ObjectSet::uniform(
        name,
        w_t,
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect(),
    )
}

fn service(boundary: Boundary, threads: usize) -> Service {
    let engine = Engine::new();
    engine
        .load_from_sets(
            DatasetSpec {
                boundary,
                bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
                eps: 1e-9,
                ..DatasetSpec::new("default", Vec::new())
            },
            vec![
                pseudo_set("a", 2.0, 16, 71),
                pseudo_set("b", 1.0, 18, 72),
                pseudo_set("c", 1.5, 14, 73),
            ],
        )
        .unwrap();
    Service::with_config(
        engine,
        ServiceConfig {
            request_timeout: Duration::from_secs(30),
            threads,
        },
    )
}

#[test]
fn served_bodies_are_byte_identical_across_thread_counts() {
    for boundary in [Boundary::Rrb, Boundary::Mbrb] {
        let serial = service(boundary, 1);
        let parallel = service(boundary, 8);
        let mut requests = vec![
            Request::get("/solve", &[]),
            Request::get("/topk", &[("k", "4")]),
        ];
        for gi in 0..12 {
            let x = format!("{}", (gi as f64 * 8.3 + 1.7) % 100.0);
            let y = format!("{}", (gi as f64 * 5.9 + 3.1) % 100.0);
            requests.push(Request::get("/locate", &[("x", &x), ("y", &y)]));
        }
        for req in &requests {
            let a = serial.handle(req);
            let b = parallel.handle(req);
            assert_eq!(a.status, 200, "{boundary:?} {req:?}: {:?}", a.body);
            assert_eq!(b.status, 200, "{boundary:?} {req:?}: {:?}", b.body);
            assert_eq!(
                a.body.encode(),
                b.body.encode(),
                "{boundary:?} {req:?}: serial and 8-thread bodies differ"
            );
        }
    }
}

#[test]
fn rebuilt_snapshots_match_across_thread_counts() {
    // A reload re-runs the Overlapper on the service's pool; the rebuilt
    // diagram (and therefore every subsequent answer) must not change.
    let serial = service(Boundary::Rrb, 1);
    let parallel = service(Boundary::Rrb, 8);
    for svc in [&serial, &parallel] {
        let resp = svc.handle(&Request {
            method: "POST".into(),
            ..Request::get("/reload", &[("wait", "1")])
        });
        assert_eq!(resp.status, 200, "{:?}", resp.body);
    }
    let a = serial.engine().get("default").unwrap();
    let b = parallel.engine().get("default").unwrap();
    assert_eq!(a.generation, 2);
    assert_eq!(b.generation, 2);
    assert_eq!(a.index.movd().ovrs, b.index.movd().ovrs);
}

#[test]
fn deadline_timeouts_report_sane_progress_at_any_thread_count() {
    for threads in [1, 2, 8] {
        let svc = service(Boundary::Rrb, threads);
        for path in ["/solve", "/topk"] {
            let resp = svc.handle(&Request::get(path, &[("deadline_ms", "0")]));
            assert_eq!(
                resp.status, 504,
                "{threads} threads {path}: {:?}",
                resp.body
            );
            let completed = resp.body.get("completed_groups").unwrap().as_u64().unwrap();
            let total = resp.body.get("total_groups").unwrap().as_u64().unwrap();
            assert!(total > 0, "{threads} threads {path}");
            assert!(
                completed <= total,
                "{threads} threads {path}: {completed}/{total}"
            );
        }
    }
}

#[test]
fn stats_surface_scan_telemetry() {
    let svc = service(Boundary::Rrb, 2);
    svc.handle(&Request::get("/solve", &[]));
    svc.handle(&Request::get("/locate", &[("x", "42.0"), ("y", "17.0")]));
    let stats = svc.handle(&Request::get("/stats", &[]));
    assert_eq!(stats.status, 200);
    let scan = stats.body.get("scan").unwrap();
    assert_eq!(scan.get("threads").unwrap().as_u64(), Some(2));
    assert_eq!(scan.get("scans").unwrap().as_u64(), Some(2));
    let snap = svc.engine().get("default").unwrap();
    let evaluated = scan.get("groups_evaluated").unwrap().as_u64().unwrap();
    // /solve walks every OVR group; /locate adds its candidate set.
    assert!(
        evaluated >= snap.index.movd().len() as u64,
        "groups_evaluated = {evaluated}"
    );
    assert!(scan.get("groups_pruned").unwrap().as_u64().is_some());
    assert!(scan
        .get("last_groups_evaluated")
        .unwrap()
        .as_u64()
        .is_some());
    assert!(scan.get("last_scan_us").unwrap().as_u64().is_some());
    // Cached locate answers skip the scan: counters stay put.
    svc.handle(&Request::get("/locate", &[("x", "42.0"), ("y", "17.0")]));
    let stats = svc.handle(&Request::get("/stats", &[]));
    assert_eq!(
        stats
            .body
            .get("scan")
            .unwrap()
            .get("scans")
            .unwrap()
            .as_u64(),
        Some(2)
    );
}
