//! Transport and batch end-to-end tests, run against BOTH socket layers.
//!
//! Every scenario here executes once under the blocking worker pool and
//! once under the epoll event loop (on Linux), asserting the two transports
//! are observationally equivalent:
//!
//! * batch endpoints answer byte-identically to N individual requests,
//!   including `404` unknown-dataset and `504` deadline bodies;
//! * pipelined keep-alive requests all get answers, in order;
//! * a slow-loris connection (header drip, then silence) is reaped without
//!   wedging concurrent well-behaved clients;
//! * a client that closes mid-exchange doesn't take the server down;
//! * sharded dataset routing resolves every dataset over HTTP.

use molq_core::prelude::*;
use molq_geom::{Mbr, Point};
use molq_server::engine::{DatasetSpec, Engine};
use molq_server::http::{start, ServerConfig, Transport};
use molq_server::service::{Service, ServiceConfig};
use molq_server::{Client, Json, ShardedEngine};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn pseudo_set(name: &str, n: usize, seed: u64) -> ObjectSet {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as f64 / u32::MAX as f64
    };
    ObjectSet::uniform(
        name,
        1.0 + (seed % 3) as f64,
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect(),
    )
}

fn load_dataset(engine: &Engine, name: &str, seed: u64) {
    engine
        .load_from_sets(
            DatasetSpec {
                bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
                ..DatasetSpec::new(name, Vec::new())
            },
            vec![
                pseudo_set("a", 12, seed),
                pseudo_set("b", 10, seed + 1),
                pseudo_set("c", 8, seed + 2),
            ],
        )
        .unwrap();
}

fn sample_service() -> Arc<Service> {
    let engines = ShardedEngine::new(1);
    load_dataset(engines.engine_for("default"), "default", 81);
    load_dataset(engines.engine_for("beta"), "beta", 91);
    Arc::new(Service::sharded(engines, ServiceConfig::default()))
}

/// The transports every scenario must behave identically under.
fn transports() -> Vec<Transport> {
    let mut all = vec![Transport::Pool];
    if cfg!(target_os = "linux") {
        all.push(Transport::Epoll);
    }
    all
}

fn config(transport: Transport) -> ServerConfig {
    ServerConfig {
        workers: 2,
        transport,
        ..ServerConfig::default()
    }
}

#[test]
fn batch_items_answer_byte_identically_to_individual_requests() {
    for transport in transports() {
        let handle = start(sample_service(), config(transport)).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();

        // The oracle: one individual request per batch item, same order.
        let singles = [
            client.get("/solve").unwrap(),
            client.get("/solve?dataset=beta").unwrap(),
            client.get("/solve?dataset=missing").unwrap(),
        ];
        let body = r#"[
            {},
            {"dataset": "beta"},
            {"dataset": "missing"}
        ]"#;
        let batch = client.post_body("/solve_batch", body.as_bytes()).unwrap();
        assert_eq!(batch.status, 200, "{transport:?}: {:?}", batch.body);
        let results = batch.body.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), singles.len());
        for (i, (single, item)) in singles.iter().zip(results).enumerate() {
            assert_eq!(
                item.get("status").unwrap().as_u64().unwrap(),
                u64::from(single.status),
                "{transport:?} item {i}"
            );
            assert_eq!(
                item.get("body").unwrap().encode(),
                single.body.encode(),
                "{transport:?} item {i}"
            );
        }

        // Top-k items: default k, explicit k, invalid k — same bodies as
        // the individual endpoint, including the 400 message.
        let singles = [
            client.get("/topk").unwrap(),
            client.get("/topk?k=3").unwrap(),
            client.get("/topk?k=0").unwrap(),
        ];
        let body = r#"{"queries": [{}, {"k": 3}, {"k": 0}]}"#;
        let batch = client.post_body("/topk_batch", body.as_bytes()).unwrap();
        assert_eq!(batch.status, 200, "{transport:?}: {:?}", batch.body);
        let results = batch.body.get("results").unwrap().as_arr().unwrap();
        for (i, (single, item)) in singles.iter().zip(results).enumerate() {
            assert_eq!(
                item.get("status").unwrap().as_u64().unwrap(),
                u64::from(single.status),
                "{transport:?} topk item {i}"
            );
            assert_eq!(
                item.get("body").unwrap().encode(),
                single.body.encode(),
                "{transport:?} topk item {i}"
            );
        }

        // Deadline exhaustion: item bodies carry the same 504 partial
        // progress the individual endpoint reports.
        let single = client.get("/solve?deadline_ms=0").unwrap();
        assert_eq!(single.status, 504);
        let batch = client
            .post_body("/solve_batch?deadline_ms=0", b"[{}]")
            .unwrap();
        assert_eq!(batch.status, 200, "{transport:?}");
        let item = &batch.body.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(item.get("status").unwrap().as_u64(), Some(504));
        assert_eq!(
            item.get("body").unwrap().encode(),
            single.body.encode(),
            "{transport:?} 504 body"
        );

        // Amortization: N identical items cost one scan, and the response
        // says so.
        let batch = client.post_body("/solve_batch?n=8", b"").unwrap();
        assert_eq!(batch.status, 200, "{transport:?}: {:?}", batch.body);
        let meta = batch.body.get("batch").unwrap();
        assert_eq!(meta.get("items").unwrap().as_u64(), Some(8));
        assert_eq!(meta.get("scans").unwrap().as_u64(), Some(1));
        assert_eq!(meta.get("amortized_items").unwrap().as_u64(), Some(7));
        let results = batch.body.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 8);
        let first = results[0].encode();
        assert!(results.iter().all(|r| r.encode() == first));

        // Malformed batches are request-level 400s.
        for (target, body) in [
            ("/solve_batch", &b"[]"[..]),
            ("/solve_batch", b"not json"),
            ("/topk_batch", b"{\"nope\": 1}"),
        ] {
            let resp = client.post_body(target, body).unwrap();
            assert_eq!(resp.status, 400, "{transport:?} {target}");
            assert!(resp.body.get("error").is_some());
        }
        // GET on a batch endpoint is a 400 too.
        assert_eq!(client.get("/solve_batch").unwrap().status, 400);

        // /stats saw the amortization and names the serving transport.
        let stats = client.get("/stats").unwrap();
        let batch_stats = stats.body.get("batch").unwrap();
        assert!(batch_stats.get("batches").unwrap().as_u64().unwrap() >= 3);
        assert!(
            batch_stats
                .get("amortized_items")
                .unwrap()
                .as_u64()
                .unwrap()
                >= 7
        );
        assert_eq!(
            stats
                .body
                .get("transport")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some(transport.name())
        );

        handle.shutdown();
    }
}

#[test]
fn pipelined_keep_alive_requests_answer_in_order() {
    for transport in transports() {
        let handle = start(sample_service(), config(transport)).unwrap();
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // Three requests in ONE write; answers must come back in order on
        // the same connection.
        let pipelined = "GET /health HTTP/1.1\r\nHost: m\r\n\r\n\
                         GET /stats HTTP/1.1\r\nHost: m\r\n\r\n\
                         GET /nope HTTP/1.1\r\nHost: m\r\n\r\n";
        raw.write_all(pipelined.as_bytes()).unwrap();
        let mut seen = Vec::new();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        while seen.len() < 3 {
            let n = raw.read(&mut chunk).unwrap();
            assert!(n > 0, "{transport:?}: connection closed after {seen:?}");
            buf.extend_from_slice(&chunk[..n]);
            // Count complete responses by their status lines.
            let text = String::from_utf8_lossy(&buf);
            seen = text
                .match_indices("HTTP/1.1 ")
                .map(|(i, _)| text[i + 9..i + 12].to_string())
                .collect();
        }
        assert_eq!(seen, ["200", "200", "404"], "{transport:?}");
        handle.shutdown();
    }
}

#[test]
fn slow_loris_is_reaped_without_wedging_other_clients() {
    for transport in transports() {
        let read_timeout = Duration::from_millis(300);
        let handle = start(
            sample_service(),
            ServerConfig {
                read_timeout,
                ..config(transport)
            },
        )
        .unwrap();
        let addr = handle.addr();

        // The loris: drip half a request head, then go silent.
        let mut loris = TcpStream::connect(addr).unwrap();
        loris.write_all(b"GET /health HT").unwrap();
        loris.set_read_timeout(Some(read_timeout * 10)).unwrap();

        // While it hangs, a well-behaved client is served immediately.
        let mut client = Client::connect(addr).unwrap();
        let resp = client.get("/health").unwrap();
        assert_eq!(resp.status, 200, "{transport:?}");

        // The loris connection is closed (EOF) within the idle timeout
        // plus scheduling slack, not held forever.
        let start_wait = Instant::now();
        let mut sink = [0u8; 64];
        let n = loris.read(&mut sink).unwrap_or(0);
        assert_eq!(n, 0, "{transport:?}: expected EOF, got {n} bytes");
        assert!(
            start_wait.elapsed() < read_timeout * 8,
            "{transport:?}: loris held open {:?}",
            start_wait.elapsed()
        );
        handle.shutdown();
    }
}

#[test]
fn premature_close_leaves_the_server_serving() {
    for transport in transports() {
        let handle = start(sample_service(), config(transport)).unwrap();
        let addr = handle.addr();
        // Fire a request and slam the connection without reading the answer,
        // several times in a row.
        for _ in 0..5 {
            let mut rude = TcpStream::connect(addr).unwrap();
            rude.write_all(b"GET /solve HTTP/1.1\r\nHost: m\r\n\r\n")
                .unwrap();
            drop(rude);
        }
        // The server still answers politely afterwards.
        let mut client = Client::connect(addr).unwrap();
        for _ in 0..3 {
            assert_eq!(client.get("/solve").unwrap().status, 200, "{transport:?}");
        }
        handle.shutdown();
    }
}

#[test]
fn sharded_datasets_resolve_over_http() {
    let engines = ShardedEngine::new(3);
    let names = ["default", "alpha", "beta", "gamma", "delta"];
    for (i, name) in names.iter().enumerate() {
        load_dataset(engines.engine_for(name), name, 100 + i as u64 * 10);
    }
    // Routing is deterministic and uses more than one shard for this set.
    let expected: Vec<usize> = names.iter().map(|n| engines.shard_of(n)).collect();
    let distinct = {
        let mut d = expected.clone();
        d.sort_unstable();
        d.dedup();
        d.len()
    };
    assert!(distinct > 1, "all of {names:?} landed on one shard");

    for transport in transports() {
        let engines = ShardedEngine::new(3);
        for (i, name) in names.iter().enumerate() {
            load_dataset(engines.engine_for(name), name, 100 + i as u64 * 10);
        }
        let service = Arc::new(Service::sharded(engines, ServiceConfig::default()));
        let handle = start(Arc::clone(&service), config(transport)).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        for name in names {
            let resp = client.get(&format!("/solve?dataset={name}")).unwrap();
            assert_eq!(resp.status, 200, "{transport:?} {name}: {:?}", resp.body);
            assert_eq!(resp.body.get("dataset").unwrap().as_str(), Some(name));
        }
        // /health lists every dataset across shards; /stats describes the
        // shard layout.
        let health = client.get("/health").unwrap();
        let listed = health.body.get("datasets").unwrap().as_arr().unwrap();
        assert_eq!(listed.len(), names.len());
        let stats = client.get("/stats").unwrap();
        let shards = stats.body.get("shards").unwrap();
        assert_eq!(shards.get("count").unwrap().as_u64(), Some(3));
        let rows = shards.get("assignments").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 3);
        let total: u64 = rows
            .iter()
            .map(|r| r.get("datasets").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(total, names.len() as u64);
        // A batch addressed across shards answers every item.
        let body = Json::from(
            names
                .iter()
                .map(|n| Json::obj().set("dataset", *n))
                .collect::<Vec<_>>(),
        )
        .encode();
        let batch = client.post_body("/solve_batch", body.as_bytes()).unwrap();
        assert_eq!(batch.status, 200, "{transport:?}: {:?}", batch.body);
        let results = batch.body.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), names.len());
        for (name, item) in names.iter().zip(results) {
            assert_eq!(
                item.get("status").unwrap().as_u64(),
                Some(200),
                "{transport:?} {name}"
            );
        }
        handle.shutdown();
    }
}
