//! End-to-end check of snapshot persistence: a service backed by a
//! snapshot-restored engine answers `/locate`, `/solve`, and `/topk`
//! **identically** (bit-for-bit JSON) to one backed by a freshly-built
//! engine over the same CSVs.

use molq_core::prelude::*;
use molq_geom::{Mbr, Point};
use molq_server::engine::{DatasetSpec, Engine, LoadOutcome};
use molq_server::service::{Request, Service};
use std::path::PathBuf;

fn pseudo_set(name: &str, n: usize, seed: u64) -> ObjectSet {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as f64 / u32::MAX as f64
    };
    ObjectSet::uniform(
        name,
        1.0 + (seed % 3) as f64,
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect(),
    )
}

fn fixture(tag: &str) -> (PathBuf, Vec<PathBuf>) {
    let dir = std::env::temp_dir().join(format!("molq_snapshot_e2e_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let paths = [("stm", 18usize, 41u64), ("ch", 15, 42), ("sch", 12, 43)]
        .iter()
        .map(|&(name, n, seed)| {
            let path = dir.join(format!("{name}.csv"));
            let mut f = std::fs::File::create(&path).unwrap();
            molq_datagen::csv::write_csv(&pseudo_set(name, n, seed), &mut f).unwrap();
            path
        })
        .collect();
    (dir, paths)
}

fn spec(dir: &std::path::Path, paths: &[PathBuf], boundary: Boundary) -> DatasetSpec {
    DatasetSpec {
        boundary,
        bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
        snapshot_dir: Some(dir.to_path_buf()),
        ..DatasetSpec::new("default", paths.to_vec())
    }
}

#[test]
fn restored_engine_answers_match_fresh_build() {
    for boundary in [Boundary::Rrb, Boundary::Mbrb] {
        let tag = format!("{boundary:?}").to_lowercase();
        let (dir, paths) = fixture(&tag);

        // Fresh build persists the snapshot...
        let (_, outcome) = Engine::new()
            .load_traced(spec(&dir, &paths, boundary))
            .unwrap();
        assert_eq!(outcome, LoadOutcome::BuiltFromCsv);

        // ...a second engine restores it...
        let restored_engine = Engine::new();
        let (_, outcome) = restored_engine
            .load_traced(spec(&dir, &paths, boundary))
            .unwrap();
        assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);

        // ...and a third builds from CSVs only (no snapshot dir).
        let fresh_engine = Engine::new();
        fresh_engine
            .load(DatasetSpec {
                snapshot_dir: None,
                ..spec(&dir, &paths, boundary)
            })
            .unwrap();

        let fresh = Service::new(fresh_engine);
        let restored = Service::new(restored_engine);

        for gi in 0..40 {
            let x = ((gi as f64 * 13.37 + 0.11) % 100.0).to_string();
            let y = ((gi as f64 * 7.93 + 0.77) % 100.0).to_string();
            let req = Request::get("/locate", &[("x", &x), ("y", &y)]);
            let a = fresh.handle(&req);
            let b = restored.handle(&req);
            assert_eq!(a.status, 200, "{boundary:?} locate({x},{y}): {:?}", a.body);
            // `cached` can differ between services; compare everything else.
            let scrub = |mut r: molq_server::json::Json| {
                if let molq_server::json::Json::Obj(ref mut fields) = r {
                    fields.retain(|(k, _)| k != "cached");
                }
                r
            };
            assert_eq!(
                scrub(a.body),
                scrub(b.body),
                "{boundary:?} locate({x},{y}) diverged"
            );
        }

        let solve_req = Request::get("/solve", &[]);
        assert_eq!(
            fresh.handle(&solve_req).body,
            restored.handle(&solve_req).body,
            "{boundary:?} solve diverged"
        );

        let topk_req = Request::get("/topk", &[("k", "5")]);
        assert_eq!(
            fresh.handle(&topk_req).body,
            restored.handle(&topk_req).body,
            "{boundary:?} topk diverged"
        );
    }
}

#[test]
fn corrupted_snapshot_falls_back_to_rebuild_and_serves() {
    let (dir, paths) = fixture("corrupt");
    let s = spec(&dir, &paths, Boundary::Rrb);
    Engine::new().load_traced(s.clone()).unwrap();

    // Damage every section in turn; the engine must never fail the load.
    let file = s.snapshot_file().unwrap();
    let clean = std::fs::read(&file).unwrap();
    let cuts = [
        0usize,          // magic
        9,               // version
        20,              // first section header
        clean.len() / 3, // somewhere in the payloads
        clean.len() / 2, // somewhere else
        clean.len() - 2, // last section checksum
    ];
    for &at in &cuts {
        let mut bytes = clean.clone();
        bytes[at] ^= 0x55;
        std::fs::write(&file, &bytes).unwrap();
        let (snap, outcome) = Engine::new().load_traced(s.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::BuiltFromCsv, "flip at {at}");
        assert_eq!(snap.set_count(), 3);
        // The rebuild re-persisted a clean snapshot.
        let (_, outcome) = Engine::new().load_traced(s.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot, "flip at {at}");
    }

    // Truncations (including an empty file) also fall back cleanly.
    for frac in [0usize, 7, 16, clean.len() / 2, clean.len() - 1] {
        std::fs::write(&file, &clean[..frac]).unwrap();
        let (_, outcome) = Engine::new().load_traced(s.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::BuiltFromCsv, "truncate at {frac}");
    }
}
