//! Chaos end-to-end test: the server keeps answering while faults are
//! injected underneath it.
//!
//! Everything runs in ONE `#[test]` on purpose: the fault registry is
//! process-global, and a single sequential scenario is the only way to keep
//! arming/disarming race-free. The scenarios, in order:
//!
//! 1. handler panics → `500` + `panics_caught`, worker and connection live on;
//! 2. slow query → `504` within `request_timeout` + one checkpoint interval,
//!    with partial-progress counters;
//! 3. worker-killing panics → pool respawn restores full capacity;
//! 4. failing rebuilds → circuit breaker opens, `/health` degrades, reloads
//!    shed `503` + `Retry-After`, the old generation serves byte-for-byte,
//!    and the breaker recovers after the backoff;
//! 5. snapshot read corruption → engine falls back to a CSV rebuild.

use molq_core::prelude::*;
use molq_geom::{Mbr, Point};
use molq_server::engine::{BreakerConfig, DatasetSpec, Engine, LoadOutcome};
use molq_server::fault;
use molq_server::http::{start, ServerConfig};
use molq_server::service::{Service, ServiceConfig};
use molq_server::{Client, Json};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn pseudo_set(name: &str, n: usize, seed: u64) -> ObjectSet {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as f64 / u32::MAX as f64
    };
    ObjectSet::uniform(
        name,
        1.0 + (seed % 3) as f64,
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect(),
    )
}

fn fixture(tag: &str) -> (PathBuf, Vec<PathBuf>) {
    let dir = std::env::temp_dir().join(format!("molq_chaos_e2e_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let paths = [("stm", 16usize, 71u64), ("ch", 14, 72), ("sch", 12, 73)]
        .iter()
        .map(|&(name, n, seed)| {
            let path = dir.join(format!("{name}.csv"));
            let mut f = std::fs::File::create(&path).unwrap();
            molq_datagen::csv::write_csv(&pseudo_set(name, n, seed), &mut f).unwrap();
            path
        })
        .collect();
    (dir, paths)
}

fn resilience_counter(client: &mut Client, name: &str) -> u64 {
    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200, "{:?}", stats.body);
    stats
        .body
        .get("resilience")
        .unwrap()
        .get(name)
        .unwrap()
        .as_u64()
        .unwrap()
}

#[test]
fn chaos_server_survives_injected_faults() {
    let request_timeout = Duration::from_millis(500);
    let checkpoint_delay = Duration::from_millis(100);

    let (_dir, paths) = fixture("serve");
    let engine = Engine::new();
    engine.set_breaker_config(BreakerConfig {
        threshold: 2,
        base_backoff: Duration::from_secs(1),
        max_backoff: Duration::from_secs(5),
    });
    engine
        .load(DatasetSpec {
            bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
            ..DatasetSpec::new("default", paths)
        })
        .unwrap();
    // threads: 1 — the slow-fault scenario's timing bounds are calibrated
    // for serial per-group checkpoints; the parallel 504 path has its own
    // coverage in parallel_determinism.rs.
    let service = Arc::new(Service::with_config(
        engine,
        ServiceConfig {
            request_timeout,
            threads: 1,
        },
    ));
    let handle = start(
        Arc::clone(&service),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let mut client = Client::connect(addr).unwrap();
    let baseline = client.get("/solve").unwrap();
    assert_eq!(baseline.status, 200, "{:?}", baseline.body);

    // --- 1. Handler panics are isolated: 500, same worker, same connection.
    fault::arm_spec("service.handle=panic*2").unwrap();
    for _ in 0..2 {
        let resp = client.get("/solve").unwrap();
        assert_eq!(resp.status, 500, "{:?}", resp.body);
        assert!(resp
            .body
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("panicked"));
    }
    // The fault is exhausted; the very same keep-alive connection recovers.
    assert_eq!(client.get("/solve").unwrap().status, 200);
    assert_eq!(resilience_counter(&mut client, "panics_caught"), 2);

    // --- 2. A slow query is cancelled at the deadline: 504 with progress,
    // answered within request_timeout + one checkpoint interval.
    fault::arm_spec("service.slow=sleep:100*1").unwrap();
    let started = Instant::now();
    let slow = client.get("/solve").unwrap();
    let elapsed = started.elapsed();
    assert_eq!(slow.status, 504, "{:?}", slow.body);
    let completed = slow.body.get("completed_groups").unwrap().as_u64().unwrap();
    let total = slow.body.get("total_groups").unwrap().as_u64().unwrap();
    assert!(completed >= 1 && completed < total, "{completed}/{total}");
    assert!(elapsed >= request_timeout, "answered early: {elapsed:?}");
    assert!(
        elapsed < request_timeout + 4 * checkpoint_delay,
        "cancelled too late: {elapsed:?}"
    );
    assert_eq!(resilience_counter(&mut client, "deadline_timeouts"), 1);

    // --- 3. Panics outside request isolation kill workers; the supervisor
    // restores full capacity within one respawn interval.
    fault::arm_spec("http.worker=panic*2").unwrap();
    for _ in 0..2 {
        // The dequeuing worker dies before serving, so the connection just
        // drops — the request fails, the *pool* must not.
        let died = Client::connect(addr).unwrap().get("/health");
        assert!(died.is_err(), "expected a dropped connection: {died:?}");
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut probe = Client::connect(addr).unwrap();
        if probe.get("/health").is_ok_and(|r| r.status == 200)
            && resilience_counter(&mut probe, "workers_respawned") == 2
        {
            break;
        }
        assert!(Instant::now() < deadline, "worker pool never recovered");
        std::thread::sleep(Duration::from_millis(20));
    }
    // Full capacity: every follow-up request succeeds.
    let mut client = Client::connect(addr).unwrap();
    for _ in 0..10 {
        assert_eq!(client.get("/solve").unwrap().status, 200);
    }

    // --- 4. Failing rebuilds trip the breaker; the old generation keeps
    // serving byte-for-byte until recovery.
    let before = client.get("/solve").unwrap();
    assert_eq!(before.status, 200);
    fault::arm_spec("engine.rebuild=fail:injected disk failure*2").unwrap();
    for _ in 0..2 {
        let failed = client.post("/reload?wait=1").unwrap();
        assert_eq!(failed.status, 400, "{:?}", failed.body);
        assert!(failed
            .body
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("injected disk failure"));
    }
    // Threshold reached: the breaker is open, reloads shed with Retry-After.
    let shed = client.post("/reload?wait=1").unwrap();
    assert_eq!(shed.status, 503, "{:?}", shed.body);
    assert_eq!(shed.retry_after, Some(1));
    let health = client.get("/health").unwrap();
    assert_eq!(
        health.body.get("status").unwrap().as_str(),
        Some("degraded")
    );
    let breakers = health.body.get("breakers").unwrap().as_arr().unwrap();
    assert_eq!(breakers.len(), 1);
    assert_eq!(breakers[0].get("open"), Some(&Json::Bool(true)));
    // Queries are untouched: same generation, byte-identical answer.
    let during = client.get("/solve").unwrap();
    assert_eq!(during.status, 200);
    assert_eq!(during.body.encode(), before.body.encode());
    // The injected failures are exhausted; after the backoff the half-open
    // probe rebuilds for real and the breaker closes.
    std::thread::sleep(Duration::from_millis(1200));
    let recovered = client.post("/reload?wait=1").unwrap();
    assert_eq!(recovered.status, 200, "{:?}", recovered.body);
    assert_eq!(recovered.body.get("generation").unwrap().as_u64(), Some(2));
    let health = client.get("/health").unwrap();
    assert_eq!(health.body.get("status").unwrap().as_str(), Some("ok"));
    assert!(health
        .body
        .get("breakers")
        .unwrap()
        .as_arr()
        .unwrap()
        .is_empty());

    handle.shutdown();

    // --- 5. Snapshot read corruption: restore is abandoned, the engine
    // rebuilds from CSVs and still serves.
    let (dir, paths) = fixture("snapshot");
    let spec = DatasetSpec {
        bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
        snapshot_dir: Some(dir.clone()),
        ..DatasetSpec::new("default", paths)
    };
    let (_, outcome) = Engine::new().load_traced(spec.clone()).unwrap();
    assert_eq!(outcome, LoadOutcome::BuiltFromCsv);
    let (_, outcome) = Engine::new().load_traced(spec.clone()).unwrap();
    assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);
    fault::arm_spec("engine.snapshot_read=fail:injected corruption*1").unwrap();
    let (snap, outcome) = Engine::new().load_traced(spec).unwrap();
    assert_eq!(outcome, LoadOutcome::BuiltFromCsv);
    assert_eq!(snap.set_count(), 3);

    fault::disarm_all();
}
