//! Cross-version degradation: a snapshot written by the previous container
//! format (v1, pointer-shaped MOVD section) must fail **cleanly** into the
//! recovery ladder's CSV-rebuild rung — a typed `UnsupportedVersion`, never
//! a panic or a garbled diagram — and the rebuilt engine must answer
//! exactly like one that never saw the old file.
//!
//! The committed fixture in `tests/fixtures/pre_arena/` holds a `.molq`
//! file produced by the pre-arena code (format version 1) together with the
//! source CSVs it was built from, so this test keeps guarding the upgrade
//! path long after the v1 writer is gone.

use molq_server::engine::{DatasetSpec, Engine, LoadOutcome};
use molq_server::service::{Request, Service};
use molq_store::StoreError;
use std::path::{Path, PathBuf};

/// Repo-root fixture directory with the v1 snapshot and its CSVs.
fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/pre_arena")
}

/// Copies the fixture into a scratch dir (the load overwrites the stale
/// snapshot with a current-format one; the committed fixture must stay v1).
fn stage(tag: &str) -> (PathBuf, Vec<PathBuf>) {
    let src = fixture_dir();
    let dir = std::env::temp_dir().join(format!("molq_cross_version_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut paths = Vec::new();
    for name in ["a.csv", "b.csv", "c.csv", "default.molq"] {
        let to = dir.join(name);
        std::fs::copy(src.join(name), &to).unwrap();
        if name.ends_with(".csv") {
            paths.push(to);
        }
    }
    (dir, paths)
}

fn spec(dir: &Path, paths: &[PathBuf]) -> DatasetSpec {
    DatasetSpec {
        bounds: Some(molq_geom::Mbr::new(0.0, 0.0, 100.0, 100.0)),
        snapshot_dir: Some(dir.to_path_buf()),
        ..DatasetSpec::new("default", paths.to_vec())
    }
}

#[test]
fn v1_snapshot_is_rejected_typed_not_panicking() {
    // Decoding the old file directly is a typed version error — the exact
    // shape the recovery ladder keys its CSV-rebuild rung on.
    let err = molq_store::StoredSnapshot::load_file(&fixture_dir().join("default.molq"))
        .expect_err("a v1 snapshot must not decode under the v2 reader");
    match err {
        StoreError::UnsupportedVersion { found, supported } => {
            assert_eq!(found, 1);
            assert_eq!(supported, molq_store::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn v1_snapshot_degrades_to_csv_rebuild_with_matching_answers() {
    let (dir, paths) = stage("rebuild");

    // Load over the stale v1 snapshot: the version check fails the restore,
    // the engine warns and rebuilds from the CSVs — no panic, no error.
    let engine = Engine::new();
    let (_, outcome) = engine.load_traced(spec(&dir, &paths)).unwrap();
    assert_eq!(
        outcome,
        LoadOutcome::BuiltFromCsv,
        "a v1 snapshot must fall through to the CSV rung"
    );

    // A rejected old-format file is staleness, not storage damage: the
    // durability counters stay untouched and the engine is not degraded.
    let d = engine.durability();
    assert_eq!(d.save_failures, 0);
    assert_eq!(d.salvages, 0);
    assert_eq!(d.torn_tails, 0);
    assert_eq!(d.journals_set_aside, 0);
    assert!(!d.degraded, "version staleness must not degrade the engine");

    // The rebuilt engine answers byte-for-byte like one built from the same
    // CSVs with no snapshot machinery at all.
    let plain = Engine::new();
    plain
        .load_traced(DatasetSpec {
            snapshot_dir: None,
            ..spec(&dir, &paths)
        })
        .unwrap();
    let svc = Service::new(engine);
    let oracle = Service::new(plain);
    for req in [
        Request::get("/solve", &[]),
        Request::get("/topk", &[("k", "4")]),
        Request::get("/locate", &[("x", "37.5"), ("y", "61.25")]),
    ] {
        let got = svc.handle(&req);
        let want = oracle.handle(&req);
        assert_eq!(got.status, want.status, "{req:?}");
        assert_eq!(got.body.encode(), want.body.encode(), "{req:?}");
    }

    // The rebuild re-persisted the dataset in the current format: the next
    // load restores instead of rebuilding.
    let (_, outcome) = Engine::new().load_traced(spec(&dir, &paths)).unwrap();
    assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);
    let _ = std::fs::remove_dir_all(&dir);
}
