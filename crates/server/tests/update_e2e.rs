//! End-to-end live-update durability: a served dataset takes inserts and
//! deletes over the service API, the process "dies" (the engine is simply
//! dropped — nothing is flushed beyond what the write-ahead journal already
//! made durable), and a fresh engine restoring from base + journal answers
//! `solve`, `topk`, and `locate` **byte-identically** to an engine built
//! directly over the updated object sets. A torn trailing journal record —
//! the fingerprint of a crash mid-append — must not change any of that.

use molq_core::prelude::*;
use molq_geom::{Mbr, Point};
use molq_server::engine::{DatasetSpec, Engine, LoadOutcome};
use molq_server::service::{Request, Service};

fn pseudo_set(name: &str, w_t: f64, n: usize, seed: u64) -> ObjectSet {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as f64 / u32::MAX as f64
    };
    ObjectSet::uniform(
        name,
        w_t,
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect(),
    )
}

fn spec(dir: Option<&std::path::Path>, paths: Vec<std::path::PathBuf>) -> DatasetSpec {
    DatasetSpec {
        paths,
        bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
        eps: 1e-6,
        snapshot_dir: dir.map(|d| d.to_path_buf()),
        ..DatasetSpec::new("d", Vec::new())
    }
}

fn post(path: &str, params: &[(&str, &str)]) -> Request {
    Request {
        method: "POST".into(),
        ..Request::get(path, params)
    }
}

fn delete(path: &str, params: &[(&str, &str)]) -> Request {
    Request {
        method: "DELETE".into(),
        ..Request::get(path, params)
    }
}

/// The query battery whose response bodies must match byte-for-byte.
fn probe(svc: &Service) -> Vec<String> {
    let mut out = Vec::new();
    for req in [
        Request::get("/solve", &[("dataset", "d")]),
        Request::get("/topk", &[("dataset", "d"), ("k", "4")]),
        Request::get(
            "/locate",
            &[("dataset", "d"), ("x", "41.125"), ("y", "58.5")],
        ),
        Request::get(
            "/locate",
            &[("dataset", "d"), ("x", "7.25"), ("y", "91.75")],
        ),
    ] {
        let resp = svc.handle(&req);
        assert_eq!(resp.status, 200, "{:?}: {:?}", req.path, resp.body);
        out.push(resp.body.encode());
    }
    out
}

#[test]
fn restart_replays_the_journal_to_identical_served_bytes() {
    let dir = std::env::temp_dir().join("molq_update_e2e");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Source CSVs, built once and persisted with a clean journal.
    let mut sets = vec![
        pseudo_set("a", 2.0, 9, 71),
        pseudo_set("b", 1.0, 11, 72),
        pseudo_set("c", 1.5, 8, 73),
    ];
    let mut paths = Vec::new();
    for set in &sets {
        let path = dir.join(format!("{}.csv", set.name));
        let mut f = std::fs::File::create(&path).unwrap();
        molq_datagen::csv::write_csv(set, &mut f).unwrap();
        paths.push(path);
    }

    let engine = Engine::new();
    let (_, outcome) = engine.load_traced(spec(Some(&dir), paths.clone())).unwrap();
    assert_eq!(outcome, LoadOutcome::BuiltFromCsv);
    let svc = Service::new(engine);

    // Live traffic: three inserts and one delete through the API. Mirror
    // every accepted update into `sets` for the reference build.
    for (set, x, y, w_o) in [
        ("a", 33.25, 44.5, 2.0),
        ("b", 61.75, 12.125, 1.0),
        ("c", 18.5, 77.25, 3.0),
    ] {
        let target = sets.iter_mut().find(|s| s.name == set).unwrap();
        let w_t = target.objects[0].w_t;
        let resp = svc.handle(&post(
            "/datasets/d/objects",
            &[
                ("set", set),
                ("x", &x.to_string()),
                ("y", &y.to_string()),
                ("w_t", &w_t.to_string()),
                ("w_o", &w_o.to_string()),
            ],
        ));
        assert_eq!(resp.status, 200, "{:?}", resp.body);
        target.objects.push(SpatialObject {
            loc: Point::new(x, y),
            w_t,
            w_o,
        });
    }
    let resp = svc.handle(&delete("/datasets/d/objects/2", &[("set", "b")]));
    assert_eq!(resp.status, 200, "{:?}", resp.body);
    sets[1].objects.remove(2);

    let live_answers = probe(&svc);
    drop(svc); // "kill" the server: nothing beyond the journal survives

    // The journal is durable and the base file untouched.
    let journal = dir.join("d.journal");
    assert!(journal.exists());
    let clean_len = std::fs::metadata(&journal).unwrap().len();

    // Crash fingerprint: a torn partial record at the journal tail (the
    // append was cut mid-write). The prefix must replay; the tail must go.
    let mut bytes = std::fs::read(&journal).unwrap();
    bytes.extend_from_slice(&[0xABu8; 30]);
    std::fs::write(&journal, &bytes).unwrap();

    // Restart: base + journal replay.
    let engine = Engine::new();
    let (snap, outcome) = engine.load_traced(spec(Some(&dir), paths)).unwrap();
    assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);
    assert_eq!(
        snap.object_count(),
        sets.iter().map(|s| s.objects.len()).sum::<usize>()
    );
    let restored = Service::new(engine);
    assert_eq!(restored.engine().update_stats().replayed, 4);
    // Reopening truncated the torn tail.
    assert_eq!(std::fs::metadata(&journal).unwrap().len(), clean_len);

    // Reference: a fresh engine built directly over the updated sets (no
    // snapshot dir, same spec otherwise) — both serve generation 1.
    let reference = Engine::new();
    reference
        .load_from_sets(spec(None, Vec::new()), sets)
        .unwrap();
    let reference = Service::new(reference);

    let restored_answers = probe(&restored);
    assert_eq!(restored_answers, probe(&reference));

    // And the restart changed no served byte relative to the live process,
    // apart from the generation counter it restarted from.
    for (live, replayed) in live_answers.iter().zip(&restored_answers) {
        assert_eq!(
            live.replace("\"generation\":5", "\"generation\":1"),
            *replayed
        );
    }

    // The replayed state also survives further updates: one more insert on
    // the restored engine answers and journals normally.
    let resp = restored.handle(&post(
        "/datasets/d/objects",
        &[("set", "a"), ("x", "3.5"), ("y", "2.25")],
    ));
    assert_eq!(resp.status, 200, "{:?}", resp.body);
    assert!(std::fs::metadata(&journal).unwrap().len() > clean_len);

    let _ = std::fs::remove_dir_all(&dir);
}
