//! The HTTP/1.1 transport: a dependency-free server on `std::net`.
//!
//! Design: one accept thread in a non-blocking poll loop (so it can observe
//! the shutdown flag), a **bounded** `sync_channel` of accepted connections,
//! and a fixed pool of worker threads each running a keep-alive connection
//! loop with a per-connection read timeout. When the queue is full the
//! accept thread answers `503` immediately instead of building an invisible
//! backlog — a closed-loop load generator then sees the push-back as
//! latency, an open-loop one as errors.
//!
//! [`ServerHandle::shutdown`] flips the flag, the accept thread exits and
//! drops its channel sender, the workers drain whatever was queued and then
//! stop: graceful by construction, no connection is abandoned mid-response.
//!
//! Resilience at this layer:
//!
//! * **Deadline-aware shedding.** Queued connections are stamped on accept;
//!   a worker that dequeues one already older than the service's request
//!   timeout answers `503` + `Retry-After` immediately (the evaluation would
//!   only have timed out anyway) and moves on.
//! * **Worker respawn.** The pool runs under a supervisor thread that joins
//!   and replaces any worker that dies — handler panics are already caught
//!   per-request in the service layer, so a dead worker means a panic in the
//!   transport itself (or the `http.worker` fault point).
//! * **Malformed input.** Oversized heads, unparseable or oversized
//!   `Content-Length`, and clients that vanish mid-body all end in a `4xx`
//!   or a clean close — never a panic, never a wedged worker.

use crate::json::Json;
use crate::metrics::ResilienceMetrics;
use crate::service::{ApiResponse, Request, Service};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind host (e.g. `127.0.0.1`).
    pub host: String,
    /// Bind port; `0` picks an ephemeral port (see [`ServerHandle::addr`]).
    pub port: u16,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Accepted connections waiting for a worker before `503` push-back.
    pub queue_depth: usize,
    /// Per-connection read timeout (also bounds keep-alive idle time).
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            host: "127.0.0.1".into(),
            port: 0,
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains queued connections, joins all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.supervisor.take() {
            let _ = t.join();
        }
    }
}

/// A connection waiting for a worker, stamped so staleness is observable
/// at dequeue.
struct QueuedConn {
    stream: TcpStream,
    accepted_at: Instant,
}

/// Binds and starts serving `service`; returns once the listener is live.
pub fn start(service: Arc<Service>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind((config.host.as_str(), config.port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let (tx, rx) = mpsc::sync_channel::<QueuedConn>(config.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let supervisor = {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let count = config.workers.max(1);
        let read_timeout = config.read_timeout;
        std::thread::spawn(move || supervise_workers(count, &rx, &service, &stop, read_timeout))
    };

    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || accept_loop(&listener, &tx, &accept_stop));

    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        supervisor: Some(supervisor),
    })
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<QueuedConn>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn = QueuedConn {
                    stream,
                    accepted_at: Instant::now(),
                };
                match tx.try_send(conn) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut conn)) => {
                        let _ = conn.stream.write_all(overload_response().as_bytes());
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping `tx` (by returning) disconnects the channel; workers drain
    // the queue and then exit.
}

/// Runs the worker pool under supervision: any worker whose thread finishes
/// while the server is live (i.e. it died — normal exit only happens at
/// shutdown, after the stop flag is set) is joined and replaced, so the pool
/// never stays below capacity.
fn supervise_workers(
    count: usize,
    rx: &Arc<Mutex<Receiver<QueuedConn>>>,
    service: &Arc<Service>,
    stop: &AtomicBool,
    read_timeout: Duration,
) {
    let spawn = || {
        let rx = Arc::clone(rx);
        let service = Arc::clone(service);
        std::thread::spawn(move || worker_loop(&rx, &service, read_timeout))
    };
    let mut workers: Vec<JoinHandle<()>> = (0..count).map(|_| spawn()).collect();
    loop {
        if stop.load(Ordering::SeqCst) {
            // Shutdown: workers exit once the queue disconnects and drains.
            for w in workers {
                let _ = w.join();
            }
            return;
        }
        for slot in workers.iter_mut() {
            if slot.is_finished() {
                let dead = std::mem::replace(slot, spawn());
                let _ = dead.join(); // reap; the panic payload is dropped
                ResilienceMetrics::bump(&service.metrics().resilience.workers_respawned);
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn worker_loop(rx: &Mutex<Receiver<QueuedConn>>, service: &Service, read_timeout: Duration) {
    let shed_after = service.config().request_timeout;
    loop {
        // Hold the lock only for the receive, not while serving.
        let conn = match rx.lock().expect("worker queue poisoned").recv() {
            Ok(c) => c,
            Err(_) => return, // channel disconnected: shutdown
        };
        // Deadline-aware shedding: a connection that queued longer than the
        // request timeout would only time out downstream — fail it fast and
        // tell the client when to come back.
        if conn.accepted_at.elapsed() > shed_after {
            ResilienceMetrics::bump(&service.metrics().resilience.queue_shed);
            let mut stream = conn.stream;
            let _ = stream.write_all(
                plain_response(503, "shed: queued past the request timeout", Some(1)).as_bytes(),
            );
            continue;
        }
        // Fault point *outside* the service layer's panic isolation: arming
        // `http.worker=panic` kills this worker and exercises pool respawn.
        if let Err(e) = crate::fault::fail_point("http.worker") {
            eprintln!("molq-server: worker fault injected: {e}");
        }
        let _ = serve_connection(conn.stream, service, read_timeout);
    }
}

fn serve_connection(
    mut stream: TcpStream,
    service: &Service,
    read_timeout: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_nodelay(true)?;
    loop {
        let request = match read_request(&mut stream)? {
            Some(r) => r,
            None => return Ok(()), // clean close or timeout
        };
        let keep_alive = request.keep_alive;
        let response = match request.parsed {
            Ok(api_request) => service.handle(&api_request),
            Err(e) => ApiResponse {
                status: e.status,
                body: Json::obj().set("error", e.message),
                retry_after: None,
            },
        };
        write_response(&mut stream, &response, keep_alive)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// A transport-level parse rejection (always closes the connection).
struct HttpError {
    status: u16,
    message: String,
}

impl HttpError {
    fn bad(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

struct HttpRequest {
    parsed: Result<Request, HttpError>,
    keep_alive: bool,
}

/// Upper bound on request head size; longer heads are rejected.
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a declared request body; larger is answered `413` without
/// reading it. (The API carries its inputs in the query string, so real
/// bodies are tiny.)
const MAX_BODY: usize = 1024 * 1024;

fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<HttpRequest>> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD {
            return Ok(Some(HttpRequest {
                parsed: Err(HttpError::bad("request head too large")),
                keep_alive: false,
            }));
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return Ok(None),
            Ok(n) => n,
            Err(e)
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                    && head.is_empty() =>
            {
                return Ok(None); // idle keep-alive connection timed out
            }
            Err(e) => return Err(e),
        };
        head.extend_from_slice(&buf[..n]);
    };

    let head_text = match std::str::from_utf8(&head[..head_end]) {
        Ok(t) => t,
        Err(_) => {
            return Ok(Some(HttpRequest {
                parsed: Err(HttpError::bad("request head is not UTF-8")),
                keep_alive: false,
            }))
        }
    };
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // An unparseable length means the message boundary is unknowable:
            // reject rather than guess (a zero guess would misparse the body
            // as the next pipelined request).
            content_length = match value.parse() {
                Ok(n) => n,
                Err(e) => {
                    return Ok(Some(HttpRequest {
                        parsed: Err(HttpError::bad(format!("bad Content-Length: {e}"))),
                        keep_alive: false,
                    }))
                }
            };
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY {
        return Ok(Some(HttpRequest {
            parsed: Err(HttpError {
                status: 413,
                message: format!(
                    "declared body of {content_length} bytes exceeds the {MAX_BODY}-byte cap"
                ),
            }),
            keep_alive: false,
        }));
    }

    // Consume (and discard) any body so the next keep-alive request starts
    // at a message boundary. The API carries its inputs in the query string.
    let already = head.len() - (head_end + 4);
    let mut remaining = content_length.saturating_sub(already);
    while remaining > 0 {
        let take = remaining.min(buf.len());
        let n = stream.read(&mut buf[..take])?;
        if n == 0 {
            // The client promised more body and hung up: there is no request
            // to answer and no stream position to recover — close cleanly.
            return Ok(None);
        }
        remaining -= n;
    }

    Ok(Some(HttpRequest {
        parsed: parse_request_line(request_line).map_err(HttpError::bad),
        keep_alive,
    }))
}

fn find_head_end(head: &[u8]) -> Option<usize> {
    head.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_request_line(line: &str) -> Result<Request, String> {
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().ok_or("malformed request line")?;
    if !matches!(method, "GET" | "POST" | "DELETE") {
        return Err(format!("unsupported method {method:?}"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method: method.to_string(),
        path: percent_decode(path)?,
        params: parse_query(query)?,
    })
}

/// Decodes `a=1&b=two` with `%XX` escapes and `+` for space.
fn parse_query(query: &str) -> Result<Vec<(String, String)>, String> {
    query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            Ok((percent_decode(k)?, percent_decode(v)?))
        })
        .collect()
}

fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("bad percent escape in {s:?}"))?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("escape sequence in {s:?} is not UTF-8"))
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

fn write_response(
    stream: &mut TcpStream,
    response: &ApiResponse,
    keep_alive: bool,
) -> std::io::Result<()> {
    let body = response.body.encode();
    let retry = match response.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
        response.status,
        status_text(response.status),
        body.len(),
        retry,
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A complete one-shot response (always `Connection: close`), for paths
/// that answer without going through the service: accept-queue overload and
/// dequeue-time shedding.
fn plain_response(status: u16, message: &str, retry_after: Option<u64>) -> String {
    let body = Json::obj().set("error", message).encode();
    let retry = match retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{}",
        status,
        status_text(status),
        body.len(),
        retry,
        body
    )
}

fn overload_response() -> String {
    plain_response(503, "server overloaded", Some(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_paths_queries_and_escapes() {
        let r =
            parse_request_line("GET /locate?x=1.5&y=2&dataset=my%20set&z=a+b HTTP/1.1").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/locate");
        assert_eq!(
            r.params,
            vec![
                ("x".to_string(), "1.5".to_string()),
                ("y".to_string(), "2".to_string()),
                ("dataset".to_string(), "my set".to_string()),
                ("z".to_string(), "a b".to_string()),
            ]
        );
        assert_eq!(parse_request_line("GET / HTTP/1.1").unwrap().params, vec![]);
    }

    #[test]
    fn rejects_bad_request_lines() {
        assert!(parse_request_line("PATCH /x HTTP/1.1").is_err());
        assert!(parse_request_line("GET").is_err());
        assert!(parse_request_line("GET /a?x=%zz HTTP/1.1").is_err());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Cb+c").unwrap(), "a,b c");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert!(percent_decode("%f").is_err());
        assert!(percent_decode("%ff").is_err()); // lone continuation byte
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }

    /// Writes raw bytes, half-closes, and returns everything the server
    /// sends back (empty if it just closes).
    fn raw_roundtrip(addr: SocketAddr, payload: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(payload).unwrap();
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn malformed_requests_get_4xx_and_never_wedge_the_worker() {
        // One worker on purpose: if any malformed request panicked or hung
        // it, every later assertion in this test would fail.
        let service = Arc::new(Service::new(crate::engine::Engine::new()));
        let config = ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        };
        let handle = start(service, config).unwrap();
        let addr = handle.addr();

        // Oversized head: rejected before buffering unbounded data.
        let mut huge = b"GET /health HTTP/1.1\r\nX-Filler: ".to_vec();
        huge.resize(20 * 1024, b'a');
        let resp = raw_roundtrip(addr, &huge);
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp:?}");

        // Unparseable Content-Length: 400, not a silent zero (which would
        // misparse the body as the next pipelined request).
        let resp = raw_roundtrip(
            addr,
            b"POST /reload HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp:?}");

        // Declared body over the cap: 413 without reading it.
        let resp = raw_roundtrip(
            addr,
            b"POST /reload HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp:?}");

        // Client hangs up mid-body: clean close, no response.
        let resp = raw_roundtrip(
            addr,
            b"POST /reload HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
        );
        assert_eq!(resp, "");

        // Non-UTF-8 head: 400.
        let resp = raw_roundtrip(addr, b"GET /\xff\xfe HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp:?}");

        // The lone worker survived all of the above and still answers.
        let resp = raw_roundtrip(addr, b"GET /health HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
        handle.shutdown();
    }
}
