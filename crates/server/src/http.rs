//! The HTTP/1.1 transport: a dependency-free server on `std::net`.
//!
//! Design: one accept thread in a non-blocking poll loop (so it can observe
//! the shutdown flag), a **bounded** `sync_channel` of accepted connections,
//! and a fixed pool of worker threads each running a keep-alive connection
//! loop with a per-connection read timeout. When the queue is full the
//! accept thread answers `503` immediately instead of building an invisible
//! backlog — a closed-loop load generator then sees the push-back as
//! latency, an open-loop one as errors.
//!
//! [`ServerHandle::shutdown`] flips the flag, the accept thread exits and
//! drops its channel sender, the workers drain whatever was queued and then
//! stop: graceful by construction, no connection is abandoned mid-response.

use crate::json::Json;
use crate::service::{ApiResponse, Request, Service};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind host (e.g. `127.0.0.1`).
    pub host: String,
    /// Bind port; `0` picks an ephemeral port (see [`ServerHandle::addr`]).
    pub port: u16,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Accepted connections waiting for a worker before `503` push-back.
    pub queue_depth: usize,
    /// Per-connection read timeout (also bounds keep-alive idle time).
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            host: "127.0.0.1".into(),
            port: 0,
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains queued connections, joins all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Binds and starts serving `service`; returns once the listener is live.
pub fn start(service: Arc<Service>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind((config.host.as_str(), config.port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let workers = (0..config.workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&service);
            let read_timeout = config.read_timeout;
            std::thread::spawn(move || worker_loop(&rx, &service, read_timeout))
        })
        .collect();

    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || accept_loop(&listener, &tx, &accept_stop));

    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream)) => {
                    let _ = stream.write_all(overload_response().as_bytes());
                }
                Err(TrySendError::Disconnected(_)) => return,
            },
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping `tx` (by returning) disconnects the channel; workers drain
    // the queue and then exit.
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, service: &Service, read_timeout: Duration) {
    loop {
        // Hold the lock only for the receive, not while serving.
        let stream = match rx.lock().expect("worker queue poisoned").recv() {
            Ok(s) => s,
            Err(_) => return, // channel disconnected: shutdown
        };
        let _ = serve_connection(stream, service, read_timeout);
    }
}

fn serve_connection(
    mut stream: TcpStream,
    service: &Service,
    read_timeout: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_nodelay(true)?;
    loop {
        let request = match read_request(&mut stream)? {
            Some(r) => r,
            None => return Ok(()), // clean close or timeout
        };
        let keep_alive = request.keep_alive;
        let response = match request.parsed {
            Ok(api_request) => service.handle(&api_request),
            Err(message) => ApiResponse {
                status: 400,
                body: Json::obj().set("error", message),
            },
        };
        write_response(&mut stream, &response, keep_alive)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

struct HttpRequest {
    parsed: Result<Request, String>,
    keep_alive: bool,
}

/// Upper bound on request head size; longer heads are rejected.
const MAX_HEAD: usize = 16 * 1024;

fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<HttpRequest>> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD {
            return Ok(Some(HttpRequest {
                parsed: Err("request head too large".into()),
                keep_alive: false,
            }));
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return Ok(None),
            Ok(n) => n,
            Err(e)
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                    && head.is_empty() =>
            {
                return Ok(None); // idle keep-alive connection timed out
            }
            Err(e) => return Err(e),
        };
        head.extend_from_slice(&buf[..n]);
    };

    let head_text = match std::str::from_utf8(&head[..head_end]) {
        Ok(t) => t,
        Err(_) => {
            return Ok(Some(HttpRequest {
                parsed: Err("request head is not UTF-8".into()),
                keep_alive: false,
            }))
        }
    };
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().unwrap_or(0);
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }

    // Consume (and discard) any body so the next keep-alive request starts
    // at a message boundary. The API carries its inputs in the query string.
    let already = head.len() - (head_end + 4);
    let mut remaining = content_length.saturating_sub(already);
    while remaining > 0 {
        let take = remaining.min(buf.len());
        let n = stream.read(&mut buf[..take])?;
        if n == 0 {
            break;
        }
        remaining -= n;
    }

    Ok(Some(HttpRequest {
        parsed: parse_request_line(request_line),
        keep_alive,
    }))
}

fn find_head_end(head: &[u8]) -> Option<usize> {
    head.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_request_line(line: &str) -> Result<Request, String> {
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().ok_or("malformed request line")?;
    if !matches!(method, "GET" | "POST") {
        return Err(format!("unsupported method {method:?}"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method: method.to_string(),
        path: percent_decode(path)?,
        params: parse_query(query)?,
    })
}

/// Decodes `a=1&b=two` with `%XX` escapes and `+` for space.
fn parse_query(query: &str) -> Result<Vec<(String, String)>, String> {
    query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            Ok((percent_decode(k)?, percent_decode(v)?))
        })
        .collect()
}

fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("bad percent escape in {s:?}"))?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("escape sequence in {s:?} is not UTF-8"))
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

fn write_response(
    stream: &mut TcpStream,
    response: &ApiResponse,
    keep_alive: bool,
) -> std::io::Result<()> {
    let body = response.body.encode();
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        status_text(response.status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn overload_response() -> String {
    let body = Json::obj().set("error", "server overloaded").encode();
    format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_paths_queries_and_escapes() {
        let r =
            parse_request_line("GET /locate?x=1.5&y=2&dataset=my%20set&z=a+b HTTP/1.1").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/locate");
        assert_eq!(
            r.params,
            vec![
                ("x".to_string(), "1.5".to_string()),
                ("y".to_string(), "2".to_string()),
                ("dataset".to_string(), "my set".to_string()),
                ("z".to_string(), "a b".to_string()),
            ]
        );
        assert_eq!(parse_request_line("GET / HTTP/1.1").unwrap().params, vec![]);
    }

    #[test]
    fn rejects_bad_request_lines() {
        assert!(parse_request_line("DELETE /x HTTP/1.1").is_err());
        assert!(parse_request_line("GET").is_err());
        assert!(parse_request_line("GET /a?x=%zz HTTP/1.1").is_err());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Cb+c").unwrap(), "a,b c");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert!(percent_decode("%f").is_err());
        assert!(percent_decode("%ff").is_err()); // lone continuation byte
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }
}
