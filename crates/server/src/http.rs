//! The HTTP/1.1 transports: dependency-free servers on `std::net`.
//!
//! Two interchangeable transports serve the same [`Service`] dispatch and
//! speak the same wire protocol (shared in [`crate::proto`]):
//!
//! * **Pool** (this module): one accept thread in a non-blocking poll loop
//!   (so it can observe the shutdown flag), a **bounded** `sync_channel` of
//!   accepted connections, and a fixed pool of worker threads each running
//!   a keep-alive connection loop with a per-connection read timeout. When
//!   the queue is full the accept thread answers `503` immediately instead
//!   of building an invisible backlog — a closed-loop load generator then
//!   sees the push-back as latency, an open-loop one as errors.
//! * **Epoll** ([`crate::epoll`], Linux only): a readiness event loop over
//!   [`molq_net`] that multiplexes thousands of connections onto one
//!   reactor thread plus the same fixed pool of compute workers. Selected
//!   with [`ServerConfig::transport`], the `--transport` CLI flag, or the
//!   `MOLQ_TRANSPORT` environment variable.
//!
//! [`ServerHandle::shutdown`] flips the flag, wakes the transport, and
//! joins its threads: graceful by construction, no connection is abandoned
//! mid-response.
//!
//! Resilience at this layer (both transports):
//!
//! * **Deadline-aware shedding.** Queued work is stamped on arrival; a
//!   worker that dequeues something already older than the service's
//!   request timeout answers `503` + `Retry-After` immediately (the
//!   evaluation would only have timed out anyway) and moves on.
//! * **Worker respawn.** The pool runs under a supervisor thread that joins
//!   and replaces any worker that dies — handler panics are already caught
//!   per-request in the service layer, so a dead worker means a panic in the
//!   transport itself (or the `http.worker` fault point).
//! * **Malformed input.** Oversized heads, unparseable or oversized
//!   `Content-Length`, and clients that vanish mid-body all end in a `4xx`
//!   or a clean close — never a panic, never a wedged worker.

use crate::metrics::{ResilienceMetrics, TransportMetrics};
use crate::proto::{self, ParseOutcome};
use crate::service::Service;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which socket layer carries requests to the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Thread-per-connection worker pool (portable; the default).
    #[default]
    Pool,
    /// Readiness event loop on `epoll` (Linux only).
    Epoll,
}

impl Transport {
    /// Parses `"pool"` / `"epoll"`.
    pub fn parse(s: &str) -> Option<Transport> {
        match s {
            "pool" => Some(Transport::Pool),
            "epoll" => Some(Transport::Epoll),
            _ => None,
        }
    }

    /// Reads the `MOLQ_TRANSPORT` environment variable, so the full test
    /// suite can run under either transport without editing call sites.
    pub fn from_env() -> Option<Transport> {
        std::env::var("MOLQ_TRANSPORT")
            .ok()
            .and_then(|v| Transport::parse(v.trim()))
    }

    /// The transport's display name.
    pub fn name(self) -> &'static str {
        match self {
            Transport::Pool => "pool",
            Transport::Epoll => "epoll",
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind host (e.g. `127.0.0.1`).
    pub host: String,
    /// Bind port; `0` picks an ephemeral port (see [`ServerHandle::addr`]).
    pub port: u16,
    /// Worker threads handling connections (pool) or compute jobs (epoll).
    pub workers: usize,
    /// Accepted connections (pool) / parsed requests (epoll) waiting for a
    /// worker before `503` push-back.
    pub queue_depth: usize,
    /// Per-connection read timeout (also bounds keep-alive idle time).
    pub read_timeout: Duration,
    /// Which socket layer to run. Defaults to [`Transport::Pool`] unless
    /// the `MOLQ_TRANSPORT` environment variable overrides it.
    pub transport: Transport,
    /// Open-connection cap for the epoll transport (beyond it, new
    /// connections get the overload `503`). The pool transport's cap is
    /// implicit: `workers + queue_depth`.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            host: "127.0.0.1".into(),
            port: 0,
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            transport: Transport::from_env().unwrap_or_default(),
            max_connections: 4096,
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    pub(crate) addr: SocketAddr,
    pub(crate) stop: Arc<AtomicBool>,
    /// Transport-specific nudge that interrupts a blocked wait so the stop
    /// flag is observed promptly (the epoll loop's waker; `None` for the
    /// pool, whose accept loop polls).
    pub(crate) wake: Option<Box<dyn Fn() + Send>>,
    /// Every thread the transport owns, joined on shutdown.
    pub(crate) threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains queued work, joins all transport threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(wake) = self.wake.take() {
            wake();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// A connection waiting for a worker, stamped so staleness is observable
/// at dequeue.
struct QueuedConn {
    stream: TcpStream,
    accepted_at: Instant,
}

/// Binds and starts serving `service` on the configured transport; returns
/// once the listener is live.
pub fn start(service: Arc<Service>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    match config.transport {
        Transport::Pool => start_pool(service, config),
        #[cfg(target_os = "linux")]
        Transport::Epoll => crate::epoll::start(service, config),
        #[cfg(not(target_os = "linux"))]
        Transport::Epoll => Err(std::io::Error::new(
            ErrorKind::Unsupported,
            "the epoll transport requires Linux; use --transport pool",
        )),
    }
}

/// The thread-per-connection pool transport.
fn start_pool(service: Arc<Service>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind((config.host.as_str(), config.port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    service.metrics().transport.kind.store(1, Ordering::Relaxed);

    let (tx, rx) = mpsc::sync_channel::<QueuedConn>(config.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let supervisor = {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let count = config.workers.max(1);
        let read_timeout = config.read_timeout;
        std::thread::spawn(move || supervise_workers(count, &rx, &service, &stop, read_timeout))
    };

    let accept_stop = Arc::clone(&stop);
    let accept_thread =
        std::thread::spawn(move || accept_loop(&listener, &tx, &service, &accept_stop));

    Ok(ServerHandle {
        addr,
        stop,
        wake: None,
        threads: vec![accept_thread, supervisor],
    })
}

fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<QueuedConn>,
    service: &Service,
    stop: &AtomicBool,
) {
    let transport = &service.metrics().transport;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                ResilienceMetrics::bump(&transport.accepted);
                let conn = QueuedConn {
                    stream,
                    accepted_at: Instant::now(),
                };
                match tx.try_send(conn) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut conn)) => {
                        ResilienceMetrics::bump(&transport.overload_shed);
                        let _ = conn.stream.write_all(proto::overload_response().as_bytes());
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping `tx` (by returning) disconnects the channel; workers drain
    // the queue and then exit.
}

/// Runs the worker pool under supervision: any worker whose thread finishes
/// while the server is live (i.e. it died — normal exit only happens at
/// shutdown, after the stop flag is set) is joined and replaced, so the pool
/// never stays below capacity.
fn supervise_workers(
    count: usize,
    rx: &Arc<Mutex<Receiver<QueuedConn>>>,
    service: &Arc<Service>,
    stop: &AtomicBool,
    read_timeout: Duration,
) {
    let spawn = || {
        let rx = Arc::clone(rx);
        let service = Arc::clone(service);
        std::thread::spawn(move || worker_loop(&rx, &service, read_timeout))
    };
    let mut workers: Vec<JoinHandle<()>> = (0..count).map(|_| spawn()).collect();
    loop {
        if stop.load(Ordering::SeqCst) {
            // Shutdown: workers exit once the queue disconnects and drains.
            for w in workers {
                let _ = w.join();
            }
            return;
        }
        for slot in workers.iter_mut() {
            if slot.is_finished() {
                let dead = std::mem::replace(slot, spawn());
                let _ = dead.join(); // reap; the panic payload is dropped
                ResilienceMetrics::bump(&service.metrics().resilience.workers_respawned);
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn worker_loop(rx: &Mutex<Receiver<QueuedConn>>, service: &Service, read_timeout: Duration) {
    let shed_after = service.config().request_timeout;
    loop {
        // Hold the lock only for the receive, not while serving.
        let conn = match rx.lock().expect("worker queue poisoned").recv() {
            Ok(c) => c,
            Err(_) => return, // channel disconnected: shutdown
        };
        // Deadline-aware shedding: a connection that queued longer than the
        // request timeout would only time out downstream — fail it fast and
        // tell the client when to come back.
        if conn.accepted_at.elapsed() > shed_after {
            ResilienceMetrics::bump(&service.metrics().resilience.queue_shed);
            let mut stream = conn.stream;
            let _ = stream.write_all(proto::shed_response().as_bytes());
            continue;
        }
        // Fault point *outside* the service layer's panic isolation: arming
        // `http.worker=panic` kills this worker and exercises pool respawn.
        if let Err(e) = crate::fault::fail_point("http.worker") {
            eprintln!("molq-server: worker fault injected: {e}");
        }
        let _ = serve_connection(conn.stream, service, read_timeout);
    }
}

fn serve_connection(
    mut stream: TcpStream,
    service: &Service,
    read_timeout: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_nodelay(true)?;
    let transport = &service.metrics().transport;
    ResilienceMetrics::bump(&transport.open_connections);
    let result = serve_parsed(&mut stream, service);
    TransportMetrics::dec(&transport.open_connections);
    result
}

/// The keep-alive request loop over the shared incremental parser. The
/// buffer persists across requests, so pipelined messages left after one
/// response are answered on the next iteration instead of being dropped.
fn serve_parsed(stream: &mut TcpStream, service: &Service) -> std::io::Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let (request, consumed) = loop {
            match proto::try_parse(&buf) {
                ParseOutcome::Ready { request, consumed } => break (request, consumed),
                ParseOutcome::Incomplete => {}
            }
            let n = match stream.read(&mut chunk) {
                // EOF: a clean close between messages, or a client that
                // promised more bytes and hung up — either way there is no
                // request to answer and no stream position to recover.
                Ok(0) => return Ok(()),
                Ok(n) => n,
                Err(e)
                    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                        && buf.is_empty() =>
                {
                    return Ok(()); // idle keep-alive connection timed out
                }
                Err(e) => return Err(e),
            };
            buf.extend_from_slice(&chunk[..n]);
        };
        buf.drain(..consumed);
        let keep_alive = request.keep_alive;
        let response = match request.parsed {
            Ok(api_request) => service.handle(&api_request),
            Err(e) => e.to_response(),
        };
        stream.write_all(&proto::render_response(&response, keep_alive))?;
        stream.flush()?;
        if !keep_alive {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Writes raw bytes, half-closes, and returns everything the server
    /// sends back (empty if it just closes).
    fn raw_roundtrip(addr: SocketAddr, payload: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(payload).unwrap();
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn malformed_requests_get_4xx_and_never_wedge_the_worker() {
        // One worker on purpose: if any malformed request panicked or hung
        // it, every later assertion in this test would fail.
        let service = Arc::new(Service::new(crate::engine::Engine::new()));
        let config = ServerConfig {
            workers: 1,
            transport: Transport::Pool,
            ..ServerConfig::default()
        };
        let handle = start(service, config).unwrap();
        let addr = handle.addr();

        // Oversized head: rejected before buffering unbounded data.
        let mut huge = b"GET /health HTTP/1.1\r\nX-Filler: ".to_vec();
        huge.resize(20 * 1024, b'a');
        let resp = raw_roundtrip(addr, &huge);
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp:?}");

        // Unparseable Content-Length: 400, not a silent zero (which would
        // misparse the body as the next pipelined request).
        let resp = raw_roundtrip(
            addr,
            b"POST /reload HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp:?}");

        // Declared body over the cap: 413 without reading it.
        let resp = raw_roundtrip(
            addr,
            b"POST /reload HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp:?}");

        // Client hangs up mid-body: clean close, no response.
        let resp = raw_roundtrip(
            addr,
            b"POST /reload HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
        );
        assert_eq!(resp, "");

        // Non-UTF-8 head: 400.
        let resp = raw_roundtrip(addr, b"GET /\xff\xfe HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp:?}");

        // The lone worker survived all of the above and still answers.
        let resp = raw_roundtrip(addr, b"GET /health HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
        handle.shutdown();
    }

    #[test]
    fn transport_parses_names_and_defaults_to_pool() {
        assert_eq!(Transport::parse("pool"), Some(Transport::Pool));
        assert_eq!(Transport::parse("epoll"), Some(Transport::Epoll));
        assert_eq!(Transport::parse("iocp"), None);
        assert_eq!(Transport::Pool.name(), "pool");
        assert_eq!(Transport::Epoll.name(), "epoll");
        assert_eq!(Transport::default(), Transport::Pool);
    }
}
