//! Runtime-armed fault injection for resilience testing.
//!
//! The serving stack claims to survive handler panics, slow queries,
//! snapshot read corruption, and failing rebuilds; this module makes those
//! claims testable. Code under test declares **fault points** — named
//! checkpoints like [`fail_point`]`("engine.rebuild")` — that are free when
//! nothing is armed (one relaxed atomic load). Tests and operators arm
//! faults at runtime with a spec string, either programmatically
//! ([`arm_spec`]) or through the `MOLQ_FAULTS` environment variable
//! ([`arm_from_env`], read by `molq serve`).
//!
//! ## Spec grammar
//!
//! Comma-separated rules, each `point=action[*count]`:
//!
//! * `service.handle=panic` — panic at the point (every time),
//! * `http.worker=panic*2` — panic the first 2 times, then disarm,
//! * `service.slow=sleep:250` — sleep 250 ms at the point,
//! * `engine.rebuild=fail:disk on fire*3` — fail with that message 3 times.
//!
//! ## Fault points
//!
//! | point                  | effect when armed                                        |
//! |------------------------|----------------------------------------------------------|
//! | `service.handle`       | fires inside the request handler (panics are caught → 500) |
//! | `service.slow`         | `sleep:MS` throttles every cancellation checkpoint of one request |
//! | `http.worker`          | fires in the connection loop *outside* panic isolation (kills the worker → pool respawn) |
//! | `engine.rebuild`       | fails a dataset rebuild (feeds the circuit breaker)      |
//! | `engine.snapshot_read` | makes a snapshot restore behave as corrupt (falls back to CSV rebuild) |
//! | `engine.apply_update`  | rejects a live insert/delete before it touches the journal (counted as `rejected`) |
//! | `engine.journal_append` | fails the write-ahead append of a live update (answered `507`, counted under `durability.append_failures`, `/health` degrades) |
//! | `engine.snapshot_save` | fails one snapshot save attempt (retried with backoff; exhausting the retries degrades `/health`) |
//!
//! The registry is process-global; tests that arm faults should run
//! sequentially (the chaos e2e test is a single `#[test]`) and call
//! [`disarm_all`] when done.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed fault does when its point is reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a message naming the point.
    Panic,
    /// Sleep for the duration (callers may instead interpret the duration,
    /// e.g. as a per-checkpoint throttle).
    Sleep(Duration),
    /// Fail with this error message.
    Fail(String),
}

#[derive(Debug, Clone)]
struct FaultRule {
    action: FaultAction,
    /// Remaining triggers; `None` = unlimited.
    remaining: Option<u64>,
}

#[derive(Default)]
struct Registry {
    rules: HashMap<String, FaultRule>,
    /// Total triggers per point (kept after disarm, for test assertions).
    fired: HashMap<String, u64>,
}

/// Number of armed rules — the hot-path gate: when zero, [`take`] returns
/// without touching the registry lock.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(Mutex::default)
}

/// Arms faults from a spec string (see module docs for the grammar);
/// rules for the same point replace each other.
pub fn arm_spec(spec: &str) -> Result<(), String> {
    let mut parsed = Vec::new();
    for rule in spec.split(',').filter(|r| !r.trim().is_empty()) {
        let (point, action) = rule
            .split_once('=')
            .ok_or_else(|| format!("fault rule {rule:?} is not point=action"))?;
        let (action, count) = match action.rsplit_once('*') {
            Some((a, n)) => (
                a,
                Some(
                    n.parse::<u64>()
                        .map_err(|e| format!("fault rule {rule:?}: count: {e}"))?,
                ),
            ),
            None => (action, None),
        };
        let action = match action.split_once(':') {
            None if action == "panic" => FaultAction::Panic,
            Some(("sleep", ms)) => FaultAction::Sleep(Duration::from_millis(
                ms.parse()
                    .map_err(|e| format!("fault rule {rule:?}: sleep: {e}"))?,
            )),
            Some(("fail", msg)) => FaultAction::Fail(msg.to_string()),
            _ => return Err(format!("fault rule {rule:?}: unknown action")),
        };
        parsed.push((
            point.trim().to_string(),
            FaultRule {
                action,
                remaining: count,
            },
        ));
    }
    let mut reg = registry().lock().expect("fault registry poisoned");
    for (point, rule) in parsed {
        reg.rules.insert(point, rule);
    }
    ARMED.store(reg.rules.len(), Ordering::SeqCst);
    Ok(())
}

/// Arms faults from the `MOLQ_FAULTS` environment variable, if set.
/// Returns the spec that was armed, if any.
pub fn arm_from_env() -> Result<Option<String>, String> {
    match std::env::var("MOLQ_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            arm_spec(&spec)?;
            Ok(Some(spec))
        }
        _ => Ok(None),
    }
}

/// Disarms every fault (trigger counts are kept).
pub fn disarm_all() {
    let mut reg = registry().lock().expect("fault registry poisoned");
    reg.rules.clear();
    ARMED.store(0, Ordering::SeqCst);
}

/// How many times a point has fired since process start.
pub fn fired(point: &str) -> u64 {
    let reg = registry().lock().expect("fault registry poisoned");
    reg.fired.get(point).copied().unwrap_or(0)
}

/// Consumes one trigger of the fault armed at `point` (if any) and returns
/// its action *without* executing it — for call sites that interpret the
/// action themselves (e.g. turning a `Sleep` into a checkpoint throttle).
pub fn take(point: &str) -> Option<FaultAction> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let mut reg = registry().lock().expect("fault registry poisoned");
    let rule = reg.rules.get_mut(point)?;
    let action = rule.action.clone();
    let exhausted = match &mut rule.remaining {
        None => false,
        Some(n) => {
            *n -= 1;
            *n == 0
        }
    };
    if exhausted {
        reg.rules.remove(point);
    }
    ARMED.store(reg.rules.len(), Ordering::SeqCst);
    *reg.fired.entry(point.to_string()).or_insert(0) += 1;
    Some(action)
}

/// Executes the fault armed at `point`, if any: panics, sleeps, or returns
/// the injected error. The no-fault fast path is one relaxed atomic load.
pub fn fail_point(point: &str) -> Result<(), String> {
    match take(point) {
        None => Ok(()),
        Some(FaultAction::Panic) => panic!("fault injected: {point}"),
        Some(FaultAction::Sleep(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(FaultAction::Fail(msg)) => Err(msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so this module's tests all run inside
    // one #[test] to avoid cross-test interference under the parallel runner.
    #[test]
    fn spec_parsing_arming_and_counting() {
        disarm_all();
        assert_eq!(take("t.unarmed"), None);
        assert!(fail_point("t.unarmed").is_ok());

        // Parse errors name the offending rule.
        assert!(arm_spec("nonsense").is_err());
        assert!(arm_spec("p=explode").is_err());
        assert!(arm_spec("p=sleep:abc").is_err());
        assert!(arm_spec("p=panic*x").is_err());

        // Counted rule: fires exactly twice, then disarms.
        arm_spec("t.fail=fail:boom*2").unwrap();
        assert_eq!(fail_point("t.fail"), Err("boom".to_string()));
        assert_eq!(fail_point("t.fail"), Err("boom".to_string()));
        assert!(fail_point("t.fail").is_ok());
        assert_eq!(fired("t.fail"), 2);

        // Sleep action actually sleeps.
        arm_spec("t.slow=sleep:20*1").unwrap();
        let start = std::time::Instant::now();
        assert!(fail_point("t.slow").is_ok());
        assert!(start.elapsed() >= Duration::from_millis(15));

        // take() hands the action out without executing it (no panic here).
        arm_spec("t.boom=panic").unwrap();
        assert_eq!(take("t.boom"), Some(FaultAction::Panic));
        // Unlimited rules stay armed.
        assert_eq!(take("t.boom"), Some(FaultAction::Panic));
        disarm_all();
        assert_eq!(take("t.boom"), None);

        // Env arming: empty/missing is a no-op.
        std::env::remove_var("MOLQ_FAULTS");
        assert_eq!(arm_from_env().unwrap(), None);
    }
}
