//! The epoll transport: a readiness event loop over [`molq_net`].
//!
//! One reactor thread owns the listener, the [`molq_net::Poller`], and
//! every connection's state machine; a fixed pool of compute workers (same
//! width as the pool transport's) runs the actual [`Service`] dispatch.
//! The reactor never blocks on a socket: reads and writes go until
//! `WouldBlock` and the level-triggered poller re-notifies when the fd is
//! ready again, so thousands of mostly-idle keep-alive connections cost
//! one fd and a slab slot each instead of a parked thread.
//!
//! Data flow per request:
//!
//! 1. readable event → drain the socket into the connection buffer →
//!    [`crate::proto::try_parse`];
//! 2. a complete message → a `Job` on the **bounded** job queue (full queue
//!    → the same `503 server overloaded` push-back the pool transport's
//!    accept queue gives) → connection goes `Busy`;
//! 3. a worker dequeues, sheds if the job already waited past the request
//!    timeout (`503` + `Retry-After`, exactly the pool's dequeue-time
//!    shedding), otherwise dispatches and renders; the completion bytes go
//!    on a queue and the [`molq_net::Waker`] nudges the reactor;
//! 4. the reactor copies the bytes into the connection's write buffer and
//!    flushes until `WouldBlock`, arming writable interest for the rest.
//!
//! Responses are produced by the same [`crate::proto`] renderer the pool
//! transport uses, so the two transports are byte-compatible, and the
//! `http.worker` fault point runs in the compute workers under the same
//! supervisor-respawn scheme. Connections wedged by a lost job (a worker
//! died mid-request) are reaped by the periodic sweep rather than leaking
//! their slab slot.

use crate::metrics::{ResilienceMetrics, TransportMetrics};
use crate::proto::{self, ParseOutcome};
use crate::service::{Request, Service};
use molq_net::{Event, Interest, Poller, Waker};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http::{ServerConfig, ServerHandle};

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
/// Connection tokens are `slot + TOKEN_BASE`.
const TOKEN_BASE: u64 = 2;

/// Reactor tick: bounds sweep latency and stop-flag observation.
const TICK: Duration = Duration::from_millis(100);

/// Per-connection inbound buffer cap: one maximal message plus pipelined
/// slack. Beyond this the client is flooding and the connection closes.
const MAX_CONN_BUF: usize = proto::MAX_HEAD + proto::MAX_BODY + 64 * 1024;

/// A parsed request waiting for a compute worker.
struct Job {
    slot: usize,
    generation: u64,
    request: Request,
    keep_alive: bool,
    queued_at: Instant,
}

/// A rendered response travelling back to the reactor.
struct Completion {
    slot: usize,
    generation: u64,
    bytes: Vec<u8>,
    keep_alive: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ConnState {
    /// Accumulating bytes towards a complete request.
    Reading,
    /// A job for this connection is queued or running since the stamped
    /// instant (which lets the sweep reap connections whose job was lost
    /// to a dead worker).
    Busy(Instant),
    /// Flushing the write buffer; then keep the connection or close it.
    Writing {
        /// Return to `Reading` after the flush, or close.
        keep_alive: bool,
    },
}

struct Conn {
    stream: TcpStream,
    /// Unparsed inbound bytes (persists across requests: pipelining).
    buf: Vec<u8>,
    /// Pending outbound bytes and how far they are flushed.
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    /// Stamped at slot allocation; completions carry it so a response for a
    /// closed-and-reused slot is recognized as stale and dropped.
    generation: u64,
    last_activity: Instant,
    interest: Interest,
    /// The peer sent EOF; serve what is in flight, then close.
    peer_closed: bool,
}

/// Starts the epoll transport. Called via [`crate::http::start`] when
/// [`ServerConfig::transport`] selects [`crate::http::Transport::Epoll`].
pub(crate) fn start(service: Arc<Service>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind((config.host.as_str(), config.port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let waker = Arc::new(Waker::new()?);
    service.metrics().transport.kind.store(2, Ordering::Relaxed);

    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
    let job_rx = Arc::new(Mutex::new(job_rx));
    let completions = Arc::new(Mutex::new(VecDeque::<Completion>::new()));

    let supervisor = {
        let job_rx = Arc::clone(&job_rx);
        let completions = Arc::clone(&completions);
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let waker = Arc::clone(&waker);
        let count = config.workers.max(1);
        std::thread::spawn(move || {
            supervise_compute_workers(count, &job_rx, &completions, &service, &stop, &waker)
        })
    };

    // Built before the thread spawns so bind/register errors surface here.
    let mut reactor = Reactor::new(
        listener,
        service,
        config,
        Arc::clone(&waker),
        completions,
        job_tx,
    )?;
    let reactor_stop = Arc::clone(&stop);
    let reactor_thread = std::thread::spawn(move || reactor.run(&reactor_stop));

    let wake_handle = Arc::clone(&waker);
    Ok(ServerHandle {
        addr,
        stop,
        wake: Some(Box::new(move || wake_handle.wake())),
        threads: vec![reactor_thread, supervisor],
    })
}

/// Same supervision scheme as the pool transport: a compute worker that
/// dies (the `http.worker` fault point, or a transport bug) is joined and
/// replaced while the server is live.
fn supervise_compute_workers(
    count: usize,
    job_rx: &Arc<Mutex<Receiver<Job>>>,
    completions: &Arc<Mutex<VecDeque<Completion>>>,
    service: &Arc<Service>,
    stop: &AtomicBool,
    waker: &Arc<Waker>,
) {
    let spawn = || {
        let job_rx = Arc::clone(job_rx);
        let completions = Arc::clone(completions);
        let service = Arc::clone(service);
        let waker = Arc::clone(waker);
        std::thread::spawn(move || compute_worker(&job_rx, &completions, &service, &waker))
    };
    let mut workers: Vec<JoinHandle<()>> = (0..count).map(|_| spawn()).collect();
    loop {
        if stop.load(Ordering::SeqCst) {
            for w in workers {
                let _ = w.join();
            }
            return;
        }
        for slot in workers.iter_mut() {
            if slot.is_finished() {
                let dead = std::mem::replace(slot, spawn());
                let _ = dead.join();
                ResilienceMetrics::bump(&service.metrics().resilience.workers_respawned);
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn compute_worker(
    job_rx: &Mutex<Receiver<Job>>,
    completions: &Mutex<VecDeque<Completion>>,
    service: &Service,
    waker: &Waker,
) {
    let shed_after = service.config().request_timeout;
    let transport = &service.metrics().transport;
    loop {
        let job = match job_rx.lock().expect("job queue poisoned").recv() {
            Ok(j) => j,
            Err(_) => return, // disconnected: shutdown
        };
        TransportMetrics::dec(&transport.ready_queue_depth);
        let (bytes, keep_alive) = if job.queued_at.elapsed() > shed_after {
            // Deadline-aware shedding, identical to the pool's dequeue path.
            ResilienceMetrics::bump(&service.metrics().resilience.queue_shed);
            (proto::shed_response().into_bytes(), false)
        } else {
            // Fault point outside the service layer's panic isolation:
            // arming `http.worker=panic` kills this worker and exercises
            // respawn (the job's connection is reaped by the sweep).
            if let Err(e) = crate::fault::fail_point("http.worker") {
                eprintln!("molq-server: worker fault injected: {e}");
            }
            let response = service.handle(&job.request);
            (
                proto::render_response(&response, job.keep_alive),
                job.keep_alive,
            )
        };
        completions
            .lock()
            .expect("completion queue poisoned")
            .push_back(Completion {
                slot: job.slot,
                generation: job.generation,
                bytes,
                keep_alive,
            });
        waker.wake();
    }
}

struct Reactor {
    listener: TcpListener,
    service: Arc<Service>,
    config: ServerConfig,
    poller: Poller,
    waker: Arc<Waker>,
    completions: Arc<Mutex<VecDeque<Completion>>>,
    job_tx: SyncSender<Job>,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    next_generation: u64,
    shutting_down: bool,
    /// Last timeout sweep, so the O(slab) reap runs once per [`TICK`]
    /// rather than once per event batch (a busy reactor loops far more
    /// often than it times out).
    last_sweep: Instant,
    /// Parsed jobs waiting for space on the (bounded) worker channel. Each
    /// live connection contributes at most one job, so this queue is
    /// bounded by `max_connections` — overload past that is already shed
    /// at accept. Jobs that out-wait the request timeout are shed by the
    /// dequeuing worker (`503` + `Retry-After`), so parking here converts
    /// what would be connection-close churn into observable queueing delay.
    ready: VecDeque<Job>,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        service: Arc<Service>,
        config: ServerConfig,
        waker: Arc<Waker>,
        completions: Arc<Mutex<VecDeque<Completion>>>,
        job_tx: SyncSender<Job>,
    ) -> std::io::Result<Reactor> {
        let poller = Poller::new(config.max_connections.clamp(64, 1024))?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        poller.register(waker.fd(), WAKER_TOKEN, Interest::READ)?;
        Ok(Reactor {
            listener,
            service,
            config,
            poller,
            waker,
            completions,
            job_tx,
            slab: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_generation: 0,
            shutting_down: false,
            last_sweep: Instant::now(),
            ready: VecDeque::new(),
        })
    }

    fn run(&mut self, stop: &AtomicBool) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            events.clear();
            if let Err(e) = self.poller.wait(&mut events, Some(TICK)) {
                eprintln!("molq-server: epoll wait failed: {e}");
                return;
            }
            for ev in events.drain(..) {
                match ev.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.waker.drain(),
                    token => self.conn_ready((token - TOKEN_BASE) as usize, ev),
                }
            }
            self.drain_completions();
            self.pump_ready();
            if self.last_sweep.elapsed() >= TICK {
                self.sweep();
                self.last_sweep = Instant::now();
            }
            if stop.load(Ordering::SeqCst) {
                if !self.shutting_down {
                    self.shutting_down = true;
                    let _ = self.poller.deregister(self.listener.as_raw_fd());
                    // Connections with no request in flight close now; Busy
                    // and Writing ones drain first (graceful, like the pool).
                    for slot in 0..self.slab.len() {
                        let idle = matches!(
                            &self.slab[slot],
                            Some(c) if c.state == ConnState::Reading
                        );
                        if idle {
                            self.close(slot);
                        }
                    }
                }
                if self.live == 0 {
                    return; // dropping job_tx disconnects the workers
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        if self.shutting_down {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    let transport = &self.service.metrics().transport;
                    ResilienceMetrics::bump(&transport.accepted);
                    if self.live >= self.config.max_connections.max(1) {
                        ResilienceMetrics::bump(&transport.overload_shed);
                        let _ = stream.write_all(proto::overload_response().as_bytes());
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let fd = stream.as_raw_fd();
                    let slot = self.alloc_slot();
                    self.next_generation += 1;
                    self.slab[slot] = Some(Conn {
                        stream,
                        buf: Vec::new(),
                        out: Vec::new(),
                        out_pos: 0,
                        state: ConnState::Reading,
                        generation: self.next_generation,
                        last_activity: Instant::now(),
                        interest: Interest::READ,
                        peer_closed: false,
                    });
                    if self
                        .poller
                        .register(fd, TOKEN_BASE + slot as u64, Interest::READ)
                        .is_err()
                    {
                        self.slab[slot] = None;
                        self.free.push(slot);
                        continue;
                    }
                    self.live += 1;
                    ResilienceMetrics::bump(&self.service.metrics().transport.open_connections);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn alloc_slot(&mut self) -> usize {
        match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slab.push(None);
                self.slab.len() - 1
            }
        }
    }

    fn conn_ready(&mut self, slot: usize, ev: Event) {
        if self.slab.get(slot).and_then(Option::as_ref).is_none() {
            return; // already closed earlier this tick
        }
        if ev.hangup {
            self.close(slot);
            return;
        }
        if ev.readable {
            if !self.read_ready(slot) {
                return; // connection closed during the read
            }
            self.try_dispatch(slot);
            // A vanished client with no complete message buffered has
            // nothing left to answer: close.
            let vanished = matches!(
                self.slab.get(slot).and_then(Option::as_ref),
                Some(c) if c.peer_closed && c.state == ConnState::Reading
            );
            if vanished {
                self.close(slot);
                return;
            }
        }
        if ev.writable {
            self.flush(slot);
        }
    }

    /// Drains the socket until `WouldBlock` or EOF. Returns `false` when
    /// the connection was closed.
    fn read_ready(&mut self, slot: usize) -> bool {
        let mut chunk = [0u8; 4096];
        loop {
            let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
                return false;
            };
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    // EOF is level-persistent: disarm read interest so the
                    // poller stops re-reporting it.
                    let interest = Interest {
                        readable: false,
                        writable: conn.interest.writable,
                    };
                    self.set_interest(slot, interest);
                    return true;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    if conn.buf.len() > MAX_CONN_BUF {
                        self.close(slot); // flooding
                        return false;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if !conn.buf.is_empty() && conn.state == ConnState::Reading {
                        ResilienceMetrics::bump(&self.service.metrics().transport.read_stalls);
                    }
                    return true;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return false;
                }
            }
        }
    }

    /// Parses and dispatches at most one request (responses must be written
    /// in order, so a connection runs one job at a time; further pipelined
    /// requests stay buffered until the response flushes).
    fn try_dispatch(&mut self, slot: usize) {
        let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.state != ConnState::Reading {
            return;
        }
        let (request, consumed) = match proto::try_parse(&conn.buf) {
            ParseOutcome::Incomplete => return,
            ParseOutcome::Ready { request, consumed } => (request, consumed),
        };
        conn.buf.drain(..consumed);
        match request.parsed {
            Err(e) => {
                // Protocol rejection: answered by the reactor, no worker.
                let bytes = proto::render_response(&e.to_response(), false);
                self.queue_out(slot, bytes, false);
            }
            Ok(api_request) => {
                let job = Job {
                    slot,
                    generation: conn.generation,
                    request: api_request,
                    keep_alive: request.keep_alive,
                    queued_at: Instant::now(),
                };
                conn.state = ConnState::Busy(Instant::now());
                ResilienceMetrics::bump(&self.service.metrics().transport.ready_queue_depth);
                match self.job_tx.try_send(job) {
                    Ok(()) => {}
                    Err(TrySendError::Full(job)) => {
                        // Worker channel full: park the job on the reactor's
                        // ready queue instead of shedding — a momentarily
                        // saturated pool is queueing delay, not overload
                        // (jobs that wait past the request timeout still get
                        // the worker-side shed `503`).
                        self.ready.push_back(job);
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        TransportMetrics::dec(&self.service.metrics().transport.ready_queue_depth);
                        let bytes = proto::overload_response().into_bytes();
                        self.queue_out(slot, bytes, false);
                    }
                }
            }
        }
    }

    /// Moves parked jobs onto the worker channel as capacity frees up
    /// (workers wake the reactor per completion, so this runs at least once
    /// per finished request). Jobs whose connection died in the meantime
    /// are dropped here.
    fn pump_ready(&mut self) {
        while let Some(job) = self.ready.pop_front() {
            let stale = !matches!(
                self.slab.get(job.slot).and_then(Option::as_ref),
                Some(conn) if conn.generation == job.generation
            );
            if stale {
                TransportMetrics::dec(&self.service.metrics().transport.ready_queue_depth);
                continue;
            }
            match self.job_tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(job)) => {
                    self.ready.push_front(job);
                    return;
                }
                Err(TrySendError::Disconnected(job)) => {
                    TransportMetrics::dec(&self.service.metrics().transport.ready_queue_depth);
                    let bytes = proto::overload_response().into_bytes();
                    self.queue_out(job.slot, bytes, false);
                }
            }
        }
    }

    fn drain_completions(&mut self) {
        loop {
            let completion = self
                .completions
                .lock()
                .expect("completion queue poisoned")
                .pop_front();
            let Some(c) = completion else { return };
            let stale = !matches!(
                self.slab.get(c.slot).and_then(Option::as_ref),
                Some(conn) if conn.generation == c.generation
            );
            if stale {
                continue; // connection closed (or slot reused) while the job ran
            }
            self.queue_out(c.slot, c.bytes, c.keep_alive);
        }
    }

    fn queue_out(&mut self, slot: usize, bytes: Vec<u8>, keep_alive: bool) {
        let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        conn.out = bytes;
        conn.out_pos = 0;
        conn.state = ConnState::Writing { keep_alive };
        conn.last_activity = Instant::now();
        self.flush(slot);
    }

    fn flush(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if conn.out_pos >= conn.out.len() {
                break;
            }
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    ResilienceMetrics::bump(&self.service.metrics().transport.write_stalls);
                    let interest = Interest {
                        readable: conn.interest.readable,
                        writable: true,
                    };
                    self.set_interest(slot, interest);
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        // Fully flushed.
        let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        conn.out.clear();
        conn.out_pos = 0;
        let ConnState::Writing { keep_alive } = conn.state else {
            return; // nothing was pending
        };
        if !keep_alive || conn.peer_closed || self.shutting_down {
            self.close(slot);
            return;
        }
        conn.state = ConnState::Reading;
        conn.last_activity = Instant::now();
        self.set_interest(slot, Interest::READ);
        // A pipelined request may already be buffered.
        self.try_dispatch(slot);
    }

    fn set_interest(&mut self, slot: usize, interest: Interest) {
        let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.interest == interest {
            return;
        }
        let fd = conn.stream.as_raw_fd();
        if self
            .poller
            .rearm(fd, TOKEN_BASE + slot as u64, interest)
            .is_ok()
        {
            if let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) {
                conn.interest = interest;
            }
        }
    }

    /// Periodic reaping: idle keep-alive connections and slow-loris partial
    /// reads past the read timeout, stalled writers, and connections whose
    /// job was lost to a dead worker.
    fn sweep(&mut self) {
        let read_timeout = self.config.read_timeout;
        let lost_job_after = self.service.config().request_timeout + read_timeout;
        for slot in 0..self.slab.len() {
            let Some(conn) = self.slab[slot].as_ref() else {
                continue;
            };
            let expired = match conn.state {
                ConnState::Reading => conn.last_activity.elapsed() > read_timeout,
                ConnState::Writing { .. } => conn.last_activity.elapsed() > read_timeout,
                ConnState::Busy(since) => since.elapsed() > lost_job_after,
            };
            if expired {
                self.close(slot);
            }
        }
    }

    fn close(&mut self, slot: usize) {
        let Some(conn) = self.slab.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        drop(conn);
        self.free.push(slot);
        self.live -= 1;
        TransportMetrics::dec(&self.service.metrics().transport.open_connections);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Transport;
    use std::net::SocketAddr;

    fn epoll_server() -> (crate::http::ServerHandle, SocketAddr) {
        let service = Arc::new(Service::new(crate::engine::Engine::new()));
        let config = ServerConfig {
            workers: 2,
            transport: Transport::Epoll,
            read_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        };
        let handle = crate::http::start(service, config).unwrap();
        let addr = handle.addr();
        (handle, addr)
    }

    fn send_and_read(addr: SocketAddr, payload: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(payload).unwrap();
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn serves_requests_and_shuts_down_cleanly() {
        let (handle, addr) = epoll_server();
        let resp = send_and_read(addr, b"GET /health HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
        handle.shutdown();
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let (handle, addr) = epoll_server();
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for _ in 0..3 {
            s.write_all(b"GET /health HTTP/1.1\r\n\r\n").unwrap();
            let mut buf = [0u8; 4096];
            let n = s.read(&mut buf).unwrap();
            let text = String::from_utf8_lossy(&buf[..n]);
            assert!(text.starts_with("HTTP/1.1 200"), "{text:?}");
            assert!(text.contains("Connection: keep-alive"), "{text:?}");
        }
        handle.shutdown();
    }

    #[test]
    fn malformed_input_is_rejected_without_wedging() {
        let (handle, addr) = epoll_server();
        let resp = send_and_read(
            addr,
            b"POST /reload HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp:?}");
        // The reactor survived and still serves.
        let resp = send_and_read(addr, b"GET /health HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
        handle.shutdown();
    }

    #[test]
    fn many_idle_connections_coexist_with_service() {
        let (handle, addr) = epoll_server();
        // Far more connections than compute workers: a blocking transport
        // with 2 workers would strand most of these.
        let mut conns: Vec<TcpStream> =
            (0..32).map(|_| TcpStream::connect(addr).unwrap()).collect();
        for s in conns.iter_mut() {
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s.write_all(b"GET /health HTTP/1.1\r\n\r\n").unwrap();
        }
        for s in conns.iter_mut() {
            let mut buf = [0u8; 4096];
            let n = s.read(&mut buf).unwrap();
            let text = String::from_utf8_lossy(&buf[..n]);
            assert!(text.starts_with("HTTP/1.1 200"), "{text:?}");
        }
        handle.shutdown();
    }
}
