//! Shared HTTP/1.1 wire logic for both transports.
//!
//! The pool transport ([`crate::http`]) and the epoll transport
//! ([`crate::epoll`]) speak the same protocol by construction: both feed
//! their inbound bytes through [`try_parse`] and render every answer with
//! [`render_response`] / [`plain_response`]. The parser is *incremental* —
//! it consumes a growable connection buffer and reports either
//! [`ParseOutcome::Incomplete`] (read more) or a complete message plus how
//! many bytes it spanned, so pipelined requests left in the buffer are
//! preserved for the next round instead of being dropped with the stream.
//!
//! Bodies are captured (up to [`MAX_BODY`]) and handed to the service in
//! [`Request::body`]; the batch endpoints read their query lists from
//! there. Protocol-level rejections (oversized head, unparseable
//! `Content-Length`, non-UTF-8) surface as [`HttpError`] values that render
//! to `4xx` responses and always close the connection.

use crate::json::Json;
use crate::service::{ApiResponse, Request};

/// Upper bound on request head size; longer heads are rejected.
pub(crate) const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a declared request body; larger is answered `413` without
/// reading it. (Single-query endpoints carry their inputs in the query
/// string; batch endpoints post JSON bodies well under this cap.)
pub(crate) const MAX_BODY: usize = 1024 * 1024;

/// A transport-level parse rejection (always closes the connection).
#[derive(Debug)]
pub(crate) struct HttpError {
    /// HTTP status to answer with (`400` or `413`).
    pub status: u16,
    /// Human-readable reason, returned as `{"error": ...}`.
    pub message: String,
}

impl HttpError {
    pub(crate) fn bad(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }

    /// The JSON response this rejection renders to.
    pub(crate) fn to_response(&self) -> ApiResponse {
        ApiResponse {
            status: self.status,
            body: Json::obj().set("error", self.message.as_str()),
            retry_after: None,
        }
    }
}

/// One fully received request (or a parse rejection) plus the connection
/// disposition the client asked for.
pub(crate) struct ParsedRequest {
    /// The parsed API request, or the protocol error to answer with.
    pub parsed: Result<Request, HttpError>,
    /// Whether the client wants the connection kept open afterwards.
    /// Rejections force this to `false`.
    pub keep_alive: bool,
}

/// Outcome of one incremental parse attempt over a connection buffer.
pub(crate) enum ParseOutcome {
    /// The buffer does not yet hold a complete message — read more bytes.
    Incomplete,
    /// One complete message spanning the first `consumed` buffer bytes.
    /// The caller drains those bytes; anything after them is the next
    /// pipelined request.
    Ready {
        /// The parsed (or rejected) message.
        request: ParsedRequest,
        /// Bytes of the buffer this message occupied.
        consumed: usize,
    },
}

fn reject(error: HttpError, consumed: usize) -> ParseOutcome {
    ParseOutcome::Ready {
        request: ParsedRequest {
            parsed: Err(error),
            keep_alive: false,
        },
        consumed,
    }
}

/// Attempts to parse one complete HTTP/1.1 request from the front of `buf`.
///
/// Incremental and restartable: call again after appending more bytes.
/// Oversized heads, unparseable or oversized `Content-Length`, and
/// non-UTF-8 heads come back as `Ready` with an [`HttpError`] (the
/// connection closes after the error response); `consumed` for rejections
/// is the whole buffer, since nothing after a malformed head is
/// trustworthy.
pub(crate) fn try_parse(buf: &[u8]) -> ParseOutcome {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return reject(HttpError::bad("request head too large"), buf.len());
        }
        return ParseOutcome::Incomplete;
    };

    let head_text = match std::str::from_utf8(&buf[..head_end]) {
        Ok(t) => t,
        Err(_) => return reject(HttpError::bad("request head is not UTF-8"), buf.len()),
    };
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // An unparseable length means the message boundary is unknowable:
            // reject rather than guess (a zero guess would misparse the body
            // as the next pipelined request).
            content_length = match value.parse() {
                Ok(n) => n,
                Err(e) => {
                    return reject(
                        HttpError::bad(format!("bad Content-Length: {e}")),
                        buf.len(),
                    )
                }
            };
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY {
        return reject(
            HttpError {
                status: 413,
                message: format!(
                    "declared body of {content_length} bytes exceeds the {MAX_BODY}-byte cap"
                ),
            },
            buf.len(),
        );
    }

    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return ParseOutcome::Incomplete;
    }

    let parsed = parse_request_line(request_line)
        .map(|mut request| {
            request.body = buf[body_start..total].to_vec();
            request
        })
        .map_err(HttpError::bad);
    ParseOutcome::Ready {
        request: ParsedRequest { parsed, keep_alive },
        consumed: total,
    }
}

pub(crate) fn find_head_end(head: &[u8]) -> Option<usize> {
    head.windows(4).position(|w| w == b"\r\n\r\n")
}

pub(crate) fn parse_request_line(line: &str) -> Result<Request, String> {
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().ok_or("malformed request line")?;
    if !matches!(method, "GET" | "POST" | "DELETE") {
        return Err(format!("unsupported method {method:?}"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method: method.to_string(),
        path: percent_decode(path)?,
        params: parse_query(query)?,
        body: Vec::new(),
    })
}

/// Decodes `a=1&b=two` with `%XX` escapes and `+` for space.
pub(crate) fn parse_query(query: &str) -> Result<Vec<(String, String)>, String> {
    query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            Ok((percent_decode(k)?, percent_decode(v)?))
        })
        .collect()
}

pub(crate) fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("bad percent escape in {s:?}"))?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("escape sequence in {s:?} is not UTF-8"))
}

pub(crate) fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

/// Renders a service response to wire bytes (head + JSON body).
pub(crate) fn render_response(response: &ApiResponse, keep_alive: bool) -> Vec<u8> {
    let body = response.body.encode();
    let retry = match response.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
        response.status,
        status_text(response.status),
        body.len(),
        retry,
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

/// A complete one-shot response (always `Connection: close`), for paths
/// that answer without going through the service: accept-queue overload and
/// dequeue-time shedding.
pub(crate) fn plain_response(status: u16, message: &str, retry_after: Option<u64>) -> String {
    let body = Json::obj().set("error", message).encode();
    let retry = match retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{}",
        status,
        status_text(status),
        body.len(),
        retry,
        body
    )
}

/// The `503 server overloaded` push-back both transports use when their
/// admission queue is full.
pub(crate) fn overload_response() -> String {
    plain_response(503, "server overloaded", Some(1))
}

/// The `503` a worker answers when it dequeues work that already waited
/// past the request timeout.
pub(crate) fn shed_response() -> String {
    plain_response(503, "shed: queued past the request timeout", Some(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_paths_queries_and_escapes() {
        let r =
            parse_request_line("GET /locate?x=1.5&y=2&dataset=my%20set&z=a+b HTTP/1.1").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/locate");
        assert_eq!(
            r.params,
            vec![
                ("x".to_string(), "1.5".to_string()),
                ("y".to_string(), "2".to_string()),
                ("dataset".to_string(), "my set".to_string()),
                ("z".to_string(), "a b".to_string()),
            ]
        );
        assert_eq!(parse_request_line("GET / HTTP/1.1").unwrap().params, vec![]);
    }

    #[test]
    fn rejects_bad_request_lines() {
        assert!(parse_request_line("PATCH /x HTTP/1.1").is_err());
        assert!(parse_request_line("GET").is_err());
        assert!(parse_request_line("GET /a?x=%zz HTTP/1.1").is_err());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Cb+c").unwrap(), "a,b c");
        assert_eq!(percent_decode("plain").unwrap(), "plain");
        assert!(percent_decode("%f").is_err());
        assert!(percent_decode("%ff").is_err()); // lone continuation byte
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }

    #[test]
    fn incremental_parse_waits_for_the_full_message() {
        let full = b"POST /solve_batch HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..full.len() {
            assert!(
                matches!(try_parse(&full[..cut]), ParseOutcome::Incomplete),
                "cut at {cut} should be incomplete"
            );
        }
        match try_parse(full) {
            ParseOutcome::Ready { request, consumed } => {
                assert_eq!(consumed, full.len());
                let req = request.parsed.unwrap();
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/solve_batch");
                assert_eq!(req.body, b"hello");
                assert!(request.keep_alive);
            }
            ParseOutcome::Incomplete => panic!("full message should parse"),
        }
    }

    #[test]
    fn pipelined_requests_consume_exactly_one_message() {
        let two = b"GET /health HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\nConnection: close\r\n\r\n";
        let ParseOutcome::Ready { request, consumed } = try_parse(two) else {
            panic!("first message should parse");
        };
        assert_eq!(request.parsed.unwrap().path, "/health");
        assert!(request.keep_alive);
        let ParseOutcome::Ready {
            request,
            consumed: rest,
        } = try_parse(&two[consumed..])
        else {
            panic!("second message should parse");
        };
        assert_eq!(request.parsed.unwrap().path, "/stats");
        assert!(!request.keep_alive);
        assert_eq!(consumed + rest, two.len());
    }

    #[test]
    fn protocol_rejections_close_and_swallow_the_buffer() {
        // Oversized head without a terminator.
        let mut huge = b"GET / HTTP/1.1\r\nX-Filler: ".to_vec();
        huge.resize(MAX_HEAD + 2, b'a');
        let ParseOutcome::Ready { request, consumed } = try_parse(&huge) else {
            panic!("oversized head must be rejected");
        };
        assert_eq!(consumed, huge.len());
        assert_eq!(request.parsed.err().map(|e| e.status), Some(400));
        assert!(!request.keep_alive);

        // Unparseable Content-Length.
        let bad = b"POST /reload HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
        let ParseOutcome::Ready { request, .. } = try_parse(bad) else {
            panic!("bad content-length must be rejected");
        };
        assert_eq!(request.parsed.err().map(|e| e.status), Some(400));

        // Declared body over the cap: 413 before the body arrives.
        let big = b"POST /reload HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        let ParseOutcome::Ready { request, .. } = try_parse(big) else {
            panic!("oversized body must be rejected");
        };
        assert_eq!(request.parsed.err().map(|e| e.status), Some(413));
    }

    #[test]
    fn rendered_responses_carry_length_connection_and_retry() {
        let resp = ApiResponse {
            status: 503,
            body: Json::obj().set("error", "busy"),
            retry_after: Some(2),
        };
        let text = String::from_utf8(render_response(&resp, false)).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert!(text.contains(&format!("Content-Length: {}\r\n", body.len())));
    }
}
