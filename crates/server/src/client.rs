//! A tiny blocking HTTP/1.1 client for the MOLQ API.
//!
//! Just enough protocol to drive [`crate::http`]: one request per call over
//! a (optionally kept-alive) TCP connection, JSON bodies parsed with
//! [`crate::json`]. The load generator and the end-to-end tests use this so
//! the repo needs no external HTTP tooling.

use crate::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Default socket read timeout — the single knob every hardcoded client
/// timeout derives from. Deliberately larger than the server's default
/// request timeout so the client sees the server's `504` rather than its
/// own socket timeout.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A keep-alive connection to one server.
pub struct Client {
    stream: BufReader<TcpStream>,
}

/// A decoded API response.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Parsed JSON body.
    pub body: Json,
    /// Seconds from a `Retry-After` header, when the server sent one
    /// (load shedding and open-breaker `503`s).
    pub retry_after: Option<u64>,
}

impl Client {
    /// Connects to the server with [`DEFAULT_READ_TIMEOUT`].
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        Client::connect_with_timeout(addr, DEFAULT_READ_TIMEOUT)
    }

    /// Connects with an explicit socket read timeout.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream: BufReader::new(stream),
        })
    }

    /// Issues a GET for a path-with-query (e.g. `/locate?x=1&y=2`).
    pub fn get(&mut self, target: &str) -> Result<ClientResponse, String> {
        self.request("GET", target, b"")
    }

    /// Issues a POST for a path-with-query.
    pub fn post(&mut self, target: &str) -> Result<ClientResponse, String> {
        self.request("POST", target, b"")
    }

    /// Issues a POST for a path-with-query carrying a body (the batch
    /// endpoints take their query list as a JSON body).
    pub fn post_body(&mut self, target: &str, body: &[u8]) -> Result<ClientResponse, String> {
        self.request("POST", target, body)
    }

    fn request(
        &mut self,
        method: &str,
        target: &str,
        payload: &[u8],
    ) -> Result<ClientResponse, String> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: molq\r\nContent-Length: {}\r\n\r\n",
            payload.len()
        );
        let mut message = head.into_bytes();
        message.extend_from_slice(payload);
        self.stream
            .get_mut()
            .write_all(&message)
            .map_err(|e| format!("send: {e}"))?;

        let mut status_line = String::new();
        self.stream
            .read_line(&mut status_line)
            .map_err(|e| format!("status: {e}"))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line {status_line:?}"))?;

        let mut content_length = 0usize;
        let mut retry_after = None;
        loop {
            let mut line = String::new();
            self.stream
                .read_line(&mut line)
                .map_err(|e| format!("header: {e}"))?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("content-length: {e}"))?;
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after = value.trim().parse().ok();
                }
            }
        }

        let mut body = vec![0u8; content_length];
        self.stream
            .read_exact(&mut body)
            .map_err(|e| format!("body: {e}"))?;
        let text = String::from_utf8(body).map_err(|e| format!("body: {e}"))?;
        Ok(ClientResponse {
            status,
            body: Json::parse(&text)?,
            retry_after,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DatasetSpec, Engine};
    use crate::http::{start, ServerConfig};
    use crate::service::Service;
    use molq_core::prelude::*;
    use molq_geom::{Mbr, Point};
    use std::sync::Arc;

    fn sample_service() -> Arc<Service> {
        let engine = Engine::new();
        let mk = |name: &str, seed: u64| {
            let mut s = seed;
            let mut next = move || {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 33) as f64 / u32::MAX as f64
            };
            ObjectSet::uniform(
                name,
                1.0,
                (0..10)
                    .map(|_| Point::new(next() * 50.0, next() * 50.0))
                    .collect(),
            )
        };
        engine
            .load_from_sets(
                DatasetSpec {
                    bounds: Some(Mbr::new(0.0, 0.0, 50.0, 50.0)),
                    ..DatasetSpec::new("default", Vec::new())
                },
                vec![mk("a", 11), mk("b", 12)],
            )
            .unwrap();
        Arc::new(Service::new(engine))
    }

    #[test]
    fn client_roundtrips_with_keep_alive() {
        let handle = start(sample_service(), ServerConfig::default()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        // Several requests over the same connection.
        let health = client.get("/health").unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(health.body.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(health.retry_after, None);
        let locate = client.get("/locate?x=25&y=25").unwrap();
        assert_eq!(locate.status, 200, "{:?}", locate.body);
        let missing = client.get("/locate?x=25").unwrap();
        assert_eq!(missing.status, 400);
        let reload = client.post("/reload?dataset=default&wait=1").unwrap();
        assert_eq!(reload.status, 200, "{:?}", reload.body);
        assert_eq!(reload.body.get("generation").unwrap().as_u64(), Some(2));
        let background = client.post("/reload?dataset=default").unwrap();
        assert_eq!(background.status, 202, "{:?}", background.body);
        assert_eq!(
            background.body.get("status").unwrap().as_str(),
            Some("building")
        );
        handle.shutdown();
    }

    #[test]
    fn server_rejects_garbage_requests() {
        let handle = start(sample_service(), ServerConfig::default()).unwrap();
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        raw.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut response = String::new();
        raw.set_read_timeout(Some(DEFAULT_READ_TIMEOUT)).unwrap();
        let mut reader = BufReader::new(&mut raw);
        reader.read_line(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response:?}");
        handle.shutdown();
    }
}
