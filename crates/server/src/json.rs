//! A hand-rolled minimal JSON encoder/decoder.
//!
//! The server depends on nothing outside `std`, so instead of `serde_json`
//! it carries this ~300-line value model: enough JSON for the API's
//! responses (objects, arrays, strings, finite numbers, booleans, null) and
//! for clients — the load generator and the end-to-end tests — to parse them
//! back. Object keys keep insertion order so responses are stable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values encode as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::set`] chaining.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a key in an object; panics on non-objects.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(pairs) = &mut self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            pairs.push((key.to_string(), value));
        }
        self
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value rounded to `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(n.round() as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) if n.is_finite() => {
                if *n == n.trunc() && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not needed by this API.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_encodes_objects() {
        let j = Json::obj()
            .set("name", "default")
            .set("count", 3u64)
            .set("cost", 1.5)
            .set("ok", true)
            .set("items", Json::Arr(vec![Json::Num(1.0), Json::Null]));
        assert_eq!(
            j.encode(),
            r#"{"name":"default","count":3,"cost":1.5,"ok":true,"items":[1,null]}"#
        );
    }

    #[test]
    fn set_replaces_existing_keys() {
        let j = Json::obj().set("a", 1u64).set("a", 2u64);
        assert_eq!(j.encode(), r#"{"a":2}"#);
    }

    #[test]
    fn roundtrips_through_parse() {
        let j = Json::obj()
            .set("s", "a \"quoted\"\n\\ string")
            .set("n", -12.75)
            .set(
                "arr",
                Json::Arr(vec![Json::Bool(false), Json::Str("x".into())]),
            )
            .set("nested", Json::obj().set("k", Json::Null));
        let back = Json::parse(&j.encode()).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let j = Json::parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(25.0)
        );
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[2].as_str(), Some("A"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"n": 4, "s": "x", "a": [1]}"#).unwrap();
        assert_eq!(j.get("n").unwrap().as_u64(), Some(4));
        assert_eq!(j.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(j.get("missing").is_none());
        assert!(j.get("s").unwrap().as_f64().is_none());
    }
}
