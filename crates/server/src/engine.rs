//! The engine: named, immutable MOVD snapshots behind atomic swaps.
//!
//! A dataset is expensive to prepare (the MOVD Overlapper is the dominant
//! cost of the pipeline, §6) and cheap to query afterwards. The engine
//! therefore builds each dataset **once** into a [`Snapshot`] — the query,
//! the built [`MovdIndex`], and serving metadata — and publishes it behind an
//! `Arc`. Requests clone the `Arc` and work on a consistent, immutable view;
//! a reload builds a fresh snapshot off to the side and swaps the map entry
//! atomically, so in-flight requests keep their old view and never observe a
//! half-built diagram.
//!
//! When a [`DatasetSpec`] names a `snapshot_dir`, the build itself becomes
//! durable via `molq-store`: a fresh build is persisted as
//! `<dir>/<name>.molq`, and a later load first fingerprints the source CSVs
//! and — if a snapshot matching the spec and fingerprint exists — restores
//! the fully-built diagram from disk instead of re-running the Overlapper.
//! A missing, stale, or damaged snapshot file never fails a load: the engine
//! warns and falls back to a clean CSV rebuild (re-saving the snapshot).
//!
//! Rebuilds can also run off-thread: [`Engine::reload_background`] returns a
//! ticket immediately and swaps the new snapshot in when the build finishes,
//! so an HTTP reload does not hold a connection open for the whole overlap.
//!
//! Rebuilds are guarded by a per-dataset **circuit breaker**
//! ([`BreakerConfig`]): after `threshold` consecutive build failures the
//! breaker opens and further rebuild attempts fast-fail with
//! [`ReloadError::BreakerOpen`] for an exponentially growing backoff, while
//! the last good generation keeps serving untouched. Once the backoff
//! expires the breaker goes half-open: one probe rebuild is admitted, and
//! its outcome either closes the breaker or re-opens it with a longer
//! backoff. `/health` surfaces open breakers as `degraded` with the last
//! build error.

use molq_core::prelude::*;
use molq_datagen::csv::read_csv;
use molq_fw::StoppingRule;
use molq_geom::{Mbr, Point};
use molq_store::{
    journal_path, recover, set_aside_journal, sweep_tmp, DecodeTimings, Journal,
    JournalDisposition, JournalRecord, RealVfs, Recovery, SourceFingerprint, StoredSnapshot, Vfs,
};
use std::collections::HashMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// How to build (and rebuild) one dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name (the `dataset` request parameter).
    pub name: String,
    /// CSV layer files (one object set each); empty when the dataset was
    /// loaded from in-memory sets.
    pub paths: Vec<PathBuf>,
    /// Boundary mode for the MOVD Overlapper.
    pub boundary: Boundary,
    /// Search space; `None` infers the MBR of the objects inflated by 5%.
    pub bounds: Option<Mbr>,
    /// Fermat–Weber error bound ε for `solve`/`top-k`.
    pub eps: f64,
    /// Construction mode: the historical exact pipeline, or the quadtree
    /// (1+ε) approximate builder that scales to ~10⁶ objects per layer.
    pub build: BuildMode,
    /// Where to persist/restore built snapshots (`<dir>/<name>.molq`);
    /// `None` disables persistence.
    pub snapshot_dir: Option<PathBuf>,
}

impl DatasetSpec {
    /// A spec with the paper's defaults (RRB, inferred bounds, ε = 1e-3,
    /// exact construction, no persistence).
    pub fn new(name: &str, paths: Vec<PathBuf>) -> Self {
        DatasetSpec {
            name: name.to_string(),
            paths,
            boundary: Boundary::Rrb,
            bounds: None,
            eps: 1e-3,
            build: BuildMode::Exact,
            snapshot_dir: None,
        }
    }

    /// The snapshot file this spec would persist to, if persistence is on.
    pub fn snapshot_file(&self) -> Option<PathBuf> {
        self.snapshot_dir
            .as_ref()
            .map(|dir| snapshot_path(dir, &self.name))
    }
}

/// The snapshot file for a dataset name inside a snapshot directory.
pub fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
    molq_store::snapshot_path(dir, name)
}

/// Number of quantization steps along the longer side of the search space:
/// `locate` coordinates snap to this lattice so the cache can key on integer
/// cells. 2^20 steps keep the snap error below one millionth of the space —
/// far below any geographic data precision — while making equal-for-serving
/// locations collide in the cache.
const QUANT_STEPS: f64 = (1u64 << 20) as f64;

/// An immutable, fully-built serving view of one dataset.
#[derive(Debug)]
pub struct Snapshot {
    /// The build recipe (kept for reloads).
    pub spec: DatasetSpec,
    /// Monotonic build counter for this dataset name; bumps on every reload
    /// so cache keys from older snapshots can never alias new answers.
    pub generation: u64,
    /// The query the MOVD was built from (object sets, weights, bounds, ε).
    pub query: MolqQuery,
    /// Point-location index over the built MOVD.
    pub index: MovdIndex,
    /// Fermat–Weber scan lanes over the arena's groups, pinned per snapshot
    /// so every solve/top-k against this view reuses one weight table
    /// instead of rebuilding it per request. Materialized lazily on first
    /// use (see [`Snapshot::lanes`]) so restores stay pure decode work.
    lanes: OnceLock<FwLanes>,
    /// Side length of one quantization cell (see [`Snapshot::quantize`]).
    pub quantum: f64,
    /// Live-update epoch: the journal generation this snapshot's persisted
    /// base belongs to. Bumped by compaction; 0 for a fresh CSV build.
    pub update_epoch: u64,
    /// How the diagram was constructed: the mode, its (1+ε) certified
    /// factor, and the refinement counters for approximate builds.
    pub build_meta: BuildMeta,
}

impl Snapshot {
    fn build(
        spec: DatasetSpec,
        sets: Vec<ObjectSet>,
        generation: u64,
        exec: ExecConfig,
    ) -> Result<Self, String> {
        let bounds = match spec.bounds {
            Some(b) => b,
            None => {
                let m = sets
                    .iter()
                    .flat_map(|s| s.objects.iter().map(|o| o.loc))
                    .fold(Mbr::EMPTY, |acc, p| acc.union(&Mbr::of_point(p)));
                if m.is_empty() {
                    return Err("cannot infer bounds from empty inputs".into());
                }
                m.inflate(0.05 * m.margin().max(1.0))
            }
        };
        let query = MolqQuery::new(sets, bounds).with_rule(StoppingRule::Either(spec.eps, 100_000));
        query.validate().map_err(|e| e.to_string())?;
        let plan = BuildPlan::for_mode(spec.build);
        let (movd, build_meta) = build_movd(&query.sets, bounds, spec.boundary, &plan, exec)
            .map_err(|e| e.to_string())?;
        Ok(Snapshot::assemble(
            spec,
            query,
            MovdIndex::build(movd),
            generation,
            0,
            build_meta,
        ))
    }

    /// Restores a serving snapshot from a persisted build: the MOVD and grid
    /// come straight off disk, so no Overlapper or index work runs.
    fn from_stored(
        spec: DatasetSpec,
        stored: StoredSnapshot,
        generation: u64,
    ) -> Result<Self, String> {
        let bounds = stored.movd.bounds();
        let update_epoch = stored.update_epoch;
        let build_meta = stored.build;
        let query =
            MolqQuery::new(stored.sets, bounds).with_rule(StoppingRule::Either(spec.eps, 100_000));
        query.validate().map_err(|e| e.to_string())?;
        let index = MovdIndex::from_arena(stored.movd, stored.grid)?;
        Ok(Snapshot::assemble(
            spec,
            query,
            index,
            generation,
            update_epoch,
            build_meta,
        ))
    }

    fn assemble(
        spec: DatasetSpec,
        query: MolqQuery,
        index: MovdIndex,
        generation: u64,
        update_epoch: u64,
        build_meta: BuildMeta,
    ) -> Self {
        let bounds = query.bounds;
        let quantum = bounds.width().max(bounds.height()) / QUANT_STEPS;
        Snapshot {
            spec,
            generation,
            query,
            index,
            lanes: OnceLock::new(),
            quantum,
            update_epoch,
            build_meta,
        }
    }

    /// The snapshot's pinned scan lanes, built from the arena on first use
    /// and shared by every subsequent solve/top-k against this view.
    pub fn lanes(&self) -> &FwLanes {
        self.lanes
            .get_or_init(|| FwLanes::from_arena(&self.query, self.index.arena()))
    }

    /// The persistable form of this snapshot (everything a restart needs).
    fn to_stored(&self, fingerprint: SourceFingerprint) -> StoredSnapshot {
        StoredSnapshot {
            name: self.spec.name.clone(),
            boundary: self.spec.boundary,
            eps: self.spec.eps,
            explicit_bounds: self.spec.bounds,
            fingerprint,
            sets: self.query.sets.clone(),
            movd: self.index.arena().clone(),
            grid: self.index.grid().clone(),
            update_epoch: self.update_epoch,
            build: self.build_meta,
        }
    }

    /// Snaps a location to the snapshot's cache lattice, returning the cell
    /// id and the cell's representative point (the coordinate actually
    /// evaluated and reported back to the client).
    pub fn quantize(&self, l: Point) -> ((i64, i64), Point) {
        let b = self.query.bounds;
        let qx = ((l.x - b.min_x) / self.quantum).round();
        let qy = ((l.y - b.min_y) / self.quantum).round();
        let snapped = Point::new(b.min_x + qx * self.quantum, b.min_y + qy * self.quantum);
        ((qx as i64, qy as i64), snapped)
    }

    /// Number of object sets.
    pub fn set_count(&self) -> usize {
        self.query.sets.len()
    }

    /// Total number of objects across sets.
    pub fn object_count(&self) -> usize {
        self.query.sets.iter().map(|s| s.len()).sum()
    }
}

/// How a load obtained its snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOutcome {
    /// The MOVD was built from the source CSVs (and persisted, when the spec
    /// has a snapshot directory).
    BuiltFromCsv,
    /// The fully-built MOVD was restored from a matching snapshot file.
    LoadedFromSnapshot,
}

/// Why a reload was refused or failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReloadError {
    /// The rebuild circuit breaker for this dataset is open: recent builds
    /// kept failing, and the engine is backing off rather than retrying
    /// immediately. The last good snapshot keeps serving.
    BreakerOpen {
        /// Time until the breaker admits the next probe rebuild.
        retry_in: Duration,
        /// The failure that (most recently) opened the breaker.
        last_error: String,
    },
    /// The rebuild itself failed (or the dataset does not exist).
    Failed(String),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::BreakerOpen {
                retry_in,
                last_error,
            } => write!(
                f,
                "rebuild breaker open for another {retry_in:?} (last error: {last_error})"
            ),
            ReloadError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

/// Circuit-breaker policy for failing rebuilds, shared by all datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive build failures before the breaker opens.
    pub threshold: u32,
    /// Backoff after the breaker first opens; doubles per further failure.
    pub base_backoff: Duration,
    /// Upper bound on the backoff.
    pub max_backoff: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            base_backoff: Duration::from_millis(500),
            max_backoff: Duration::from_secs(60),
        }
    }
}

/// Per-dataset breaker state (internal).
#[derive(Debug, Default)]
struct BreakerState {
    consecutive_failures: u32,
    last_error: String,
    open_until: Option<Instant>,
}

/// One dataset's breaker state, as reported on `/health`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerReport {
    /// Dataset name.
    pub dataset: String,
    /// Consecutive build failures so far.
    pub consecutive_failures: u32,
    /// `Some(remaining backoff)` while the breaker is open; `None` once it
    /// is closed or half-open (a probe rebuild would be admitted).
    pub retry_in: Option<Duration>,
    /// The most recent build error.
    pub last_error: String,
}

/// Receipt for a background reload request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReloadTicket {
    /// Generation the dataset will have once the in-flight build publishes.
    pub target_generation: u64,
    /// `true` when a build for this dataset was already running and no new
    /// one was started.
    pub already_building: bool,
}

/// Mutable live-update state of one dataset: the incremental diagram (kept
/// bit-consistent with the published snapshot) and its journal handle. Held
/// behind a per-dataset mutex so updates serialize without blocking reads.
#[derive(Debug)]
struct LiveState {
    live: LiveMovd,
    /// Open journal for appends; `None` when the spec has no snapshot dir.
    journal: Option<Journal>,
    /// Epoch of the base this state's journal binds to.
    epoch: u64,
    /// Generation of the published snapshot this state mirrors. A mismatch
    /// (some reload published in between) makes the state stale; it is
    /// rehydrated from the current snapshot before the next update.
    generation: u64,
}

/// Counters for the live-update subsystem (`/stats` → `updates`).
#[derive(Debug, Default)]
struct UpdateStats {
    applied: AtomicU64,
    rejected: AtomicU64,
    replayed: AtomicU64,
    compactions: AtomicU64,
    full_rebuilds: AtomicU64,
    patch_micros: AtomicU64,
    last_patch_micros: AtomicU64,
    cells_reclipped: AtomicU64,
}

/// A point-in-time copy of the live-update counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStatsReport {
    /// Updates applied through [`Engine::apply_update`].
    pub applied: u64,
    /// Updates rejected by validation (duplicate coordinates, bad indices,
    /// emptying a set, injected faults).
    pub rejected: u64,
    /// Journal records replayed during snapshot restores.
    pub replayed: u64,
    /// Journal compactions performed.
    pub compactions: u64,
    /// Updates that took the full-rebuild path (inferred bounds moved).
    pub full_rebuilds: u64,
    /// Total wall time spent patching, microseconds.
    pub patch_micros_total: u64,
    /// Wall time of the most recent patch, microseconds.
    pub last_patch_micros: u64,
    /// Total basic-diagram cells re-clipped across all patches.
    pub cells_reclipped: u64,
}

/// Why a live update failed, typed so callers can answer with the right
/// status code (the service maps these to 404/400/409/507).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The dataset does not exist.
    NotFound(String),
    /// Validation rejected the update (duplicate coordinates, bad indices,
    /// emptying a set, injected faults). Nothing changed.
    Rejected(String),
    /// The dataset was republished while the update was in flight; the
    /// update was not applied and is safe to retry.
    Conflict(String),
    /// The update could not be made durable (journal append or live-state
    /// storage failed). The in-memory state was rolled back; the published
    /// snapshot is unchanged.
    Durability(String),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::NotFound(m)
            | UpdateError::Rejected(m)
            | UpdateError::Conflict(m)
            | UpdateError::Durability(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for UpdateError {}

/// Counters for the storage-durability subsystem (`/stats` → `durability`).
/// Tracks how often the crash-consistency machinery had to act: failed
/// write-ahead appends, snapshot-save retries, journal salvages.
#[derive(Debug, Default)]
struct DurabilityStats {
    append_failures: AtomicU64,
    save_retries: AtomicU64,
    save_failures: AtomicU64,
    salvages: AtomicU64,
    torn_tails: AtomicU64,
    journals_set_aside: AtomicU64,
    tmp_swept: AtomicU64,
    /// 1 while the most recent durable-write attempt failed; cleared by the
    /// next successful append or save. Surfaces on `/health` as `degraded`.
    degraded: AtomicU64,
    last_error: Mutex<Option<String>>,
}

impl DurabilityStats {
    /// Records a durable-write failure: bumps `counter`, flips the engine
    /// into the degraded state, and remembers the error for `/health`.
    fn note_failure(&self, counter: &AtomicU64, err: &str) {
        counter.fetch_add(1, Ordering::Relaxed);
        self.degraded.store(1, Ordering::Relaxed);
        *self.last_error.lock().expect("durability lock poisoned") = Some(err.to_string());
    }

    /// A durable write succeeded: storage is healthy again.
    fn note_durable_ok(&self) {
        self.degraded.store(0, Ordering::Relaxed);
    }
}

/// Counters for the arena layout (`/stats` → `arena_stats`): how the most
/// recent snapshot restore's decode wall time split between bulk lane copies
/// and structural validation, and how many contiguous arena segments the
/// copy-on-write publish path copied per live-update patch.
#[derive(Debug, Default)]
struct ArenaStats {
    last_restore_copy_micros: AtomicU64,
    last_restore_validate_micros: AtomicU64,
    segments_copied_total: AtomicU64,
    last_segments_copied: AtomicU64,
}

/// A point-in-time copy of the arena counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStatsReport {
    /// Bulk lane-copy share of the most recent restore's decode, µs.
    pub last_restore_copy_micros: u64,
    /// Structural-validation share of the most recent restore's decode, µs.
    pub last_restore_validate_micros: u64,
    /// Contiguous arena segments copied across all live-update patches.
    pub segments_copied_total: u64,
    /// Segments the most recent patch copied (0 for a full rebuild).
    pub last_segments_copied: u64,
}

/// A point-in-time copy of the durability counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DurabilityReport {
    /// Write-ahead journal appends that failed (each one failed its update
    /// with [`UpdateError::Durability`]).
    pub append_failures: u64,
    /// Snapshot-save attempts retried after a transient failure.
    pub save_retries: u64,
    /// Snapshot saves that failed even after retries.
    pub save_failures: u64,
    /// Journals whose defective tail was salvaged on restore (the valid
    /// record prefix replayed; the rest dropped).
    pub salvages: u64,
    /// Journals that ended in a torn (partial) record on restore — the
    /// crash-mid-append fingerprint. The complete prefix replayed.
    pub torn_tails: u64,
    /// Journals set aside as untrusted (defective header, stale epoch, or
    /// records that no longer apply to the base).
    pub journals_set_aside: u64,
    /// Orphaned atomic-write temp files removed by the startup/pre-save
    /// sweep.
    pub tmp_swept: u64,
    /// `true` while the most recent durable-write attempt failed.
    pub degraded: bool,
    /// The error that degraded the engine, if any.
    pub last_error: Option<String>,
}

/// What one accepted live update did, engine-level.
#[derive(Debug)]
pub struct UpdateOutcome {
    /// The newly-published snapshot (patched generation).
    pub snapshot: Arc<Snapshot>,
    /// Patch-level counters from the incremental layer.
    pub stats: PatchStats,
    /// `true` when the update rebuilt the diagram from scratch because the
    /// dataset's inferred bounds moved.
    pub full_rebuild: bool,
}

#[derive(Debug, Default)]
struct EngineInner {
    datasets: RwLock<HashMap<String, Arc<Snapshot>>>,
    /// Worker-thread count for Overlapper rebuilds; `0` defers to
    /// [`ExecConfig::default`] (the `MOLQ_THREADS` env, else serial).
    exec_threads: std::sync::atomic::AtomicUsize,
    /// Dataset name → live-update state (incremental diagram + journal).
    live: Mutex<HashMap<String, Arc<Mutex<Option<LiveState>>>>>,
    /// Live-update counters.
    updates: UpdateStats,
    /// Storage-durability counters (journal salvage, save retries, sweeps).
    durability: DurabilityStats,
    /// Arena-layout counters (restore decode split, patch segment copies).
    arena: ArenaStats,
    /// Dataset name → target generation of the build currently in flight.
    builds: Mutex<HashMap<String, u64>>,
    /// Dataset name → rebuild circuit-breaker state.
    breakers: Mutex<HashMap<String, BreakerState>>,
    /// Breaker policy (settable once at wiring time; defaults apply).
    breaker_config: Mutex<Option<BreakerConfig>>,
    /// Test hook: artificial delay inserted before every build, so tests can
    /// observe the non-blocking reload window deterministically.
    #[cfg(test)]
    build_delay: Mutex<Option<std::time::Duration>>,
}

/// The snapshot registry: dataset name → current [`Snapshot`].
///
/// Cloning an `Engine` is cheap and shares all state (the background reload
/// worker holds such a clone).
#[derive(Debug, Default, Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// An engine with no datasets.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Sets the execution configuration every subsequent build (initial
    /// load, reload, background reload) runs the Overlapper with. Thread
    /// count never changes what a build produces — the scan layer's
    /// determinism contract makes rebuilt diagrams bit-identical at any
    /// setting — only how fast it runs.
    pub fn set_exec_config(&self, exec: ExecConfig) {
        self.inner
            .exec_threads
            .store(exec.threads, std::sync::atomic::Ordering::Relaxed);
    }

    /// The execution configuration builds run with.
    pub fn exec_config(&self) -> ExecConfig {
        match self
            .inner
            .exec_threads
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            0 => ExecConfig::default(),
            threads => ExecConfig::new(threads),
        }
    }

    /// Loads (or replaces) a dataset from its spec's CSV files, restoring a
    /// persisted snapshot instead of rebuilding when one matches.
    pub fn load(&self, spec: DatasetSpec) -> Result<Arc<Snapshot>, String> {
        self.load_traced(spec).map(|(snap, _)| snap)
    }

    /// Like [`load`](Self::load), but also reports whether the dataset was
    /// rebuilt from CSVs or restored from a snapshot file.
    pub fn load_traced(&self, spec: DatasetSpec) -> Result<(Arc<Snapshot>, LoadOutcome), String> {
        if spec.paths.is_empty() {
            return Err(format!("dataset {:?} has no input files", spec.name));
        }
        self.maybe_delay_build();
        let fingerprint = SourceFingerprint::of_paths(&spec.paths)
            .map_err(|e| format!("fingerprinting sources of {:?}: {e}", spec.name))?;

        if let Some(dir) = spec.snapshot_dir.as_deref() {
            self.sweep_snapshot_dir(dir);
        }
        if let Some(recovery) = self.try_restore(&spec, &fingerprint) {
            match self.restore_recovered(&spec, recovery) {
                Ok(snap) => return Ok((snap, LoadOutcome::LoadedFromSnapshot)),
                Err(e) => {
                    // Unreachable short of a publish race or an internal
                    // defect — journal trouble is absorbed by the recovery
                    // ladder (salvage or set-aside), never by rebuilding.
                    eprintln!(
                        "molq-server: restore of {:?} failed ({e}); rebuilding from CSVs",
                        spec.name
                    );
                }
            }
        }

        let sets = spec
            .paths
            .iter()
            .map(|path| {
                let f = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
                let name = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().to_string())
                    .unwrap_or_else(|| path.display().to_string());
                read_csv(&name, f).map_err(|e| format!("{}: {e}", path.display()))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let snap = self.publish(spec, sets)?;
        self.persist(&snap, fingerprint);
        Ok((snap, LoadOutcome::BuiltFromCsv))
    }

    /// Runs the crash-recovery ladder for a persisted snapshot matching the
    /// spec and the current source fingerprint. Only an unusable *base* (or
    /// a stale one) falls back to a CSV rebuild — journal trouble is
    /// absorbed by the returned [`Recovery`]'s disposition.
    fn try_restore(&self, spec: &DatasetSpec, fingerprint: &SourceFingerprint) -> Option<Recovery> {
        let dir = spec.snapshot_dir.as_deref()?;
        let path = spec.snapshot_file()?;
        // Fault point: simulate a corrupt/unreadable snapshot read, proving
        // the fallback-to-rebuild path without touching the file.
        if let Err(e) = crate::fault::fail_point("engine.snapshot_read") {
            eprintln!(
                "molq-server: snapshot {} unusable (injected: {e}); rebuilding {:?} from CSVs",
                path.display(),
                spec.name
            );
            return None;
        }
        let recovery = match recover(&RealVfs, dir, &spec.name) {
            Ok(recovery) => recovery,
            Err(e) if e.is_not_found() => return None,
            Err(e) => {
                eprintln!(
                    "molq-server: snapshot {} unusable ({e}); rebuilding {:?} from CSVs",
                    path.display(),
                    spec.name
                );
                return None;
            }
        };
        if !snapshot_matches(&recovery.base, spec, fingerprint) {
            eprintln!(
                "molq-server: snapshot {} is stale; rebuilding {:?} from CSVs",
                path.display(),
                spec.name
            );
            return None;
        }
        Some(recovery)
    }

    /// Saves a freshly-built snapshot when the spec asks for persistence.
    /// Persistence failures are warnings, never load failures — a serving
    /// snapshot in memory always beats a durable one on disk.
    fn persist(&self, snap: &Snapshot, fingerprint: SourceFingerprint) {
        let Some(path) = snap.spec.snapshot_file() else {
            return;
        };
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!(
                    "molq-server: cannot create snapshot dir {}: {e}",
                    dir.display()
                );
                return;
            }
            self.sweep_snapshot_dir(dir);
        }
        if let Err(e) = self.save_with_retry(&snap.to_stored(fingerprint), &path) {
            eprintln!(
                "molq-server: failed to persist snapshot {}: {e}",
                path.display()
            );
        }
        // A fresh CSV build starts a clean update history: any journal left
        // by a previous incarnation no longer applies to this base.
        if let Some(dir) = path.parent() {
            let jpath = journal_path(dir, &snap.spec.name);
            if RealVfs.remove_file(&jpath).is_ok() {
                let _ = molq_store::vfs::sync_parent_dir(&RealVfs, &jpath);
            }
        }
    }

    /// Saves a snapshot with bounded retry: a transient failure gets
    /// `ATTEMPTS` tries with exponential backoff before the save is declared
    /// failed and the engine degraded. Every attempt passes the
    /// `engine.snapshot_save` fault point.
    fn save_with_retry(&self, stored: &StoredSnapshot, path: &Path) -> Result<(), String> {
        const ATTEMPTS: u32 = 3;
        let d = &self.inner.durability;
        let mut last = String::new();
        for attempt in 0..ATTEMPTS {
            if attempt > 0 {
                d.save_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(10u64 << (attempt - 1)));
            }
            let result = match crate::fault::fail_point("engine.snapshot_save") {
                Err(msg) => Err(format!("injected save failure: {msg}")),
                Ok(()) => stored.save_file(path).map_err(|e| e.to_string()),
            };
            match result {
                Ok(()) => {
                    d.note_durable_ok();
                    return Ok(());
                }
                Err(e) => {
                    eprintln!(
                        "molq-server: saving snapshot {} (attempt {} of {ATTEMPTS}): {e}",
                        path.display(),
                        attempt + 1
                    );
                    last = e;
                }
            }
        }
        let msg = format!(
            "saving snapshot {} failed after {ATTEMPTS} attempts: {last}",
            path.display()
        );
        d.note_failure(&d.save_failures, &msg);
        Err(msg)
    }

    /// Removes orphaned atomic-write temp files from a snapshot directory,
    /// counting what it swept. Runs at load time and before every save, so
    /// the droppings of a crash mid-save never accumulate.
    fn sweep_snapshot_dir(&self, dir: &Path) {
        match sweep_tmp(&RealVfs, dir) {
            Ok(swept) if !swept.is_empty() => {
                self.inner
                    .durability
                    .tmp_swept
                    .fetch_add(swept.len() as u64, Ordering::Relaxed);
                eprintln!(
                    "molq-server: swept {} orphaned tmp file(s) from {}",
                    swept.len(),
                    dir.display()
                );
            }
            Ok(_) => {}
            Err(e) => eprintln!("molq-server: sweeping {}: {e}", dir.display()),
        }
    }

    /// Loads (or replaces) a dataset from in-memory object sets; `spec.paths`
    /// is ignored and cleared. Used by tests and the load generator.
    pub fn load_from_sets(
        &self,
        mut spec: DatasetSpec,
        sets: Vec<ObjectSet>,
    ) -> Result<Arc<Snapshot>, String> {
        spec.paths.clear();
        self.maybe_delay_build();
        self.publish(spec, sets)
    }

    /// Rebuilds the named dataset from its stored spec and swaps it in,
    /// blocking until the new snapshot is published. File-backed datasets
    /// re-read their CSVs; if the CSVs are unchanged and a matching snapshot
    /// file exists, the reload fast-loads it (the result is semantically
    /// identical to a rebuild). In-memory datasets re-overlap their held
    /// sets.
    ///
    /// Rebuilds feed the per-dataset circuit breaker: while it is open the
    /// reload fast-fails with [`ReloadError::BreakerOpen`] and the current
    /// snapshot keeps serving.
    pub fn reload(&self, name: &str) -> Result<Arc<Snapshot>, ReloadError> {
        self.reload_with_mode(name, None)
    }

    /// Like [`reload`](Self::reload), but `Some(mode)` switches the
    /// dataset's construction mode for this and every later rebuild — the
    /// `POST /reload?epsilon=` path between exact and approximate serving.
    pub fn reload_with_mode(
        &self,
        name: &str,
        mode: Option<BuildMode>,
    ) -> Result<Arc<Snapshot>, ReloadError> {
        let current = self
            .get(name)
            .ok_or_else(|| ReloadError::Failed(format!("no dataset {name:?}")))?;
        self.admit_rebuild(name)?;
        let result = self.rebuild(&current, mode);
        self.record_rebuild(name, &result);
        result.map_err(ReloadError::Failed)
    }

    /// The actual rebuild work (behind the breaker's admission check).
    fn rebuild(
        &self,
        current: &Snapshot,
        mode: Option<BuildMode>,
    ) -> Result<Arc<Snapshot>, String> {
        crate::fault::fail_point("engine.rebuild")
            .map_err(|e| format!("injected rebuild failure: {e}"))?;
        let mut spec = current.spec.clone();
        if let Some(mode) = mode {
            spec.build = mode;
        }
        if spec.paths.is_empty() {
            self.maybe_delay_build();
            self.publish(spec, current.query.sets.clone())
        } else {
            self.load(spec)
        }
    }

    /// Starts a reload on a background thread and returns immediately with
    /// the generation the rebuild will publish as. A second request while a
    /// build is in flight does not start another; it returns the same target
    /// with `already_building` set. Fast-fails while the rebuild breaker is
    /// open, without spawning anything.
    pub fn reload_background(&self, name: &str) -> Result<ReloadTicket, ReloadError> {
        self.reload_background_with_mode(name, None)
    }

    /// [`reload_background`](Self::reload_background) with an optional
    /// construction-mode switch (see [`reload_with_mode`](Self::reload_with_mode)).
    pub fn reload_background_with_mode(
        &self,
        name: &str,
        mode: Option<BuildMode>,
    ) -> Result<ReloadTicket, ReloadError> {
        let current = self
            .get(name)
            .ok_or_else(|| ReloadError::Failed(format!("no dataset {name:?}")))?;
        self.admit_rebuild(name)?;
        let mut builds = self.inner.builds.lock().expect("builds lock poisoned");
        if let Some(&target_generation) = builds.get(name) {
            return Ok(ReloadTicket {
                target_generation,
                already_building: true,
            });
        }
        let target_generation = current.generation + 1;
        builds.insert(name.to_string(), target_generation);
        drop(builds);

        let engine = self.clone();
        let owned = name.to_string();
        std::thread::spawn(move || {
            if let Err(e) = engine.reload_with_mode(&owned, mode) {
                eprintln!("molq-server: background reload of {owned:?} failed: {e}");
            }
            engine
                .inner
                .builds
                .lock()
                .expect("builds lock poisoned")
                .remove(&owned);
        });
        Ok(ReloadTicket {
            target_generation,
            already_building: false,
        })
    }

    /// The effective breaker policy.
    fn breaker_config(&self) -> BreakerConfig {
        self.inner
            .breaker_config
            .lock()
            .expect("breaker config lock poisoned")
            .unwrap_or_default()
    }

    /// Overrides the rebuild circuit-breaker policy (all datasets).
    pub fn set_breaker_config(&self, cfg: BreakerConfig) {
        *self
            .inner
            .breaker_config
            .lock()
            .expect("breaker config lock poisoned") = Some(cfg);
    }

    /// Admission check: refuses the rebuild while the breaker is open; an
    /// expired backoff admits one half-open probe.
    fn admit_rebuild(&self, name: &str) -> Result<(), ReloadError> {
        let mut breakers = self.inner.breakers.lock().expect("breaker lock poisoned");
        let Some(state) = breakers.get_mut(name) else {
            return Ok(());
        };
        if let Some(open_until) = state.open_until {
            let now = Instant::now();
            if now < open_until {
                return Err(ReloadError::BreakerOpen {
                    retry_in: open_until - now,
                    last_error: state.last_error.clone(),
                });
            }
            // Half-open: admit this probe; its outcome decides what's next.
            state.open_until = None;
        }
        Ok(())
    }

    /// Feeds a rebuild outcome into the breaker: success closes it, failure
    /// counts toward (or extends) the open state with exponential backoff.
    fn record_rebuild<T>(&self, name: &str, result: &Result<T, String>) {
        let mut breakers = self.inner.breakers.lock().expect("breaker lock poisoned");
        match result {
            Ok(_) => {
                breakers.remove(name);
            }
            Err(msg) => {
                let cfg = self.breaker_config();
                let state = breakers.entry(name.to_string()).or_default();
                state.consecutive_failures += 1;
                state.last_error = msg.clone();
                if state.consecutive_failures >= cfg.threshold {
                    let exponent = state.consecutive_failures - cfg.threshold;
                    let backoff = cfg
                        .base_backoff
                        .saturating_mul(1u32 << exponent.min(16))
                        .min(cfg.max_backoff);
                    state.open_until = Some(Instant::now() + backoff);
                }
            }
        }
    }

    /// Breaker state of every dataset with recorded failures, sorted by
    /// dataset name. Healthy datasets are omitted.
    pub fn breaker_reports(&self) -> Vec<BreakerReport> {
        let breakers = self.inner.breakers.lock().expect("breaker lock poisoned");
        let now = Instant::now();
        let mut out: Vec<BreakerReport> = breakers
            .iter()
            .map(|(name, s)| BreakerReport {
                dataset: name.clone(),
                consecutive_failures: s.consecutive_failures,
                retry_in: s
                    .open_until
                    .and_then(|until| until.checked_duration_since(now)),
                last_error: s.last_error.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.dataset.cmp(&b.dataset));
        out
    }

    /// `(dataset, target generation)` of every build currently in flight,
    /// sorted by dataset name.
    pub fn builds_in_flight(&self) -> Vec<(String, u64)> {
        let builds = self.inner.builds.lock().expect("builds lock poisoned");
        let mut out: Vec<(String, u64)> = builds.iter().map(|(k, &v)| (k.clone(), v)).collect();
        out.sort();
        out
    }

    #[cfg(test)]
    fn maybe_delay_build(&self) {
        let delay = *self.inner.build_delay.lock().expect("delay lock poisoned");
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
    }

    #[cfg(not(test))]
    fn maybe_delay_build(&self) {}

    /// Test hook: make every subsequent build take at least `d`.
    #[cfg(test)]
    pub fn set_build_delay(&self, d: std::time::Duration) {
        *self.inner.build_delay.lock().expect("delay lock poisoned") = Some(d);
    }

    fn publish(&self, spec: DatasetSpec, sets: Vec<ObjectSet>) -> Result<Arc<Snapshot>, String> {
        let exec = self.exec_config();
        self.publish_with(spec, |spec, generation| {
            Snapshot::build(spec, sets, generation, exec)
        })
    }

    /// Builds a snapshot (outside the lock: requests keep being served from
    /// the old snapshot for the whole, potentially long, preparation) and
    /// swaps it into the registry.
    fn publish_with(
        &self,
        spec: DatasetSpec,
        build: impl FnOnce(DatasetSpec, u64) -> Result<Snapshot, String>,
    ) -> Result<Arc<Snapshot>, String> {
        let generation = self.get(&spec.name).map_or(1, |s| s.generation + 1);
        let snapshot = Arc::new(build(spec, generation)?);
        let mut map = self.inner.datasets.write().expect("engine lock poisoned");
        map.insert(snapshot.spec.name.clone(), Arc::clone(&snapshot));
        Ok(snapshot)
    }

    /// The current snapshot of a dataset.
    pub fn get(&self, name: &str) -> Option<Arc<Snapshot>> {
        self.inner
            .datasets
            .read()
            .expect("engine lock poisoned")
            .get(name)
            .cloned()
    }

    /// Sorted dataset names.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .datasets
            .read()
            .expect("engine lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Applies one live update to a dataset: patches the diagram in place
    /// (bit-identical to a from-scratch rebuild), appends the update to the
    /// write-ahead journal (fsync'd **before** publication, so a crash
    /// right after the response still replays it), and publishes the
    /// patched snapshot as a new generation. In-flight requests keep their
    /// old view, exactly like a reload swap.
    ///
    /// Datasets with inferred bounds (`spec.bounds == None`) whose inferred
    /// MBR moves under the update are rebuilt from scratch over the new
    /// bounds instead of patched — replay takes the same deterministic
    /// path, so restart equivalence holds either way.
    pub fn apply_update(&self, name: &str, update: &Update) -> Result<UpdateOutcome, UpdateError> {
        if let Err(e) = crate::fault::fail_point("engine.apply_update") {
            self.inner.updates.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(UpdateError::Rejected(format!(
                "injected update failure: {e}"
            )));
        }
        let entry = self.live_entry(name);
        let mut slot = entry.lock().expect("live state lock poisoned");
        let current = self
            .get(name)
            .ok_or_else(|| UpdateError::NotFound(format!("no dataset {name:?}")))?;
        // The patch layer is exact-only: a quadtree-approximate diagram has
        // no basic diagrams to re-clip, and mixing approximate bases with an
        // exact-replay journal would silently change what a restart serves.
        if current.build_meta.mode.is_approx() {
            self.inner.updates.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(UpdateError::Rejected(format!(
                "dataset {name:?} was built in approximate mode (ε = {}); live updates \
                 require an exact build — reload without --epsilon first",
                current.build_meta.mode.epsilon()
            )));
        }
        if slot
            .as_ref()
            .map_or(true, |s| s.generation != current.generation)
        {
            *slot = Some(self.hydrate(&current).map_err(UpdateError::Durability)?);
        }
        let state = slot.as_mut().expect("hydrated above");

        let inferred = current.spec.bounds.is_none();
        let (stats, full_rebuild) = match apply_one(&mut state.live, inferred, update) {
            Ok(done) => done,
            Err(e) => {
                self.inner.updates.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(UpdateError::Rejected(e.to_string()));
            }
        };

        // Write-ahead: the update must be durable before anyone can observe
        // its effects. On append failure the in-memory state is dropped (it
        // has already advanced) and rehydrated from the still-unchanged
        // published snapshot on the next update; the caller gets a typed
        // durability error (507) and the engine degrades until a durable
        // write succeeds again.
        if let Some(journal) = state.journal.as_mut() {
            let appended = match crate::fault::fail_point("engine.journal_append") {
                Err(msg) => Err(format!("injected append failure: {msg}")),
                Ok(()) => journal
                    .append(&record_of(update))
                    .map_err(|e| e.to_string()),
            };
            if let Err(e) = appended {
                let path = journal.path().display().to_string();
                *slot = None;
                let d = &self.inner.durability;
                let msg = format!("update not durable: journal append to {path} failed: {e}");
                d.note_failure(&d.append_failures, &msg);
                return Err(UpdateError::Durability(msg));
            }
            self.inner.durability.note_durable_ok();
        }

        let snapshot = self
            .publish_patched(&current, state)
            .map_err(UpdateError::Conflict)?;
        state.generation = snapshot.generation;

        let u = &self.inner.updates;
        u.applied.fetch_add(1, Ordering::Relaxed);
        if full_rebuild {
            u.full_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        let micros = stats.wall.as_micros() as u64;
        u.patch_micros.fetch_add(micros, Ordering::Relaxed);
        u.last_patch_micros.store(micros, Ordering::Relaxed);
        u.cells_reclipped
            .fetch_add(stats.cells_reclipped as u64, Ordering::Relaxed);
        let a = &self.inner.arena;
        a.segments_copied_total
            .fetch_add(stats.segments_copied as u64, Ordering::Relaxed);
        a.last_segments_copied
            .store(stats.segments_copied as u64, Ordering::Relaxed);

        Ok(UpdateOutcome {
            snapshot,
            stats,
            full_rebuild,
        })
    }

    /// Compacts a dataset's update history: persists the current (fully
    /// updated) diagram as a new base snapshot at `epoch + 1` and resets the
    /// journal to empty at that epoch. Restart cost returns to a single
    /// snapshot load. Publishes a new generation carrying the new epoch.
    pub fn compact(&self, name: &str) -> Result<u64, String> {
        let entry = self.live_entry(name);
        let mut slot = entry.lock().expect("live state lock poisoned");
        let current = self
            .get(name)
            .ok_or_else(|| format!("no dataset {name:?}"))?;
        let Some(dir) = current.spec.snapshot_dir.clone() else {
            return Err(format!("dataset {name:?} has no snapshot directory"));
        };
        if current.build_meta.mode.is_approx() {
            return Err(format!(
                "dataset {name:?} was built in approximate mode; there is no update \
                 history to compact"
            ));
        }
        if slot
            .as_ref()
            .map_or(true, |s| s.generation != current.generation)
        {
            *slot = Some(self.hydrate(&current)?);
        }
        let state = slot.as_mut().expect("hydrated above");

        let fingerprint = if current.spec.paths.is_empty() {
            SourceFingerprint { entries: vec![] }
        } else {
            SourceFingerprint::of_paths(&current.spec.paths)
                .map_err(|e| format!("fingerprinting sources of {name:?}: {e}"))?
        };
        let new_epoch = state.epoch + 1;
        let stored = StoredSnapshot {
            name: current.spec.name.clone(),
            boundary: current.spec.boundary,
            eps: current.spec.eps,
            explicit_bounds: current.spec.bounds,
            fingerprint,
            sets: state.live.sets().to_vec(),
            movd: state.live.index().arena().clone(),
            grid: state.live.index().grid().clone(),
            update_epoch: new_epoch,
            build: current.build_meta,
        };
        std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        self.sweep_snapshot_dir(&dir);
        // Base first, then the journal reset: the save's directory fsync
        // orders the new base before the emptied journal, so no crash point
        // leaves an old base next to a new-epoch journal.
        self.save_with_retry(&stored, &snapshot_path(&dir, name))?;
        match state.journal.as_mut() {
            Some(journal) => journal.reset(new_epoch).map_err(|e| e.to_string())?,
            None => {
                state.journal = Some(
                    Journal::create(&journal_path(&dir, name), name, new_epoch)
                        .map_err(|e| e.to_string())?,
                );
            }
        }
        state.epoch = new_epoch;
        let snapshot = self.publish_patched(&current, state)?;
        state.generation = snapshot.generation;
        self.inner
            .updates
            .compactions
            .fetch_add(1, Ordering::Relaxed);
        Ok(new_epoch)
    }

    /// A point-in-time copy of the live-update counters.
    pub fn update_stats(&self) -> UpdateStatsReport {
        let u = &self.inner.updates;
        UpdateStatsReport {
            applied: u.applied.load(Ordering::Relaxed),
            rejected: u.rejected.load(Ordering::Relaxed),
            replayed: u.replayed.load(Ordering::Relaxed),
            compactions: u.compactions.load(Ordering::Relaxed),
            full_rebuilds: u.full_rebuilds.load(Ordering::Relaxed),
            patch_micros_total: u.patch_micros.load(Ordering::Relaxed),
            last_patch_micros: u.last_patch_micros.load(Ordering::Relaxed),
            cells_reclipped: u.cells_reclipped.load(Ordering::Relaxed),
        }
    }

    /// A point-in-time copy of the durability counters.
    pub fn durability(&self) -> DurabilityReport {
        let d = &self.inner.durability;
        DurabilityReport {
            append_failures: d.append_failures.load(Ordering::Relaxed),
            save_retries: d.save_retries.load(Ordering::Relaxed),
            save_failures: d.save_failures.load(Ordering::Relaxed),
            salvages: d.salvages.load(Ordering::Relaxed),
            torn_tails: d.torn_tails.load(Ordering::Relaxed),
            journals_set_aside: d.journals_set_aside.load(Ordering::Relaxed),
            tmp_swept: d.tmp_swept.load(Ordering::Relaxed),
            degraded: d.degraded.load(Ordering::Relaxed) != 0,
            last_error: d
                .last_error
                .lock()
                .expect("durability lock poisoned")
                .clone(),
        }
    }

    /// A point-in-time copy of the arena counters.
    pub fn arena_stats(&self) -> ArenaStatsReport {
        let a = &self.inner.arena;
        ArenaStatsReport {
            last_restore_copy_micros: a.last_restore_copy_micros.load(Ordering::Relaxed),
            last_restore_validate_micros: a.last_restore_validate_micros.load(Ordering::Relaxed),
            segments_copied_total: a.segments_copied_total.load(Ordering::Relaxed),
            last_segments_copied: a.last_segments_copied.load(Ordering::Relaxed),
        }
    }

    /// Records how a snapshot restore's decode wall time split between bulk
    /// lane copies and structural validation.
    fn record_restore_timings(&self, t: DecodeTimings) {
        let a = &self.inner.arena;
        a.last_restore_copy_micros.store(
            t.copy.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
        a.last_restore_validate_micros.store(
            t.validate.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// The per-dataset live-state cell (created on first use).
    fn live_entry(&self, name: &str) -> Arc<Mutex<Option<LiveState>>> {
        self.inner
            .live
            .lock()
            .expect("live map lock poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Builds the live-update state mirroring a published snapshot: the
    /// incremental diagram rehydrates from the served index (only per-set
    /// basic diagrams are rebuilt), and the journal opens at the snapshot's
    /// epoch. A journal that can't be opened (stale epoch after a crashed
    /// compaction, corruption) is set aside and recreated empty — its
    /// updates are already baked into the served snapshot.
    fn hydrate(&self, snap: &Snapshot) -> Result<LiveState, String> {
        let index = snap.index.clone();
        let live = LiveMovd::from_index(
            snap.query.sets.clone(),
            index,
            snap.spec.boundary,
            self.exec_config(),
        )
        .map_err(|e| e.to_string())?;
        let journal = match snap.spec.snapshot_dir.as_ref() {
            None => None,
            Some(dir) => {
                std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
                let path = journal_path(dir, &snap.spec.name);
                let journal =
                    match Journal::open_or_create(&path, &snap.spec.name, snap.update_epoch) {
                        Ok(journal) => journal,
                        Err(e) => {
                            eprintln!(
                                "molq-server: journal {} unusable ({e}); starting a fresh one",
                                path.display()
                            );
                            self.inner
                                .durability
                                .journals_set_aside
                                .fetch_add(1, Ordering::Relaxed);
                            let _ = set_aside_journal(&RealVfs, &path, "stale");
                            Journal::create(&path, &snap.spec.name, snap.update_epoch)
                                .map_err(|e| e.to_string())?
                        }
                    };
                Some(journal)
            }
        };
        Ok(LiveState {
            live,
            journal,
            epoch: snap.update_epoch,
            generation: snap.generation,
        })
    }

    /// Publishes the live state's diagram as the dataset's next generation.
    /// Refuses (without publishing) when another publication slipped in
    /// between — the caller's state is stale and self-heals on retry.
    fn publish_patched(
        &self,
        current: &Snapshot,
        state: &LiveState,
    ) -> Result<Arc<Snapshot>, String> {
        let query = MolqQuery::new(state.live.sets().to_vec(), state.live.bounds())
            .with_rule(StoppingRule::Either(current.spec.eps, 100_000));
        query.validate().map_err(|e| e.to_string())?;
        let snapshot = Arc::new(Snapshot::assemble(
            current.spec.clone(),
            query,
            state.live.index().clone(),
            current.generation + 1,
            state.epoch,
            current.build_meta,
        ));
        let mut map = self.inner.datasets.write().expect("engine lock poisoned");
        match map.get(&snapshot.spec.name) {
            Some(served) if served.generation == current.generation => {
                map.insert(snapshot.spec.name.clone(), Arc::clone(&snapshot));
                Ok(snapshot)
            }
            _ => Err(format!(
                "dataset {:?} changed while the update was in flight; retry",
                snapshot.spec.name
            )),
        }
    }

    /// Brings a recovered base snapshot up to date with its journal records,
    /// following the [`Recovery`]'s disposition:
    ///
    /// * no journal / clean journal → replay everything (possibly nothing)
    ///   and publish;
    /// * torn tail or salvaged prefix → replay the valid record prefix;
    ///   reopening the journal truncates the dropped tail so appends
    ///   continue from the last durable record;
    /// * set-aside (defective header, stale dataset/epoch) → move the file
    ///   out of the way and publish the base alone;
    /// * a checksum-valid record that no longer applies to this base → set
    ///   the journal aside as `.corrupt` and publish the base alone. Every
    ///   update the base itself captured still survives — a bad journal
    ///   never costs the base, and never forces a CSV rebuild.
    fn restore_recovered(
        &self,
        spec: &DatasetSpec,
        recovery: Recovery,
    ) -> Result<Arc<Snapshot>, String> {
        let dir = spec.snapshot_dir.as_ref().expect("restore implies dir");
        let path = journal_path(dir, &spec.name);
        let Recovery {
            base: stored,
            records,
            disposition,
            timings,
        } = recovery;
        self.record_restore_timings(timings);
        let d = &self.inner.durability;
        match &disposition {
            JournalDisposition::TornTail { dropped_bytes } => {
                d.torn_tails.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "molq-server: journal {} ended in a torn record ({dropped_bytes} partial \
                     byte(s), crash mid-append); replaying the {} complete update(s)",
                    path.display(),
                    records.len()
                );
            }
            JournalDisposition::Salvaged {
                dropped_bytes,
                defect,
            } => {
                d.salvages.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "molq-server: journal {} tail defective ({defect}); salvaged the \
                     {}-record prefix, dropping {dropped_bytes} byte(s)",
                    path.display(),
                    records.len()
                );
            }
            JournalDisposition::SetAside { reason } => {
                d.journals_set_aside.fetch_add(1, Ordering::Relaxed);
                match set_aside_journal(&RealVfs, &path, "stale") {
                    Ok(aside) => eprintln!(
                        "molq-server: journal {} unusable ({reason}); set aside as {}",
                        path.display(),
                        aside.display()
                    ),
                    Err(e) => eprintln!(
                        "molq-server: journal {} unusable ({reason}); setting it aside failed: {e}",
                        path.display()
                    ),
                }
            }
            JournalDisposition::Missing | JournalDisposition::Clean => {}
        }

        // An approximate base never replays a journal: the exact patch
        // layer cannot apply to a quadtree diagram, and silently mixing the
        // modes would change what a restart serves. Any records found are
        // set aside and the base serves alone.
        if stored.build.mode.is_approx() && !records.is_empty() {
            d.journals_set_aside.fetch_add(1, Ordering::Relaxed);
            match set_aside_journal(&RealVfs, &path, "modemix") {
                Ok(aside) => eprintln!(
                    "molq-server: journal {} holds {} update(s) but the base snapshot was \
                     built in approximate mode (ε = {}); set aside as {}; serving the base \
                     alone",
                    path.display(),
                    records.len(),
                    stored.build.mode.epsilon(),
                    aside.display()
                ),
                Err(e) => eprintln!(
                    "molq-server: journal {} holds update(s) for an approximate base; \
                     setting it aside failed: {e}",
                    path.display()
                ),
            }
            return self.publish_with(spec.clone(), |spec, generation| {
                Snapshot::from_stored(spec, stored, generation)
            });
        }

        if records.is_empty() {
            return self.publish_with(spec.clone(), |spec, generation| {
                Snapshot::from_stored(spec, stored, generation)
            });
        }

        // Replay onto a copy of the base's parts, so a record that turns out
        // not to apply can still fall back to serving the base alone.
        let epoch = stored.update_epoch;
        let base_build = stored.build;
        let index = MovdIndex::from_arena(stored.movd.clone(), stored.grid.clone())?;
        let mut live = LiveMovd::from_index(
            stored.sets.clone(),
            index,
            spec.boundary,
            self.exec_config(),
        )
        .map_err(|e| e.to_string())?;
        let inferred = spec.bounds.is_none();
        for (i, record) in records.iter().enumerate() {
            if let Err(e) = apply_one(&mut live, inferred, &update_of(record)) {
                // Checksum-valid but inapplicable: the journal does not
                // describe this base. Set it aside and serve the base alone.
                d.journals_set_aside.fetch_add(1, Ordering::Relaxed);
                match set_aside_journal(&RealVfs, &path, "corrupt") {
                    Ok(aside) => eprintln!(
                        "molq-server: journal record {i} no longer applies ({e}); set aside \
                         as {}; serving the base snapshot alone",
                        aside.display()
                    ),
                    Err(rename_err) => eprintln!(
                        "molq-server: journal record {i} no longer applies ({e}); setting \
                         {} aside failed: {rename_err}",
                        path.display()
                    ),
                }
                return self.publish_with(spec.clone(), |spec, generation| {
                    Snapshot::from_stored(spec, stored, generation)
                });
            }
            self.inner.updates.replayed.fetch_add(1, Ordering::Relaxed);
        }

        // Reopen for appends (truncates any torn/defective tail) and publish.
        let journal =
            Journal::open_or_create(&path, &spec.name, epoch).map_err(|e| e.to_string())?;
        let snapshot = self.publish_with(spec.clone(), |spec, generation| {
            let query = MolqQuery::new(live.sets().to_vec(), live.bounds())
                .with_rule(StoppingRule::Either(spec.eps, 100_000));
            query.validate().map_err(|e| e.to_string())?;
            Ok(Snapshot::assemble(
                spec,
                query,
                live.index().clone(),
                generation,
                epoch,
                base_build,
            ))
        })?;
        let entry = self.live_entry(&spec.name);
        *entry.lock().expect("live state lock poisoned") = Some(LiveState {
            live,
            journal: Some(journal),
            epoch,
            generation: snapshot.generation,
        });
        Ok(snapshot)
    }
}

/// The journal form of an update (shared with the offline `molq update` CLI).
pub fn record_of(update: &Update) -> JournalRecord {
    match *update {
        Update::Insert { set, ref object } => JournalRecord::Insert {
            set: set as u32,
            x: object.loc.x,
            y: object.loc.y,
            w_t: object.w_t,
            w_o: object.w_o,
        },
        Update::Remove { set, index } => JournalRecord::Remove {
            set: set as u32,
            index: index as u32,
        },
    }
}

/// The update a journal record describes (shared with the offline CLI).
pub fn update_of(record: &JournalRecord) -> Update {
    match *record {
        JournalRecord::Insert {
            set,
            x,
            y,
            w_t,
            w_o,
        } => Update::Insert {
            set: set as usize,
            object: SpatialObject {
                loc: Point::new(x, y),
                w_t,
                w_o,
            },
        },
        JournalRecord::Remove { set, index } => Update::Remove {
            set: set as usize,
            index: index as usize,
        },
    }
}

/// The object sets after an update, or `None` when the update is invalid
/// (the incremental layer then reports the typed error).
fn sets_after(sets: &[ObjectSet], update: &Update) -> Option<Vec<ObjectSet>> {
    let mut out = sets.to_vec();
    match update {
        Update::Insert { set, object } => {
            out.get_mut(*set)?.objects.push(*object);
        }
        Update::Remove { set, index } => {
            let target = out.get_mut(*set)?;
            if *index >= target.objects.len() || target.objects.len() < 2 {
                return None;
            }
            target.objects.remove(*index);
        }
    }
    Some(out)
}

/// Applies one update to a live diagram. When `inferred_bounds` is set and
/// the update moves the dataset's inferred search space (the exact
/// inference [`Snapshot::build`] runs), the diagram is rebuilt from scratch
/// over the new bounds — patching can't change the space itself. Returns
/// the patch stats and whether the full-rebuild path ran. The live
/// path, journal replay, and the offline `molq update` CLI call this, so
/// every consumer patches bit-for-bit identically.
pub fn apply_one(
    live: &mut LiveMovd,
    inferred_bounds: bool,
    update: &Update,
) -> Result<(PatchStats, bool), MolqError> {
    if inferred_bounds {
        if let Some(new_sets) = sets_after(live.sets(), update) {
            let m = new_sets
                .iter()
                .flat_map(|s| s.objects.iter().map(|o| o.loc))
                .fold(Mbr::EMPTY, |acc, p| acc.union(&Mbr::of_point(p)));
            if !m.is_empty() {
                let new_bounds = m.inflate(0.05 * m.margin().max(1.0));
                let old = live.bounds();
                let moved = [
                    (new_bounds.min_x, old.min_x),
                    (new_bounds.min_y, old.min_y),
                    (new_bounds.max_x, old.max_x),
                    (new_bounds.max_y, old.max_y),
                ]
                .iter()
                .any(|(a, b)| a.to_bits() != b.to_bits());
                if moved {
                    let t0 = Instant::now();
                    let rebuilt = LiveMovd::build(new_sets, new_bounds, live.mode(), live.exec())?;
                    let stats = PatchStats {
                        cells_reclipped: 0,
                        ovrs_kept: 0,
                        ovrs_rederived: rebuilt.movd().len(),
                        grid_patched: false,
                        segments_copied: 0,
                        wall: t0.elapsed(),
                    };
                    *live = rebuilt;
                    return Ok((stats, true));
                }
            }
        }
    }
    live.apply(update).map(|stats| (stats, false))
}

/// `true` when a persisted snapshot was built by this exact recipe from
/// these exact sources: same name, boundary mode, ε (bit-compared), build
/// mode (construction ε bit-compared too, so changing `--epsilon` forces a
/// rebuild instead of silently serving the other mode's diagram), explicit
/// bounds, and source fingerprint.
fn snapshot_matches(
    stored: &StoredSnapshot,
    spec: &DatasetSpec,
    fingerprint: &SourceFingerprint,
) -> bool {
    let bounds_match = match (&stored.explicit_bounds, &spec.bounds) {
        (None, None) => true,
        (Some(a), Some(b)) => {
            (a.min_x, a.min_y, a.max_x, a.max_y) == (b.min_x, b.min_y, b.max_x, b.max_y)
        }
        _ => false,
    };
    stored.name == spec.name
        && stored.boundary == spec.boundary
        && stored.eps.to_bits() == spec.eps.to_bits()
        && stored.build.mode.bits_eq(&spec.build)
        && bounds_match
        && &stored.fingerprint == fingerprint
}

#[cfg(test)]
mod tests {
    use super::*;
    use molq_store::load_journal;

    fn pseudo_set(name: &str, n: usize, seed: u64) -> ObjectSet {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        ObjectSet::uniform(
            name,
            1.0,
            (0..n)
                .map(|_| Point::new(next() * 100.0, next() * 100.0))
                .collect(),
        )
    }

    fn spec(name: &str) -> DatasetSpec {
        DatasetSpec {
            bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
            ..DatasetSpec::new(name, Vec::new())
        }
    }

    /// A unique temp dir per test, with CSV layers written into it.
    fn csv_fixture(tag: &str, layers: &[(&str, usize, u64)]) -> (PathBuf, Vec<PathBuf>) {
        let dir = std::env::temp_dir().join(format!("molq_server_engine_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let paths = layers
            .iter()
            .map(|&(name, n, seed)| {
                let path = dir.join(format!("{name}.csv"));
                let mut f = File::create(&path).unwrap();
                molq_datagen::csv::write_csv(&pseudo_set(name, n, seed), &mut f).unwrap();
                path
            })
            .collect();
        (dir, paths)
    }

    #[test]
    fn load_get_and_reload_bump_generations() {
        let engine = Engine::new();
        let sets = vec![pseudo_set("a", 10, 1), pseudo_set("b", 12, 2)];
        let s1 = engine.load_from_sets(spec("d"), sets).unwrap();
        assert_eq!(s1.generation, 1);
        assert_eq!(s1.set_count(), 2);
        assert_eq!(s1.object_count(), 22);

        let s2 = engine.reload("d").unwrap();
        assert_eq!(s2.generation, 2);
        let current = engine.get("d").unwrap();
        assert_eq!(current.generation, 2);
        // The old snapshot stays valid for holders of the Arc.
        assert_eq!(s1.generation, 1);
        assert_eq!(engine.names(), vec!["d".to_string()]);
    }

    #[test]
    fn parallel_exec_config_builds_the_same_diagram() {
        let sets = vec![pseudo_set("a", 20, 41), pseudo_set("b", 18, 42)];
        let serial = Engine::new();
        serial.set_exec_config(ExecConfig::serial());
        let s = serial.load_from_sets(spec("d"), sets.clone()).unwrap();
        let parallel = Engine::new();
        parallel.set_exec_config(ExecConfig::new(4));
        assert_eq!(parallel.exec_config(), ExecConfig::new(4));
        let p = parallel.load_from_sets(spec("d"), sets).unwrap();
        assert_eq!(s.index.movd().ovrs, p.index.movd().ovrs);
        // Reloads keep the configured parallelism and still match.
        let r = parallel.reload("d").unwrap();
        assert_eq!(r.index.movd().ovrs, s.index.movd().ovrs);
    }

    #[test]
    fn quantization_is_stable_and_tight() {
        let engine = Engine::new();
        let snap = engine
            .load_from_sets(
                spec("q"),
                vec![pseudo_set("a", 8, 3), pseudo_set("b", 8, 4)],
            )
            .unwrap();
        let p = Point::new(33.333333, 66.666666);
        let (cell, snapped) = snap.quantize(p);
        // The snap error is below one quantum, and points within half a
        // quantum of a lattice point land in that lattice point's cell.
        assert!(snapped.dist(p) <= snap.quantum);
        let (cell2, snapped2) = snap.quantize(Point::new(
            snapped.x + snap.quantum * 0.4,
            snapped.y - snap.quantum * 0.4,
        ));
        assert_eq!(cell, cell2);
        assert_eq!(snapped, snapped2);
    }

    #[test]
    fn missing_datasets_and_empty_inputs_error() {
        let engine = Engine::new();
        assert!(engine.get("nope").is_none());
        assert!(engine.reload("nope").is_err());
        assert!(engine.reload_background("nope").is_err());
        assert!(engine.load(DatasetSpec::new("d", Vec::new())).is_err());
        assert!(engine
            .load_from_sets(DatasetSpec::new("d", Vec::new()), Vec::new())
            .is_err());
    }

    #[test]
    fn file_backed_load_roundtrips() {
        let (_dir, mut paths) = csv_fixture("plain", &[("layer", 9, 5)]);
        paths.push(paths[0].clone());

        let engine = Engine::new();
        let spec = DatasetSpec {
            bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
            ..DatasetSpec::new("files", paths)
        };
        let snap = engine.load(spec).unwrap();
        assert_eq!(snap.set_count(), 2);
        assert_eq!(snap.object_count(), 18);
        let re = engine.reload("files").unwrap();
        assert_eq!(re.generation, 2);
    }

    #[test]
    fn snapshot_persists_restores_and_survives_corruption() {
        let (dir, paths) = csv_fixture("persist", &[("a", 14, 6), ("b", 11, 7)]);
        let spec = DatasetSpec {
            bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
            snapshot_dir: Some(dir.clone()),
            ..DatasetSpec::new("d", paths.clone())
        };
        let file = spec.snapshot_file().unwrap();

        // Cold start: built from CSVs, snapshot persisted.
        let (built, outcome) = Engine::new().load_traced(spec.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::BuiltFromCsv);
        assert!(file.exists());

        // Warm start: restored from the snapshot, answers identical.
        let (restored, outcome) = Engine::new().load_traced(spec.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);
        assert_eq!(restored.generation, 1);
        assert_eq!(restored.object_count(), built.object_count());
        assert_eq!(restored.index.movd().len(), built.index.movd().len());
        for gi in 0..25 {
            let l = Point::new(
                (gi as f64 * 7.7 + 0.3) % 100.0,
                (gi as f64 * 3.9 + 0.9) % 100.0,
            );
            assert_eq!(built.index.locate_id(l), restored.index.locate_id(l));
        }

        // Corruption: flip one payload byte → checksum fails → clean
        // rebuild, and the re-saved snapshot restores again.
        let mut bytes = std::fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&file, &bytes).unwrap();
        let (_, outcome) = Engine::new().load_traced(spec.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::BuiltFromCsv);
        let (_, outcome) = Engine::new().load_traced(spec.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);

        // A spec change (different ε) makes the snapshot stale (and the
        // rebuild re-saves under the new recipe).
        let changed = DatasetSpec {
            eps: 1e-6,
            ..spec.clone()
        };
        let (_, outcome) = Engine::new().load_traced(changed.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::BuiltFromCsv);
        let (_, outcome) = Engine::new().load_traced(changed).unwrap();
        assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);

        // Edited source CSV: fingerprint mismatch → rebuild.
        let set = pseudo_set("a", 14, 99);
        let mut f = File::create(&paths[0]).unwrap();
        molq_datagen::csv::write_csv(&set, &mut f).unwrap();
        let (_, outcome) = Engine::new().load_traced(spec).unwrap();
        assert_eq!(outcome, LoadOutcome::BuiltFromCsv);
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_recovers() {
        let (dir, paths) = csv_fixture("breaker", &[("a", 10, 13), ("b", 10, 14)]);
        let engine = Engine::new();
        engine.set_breaker_config(BreakerConfig {
            threshold: 2,
            base_backoff: Duration::from_millis(80),
            max_backoff: Duration::from_secs(1),
        });
        let spec = DatasetSpec {
            bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
            ..DatasetSpec::new("d", paths.clone())
        };
        let snap = engine.load(spec).unwrap();
        assert_eq!(snap.generation, 1);
        assert!(engine.breaker_reports().is_empty());

        // Break the source: every rebuild now fails naturally.
        let saved = std::fs::read(&paths[0]).unwrap();
        std::fs::remove_file(&paths[0]).unwrap();

        // First failure: recorded, breaker still closed.
        assert!(matches!(engine.reload("d"), Err(ReloadError::Failed(_))));
        let report = &engine.breaker_reports()[0];
        assert_eq!(report.consecutive_failures, 1);
        assert!(report.retry_in.is_none());

        // Second failure reaches the threshold: breaker opens.
        assert!(matches!(engine.reload("d"), Err(ReloadError::Failed(_))));
        let report = &engine.breaker_reports()[0];
        assert_eq!(report.consecutive_failures, 2);
        assert!(report.retry_in.is_some());
        assert!(report.last_error.contains("No such file"), "{report:?}");

        // While open, reloads (sync and background) fast-fail without
        // attempting a build, and the old generation keeps serving.
        match engine.reload("d") {
            Err(ReloadError::BreakerOpen { last_error, .. }) => {
                assert!(last_error.contains("No such file"), "{last_error:?}");
            }
            other => panic!("expected BreakerOpen, got {other:?}"),
        }
        assert!(matches!(
            engine.reload_background("d"),
            Err(ReloadError::BreakerOpen { .. })
        ));
        assert_eq!(engine.get("d").unwrap().generation, 1);
        assert_eq!(engine.breaker_reports()[0].consecutive_failures, 2);

        // After the backoff a half-open probe is admitted; it fails and
        // re-opens the breaker with a doubled backoff.
        std::thread::sleep(Duration::from_millis(100));
        assert!(matches!(engine.reload("d"), Err(ReloadError::Failed(_))));
        let report = &engine.breaker_reports()[0];
        assert_eq!(report.consecutive_failures, 3);
        let retry_in = report.retry_in.expect("re-opened");
        assert!(retry_in > Duration::from_millis(100), "{retry_in:?}");

        // Repair the source; once the backoff expires the probe succeeds,
        // the breaker closes, and the generation finally advances.
        std::fs::write(&paths[0], &saved).unwrap();
        std::thread::sleep(retry_in + Duration::from_millis(20));
        let rebuilt = engine.reload("d").unwrap();
        assert_eq!(rebuilt.generation, 2);
        assert!(engine.breaker_reports().is_empty());
        drop(dir);
    }

    #[test]
    fn live_updates_patch_publish_and_replay() {
        let (dir, paths) = csv_fixture("live", &[("a", 12, 21), ("b", 10, 22)]);
        let spec = DatasetSpec {
            bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
            snapshot_dir: Some(dir.clone()),
            ..DatasetSpec::new("d", paths.clone())
        };
        let engine = Engine::new();
        let s1 = engine.load(spec.clone()).unwrap();
        assert_eq!(s1.generation, 1);
        assert_eq!(s1.update_epoch, 0);

        let insert = Update::Insert {
            set: 0,
            object: SpatialObject {
                loc: Point::new(41.5, 43.25),
                w_t: 1.0,
                w_o: 2.0,
            },
        };
        let outcome = engine.apply_update("d", &insert).unwrap();
        assert_eq!(outcome.snapshot.generation, 2);
        assert!(!outcome.full_rebuild);
        assert_eq!(engine.get("d").unwrap().object_count(), 23);

        let remove = Update::Remove { set: 1, index: 3 };
        let outcome = engine.apply_update("d", &remove).unwrap();
        assert_eq!(outcome.snapshot.generation, 3);

        let stats = engine.update_stats();
        assert_eq!(stats.applied, 2);
        assert_eq!(stats.rejected, 0);
        assert!(stats.patch_micros_total > 0);

        // The patched diagram is bit-identical to building from the updated
        // sets from scratch.
        let served = engine.get("d").unwrap();
        let fresh = Engine::new()
            .load_from_sets(
                DatasetSpec {
                    bounds: spec.bounds,
                    ..DatasetSpec::new("d", Vec::new())
                },
                served.query.sets.clone(),
            )
            .unwrap();
        assert_eq!(served.index.movd().ovrs, fresh.index.movd().ovrs);

        // Restart: base + journal replay reproduces the served diagram.
        let journal_file = journal_path(&dir, "d");
        assert!(journal_file.exists());
        assert_eq!(load_journal(&journal_file).unwrap().records.len(), 2);
        let restarted = Engine::new();
        let (replayed, outcome) = restarted.load_traced(spec.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);
        assert_eq!(replayed.index.movd().ovrs, served.index.movd().ovrs);
        assert_eq!(replayed.object_count(), 22);
        assert_eq!(restarted.update_stats().replayed, 2);

        // Updates keep appending where the journal left off after a restore.
        restarted.apply_update("d", &insert).unwrap();
        assert_eq!(load_journal(&journal_file).unwrap().records.len(), 3);

        // A corrupted record inside the journal no longer forces a CSV
        // rebuild: the valid prefix (2 records) is salvaged, replayed, and
        // the defective tail truncated — updates keep flowing after.
        let clean_len = std::fs::metadata(&journal_file).unwrap().len();
        let mut bytes = std::fs::read(&journal_file).unwrap();
        let off = bytes.len() - 30; // inside the 3rd (last) record
        bytes[off] ^= 0x08;
        std::fs::write(&journal_file, &bytes).unwrap();
        let salvaging = Engine::new();
        let (snap, outcome) = salvaging.load_traced(spec.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);
        assert_eq!(snap.object_count(), 22); // insert + remove, not the 3rd
        assert_eq!(salvaging.update_stats().replayed, 2);
        let report = salvaging.durability();
        assert_eq!(report.salvages, 1);
        assert!(!report.degraded);
        // The reopen truncated the corrupt tail back to the valid prefix.
        assert!(journal_file.exists());
        assert_eq!(
            std::fs::metadata(&journal_file).unwrap().len(),
            clean_len - 48
        );
        salvaging.apply_update("d", &insert).unwrap();
        assert_eq!(load_journal(&journal_file).unwrap().records.len(), 3);

        // A defective journal *header* can't be salvaged: the journal is
        // set aside and the base serves alone — still no CSV rebuild.
        let mut bytes = std::fs::read(&journal_file).unwrap();
        bytes[2] ^= 0xff; // inside the magic
        std::fs::write(&journal_file, &bytes).unwrap();
        let aside_engine = Engine::new();
        let (snap, outcome) = aside_engine.load_traced(spec.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);
        assert_eq!(snap.object_count(), 22); // the base alone
        assert!(!journal_file.exists());
        assert!(journal_file.with_extension("journal.stale").exists());
        assert_eq!(aside_engine.durability().journals_set_aside, 1);
        // ... after which base + (fresh) journal restores again.
        let (_, outcome) = Engine::new().load_traced(spec).unwrap();
        assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);
    }

    #[test]
    fn rejected_updates_and_inferred_bounds_rebuilds() {
        let engine = Engine::new();
        let sets = vec![pseudo_set("a", 9, 31), pseudo_set("b", 8, 32)];
        let inferred_spec = DatasetSpec::new("d", Vec::new()); // bounds: None
        engine.load_from_sets(inferred_spec, sets.clone()).unwrap();
        let gen1 = engine.get("d").unwrap().generation;

        // Duplicate coordinates: rejected, nothing published.
        let dup = Update::Insert {
            set: 0,
            object: SpatialObject {
                loc: sets[0].objects[0].loc,
                w_t: 1.0,
                w_o: 1.0,
            },
        };
        assert!(engine.apply_update("d", &dup).is_err());
        assert_eq!(engine.get("d").unwrap().generation, gen1);
        assert_eq!(engine.update_stats().rejected, 1);

        // An interior insert (the centroid is inside the inferred MBR by
        // construction) leaves the bounds alone: incremental.
        let locs: Vec<Point> = sets
            .iter()
            .flat_map(|s| s.objects.iter().map(|o| o.loc))
            .collect();
        let centroid = Point::new(
            locs.iter().map(|p| p.x).sum::<f64>() / locs.len() as f64,
            locs.iter().map(|p| p.y).sum::<f64>() / locs.len() as f64,
        );
        let inside = Update::Insert {
            set: 0,
            object: SpatialObject {
                loc: centroid,
                w_t: 1.0,
                w_o: 1.0,
            },
        };
        let outcome = engine.apply_update("d", &inside).unwrap();
        assert!(!outcome.full_rebuild);

        // An insert far outside moves the inferred MBR: full rebuild over
        // the new space, still published as the next generation.
        let outside = Update::Insert {
            set: 0,
            object: SpatialObject {
                loc: Point::new(500.0, 500.0),
                w_t: 1.0,
                w_o: 1.0,
            },
        };
        let before = engine.get("d").unwrap();
        let outcome = engine.apply_update("d", &outside).unwrap();
        assert!(outcome.full_rebuild);
        assert_eq!(outcome.snapshot.generation, before.generation + 1);
        assert!(outcome.snapshot.query.bounds.max_x > before.query.bounds.max_x);
        assert_eq!(engine.update_stats().full_rebuilds, 1);

        // Missing dataset errors.
        assert!(engine.apply_update("nope", &inside).is_err());
    }

    #[test]
    fn compaction_bumps_epoch_and_resets_journal() {
        let (dir, paths) = csv_fixture("compact", &[("a", 11, 51), ("b", 9, 52)]);
        let spec = DatasetSpec {
            bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
            snapshot_dir: Some(dir.clone()),
            ..DatasetSpec::new("d", paths)
        };
        let engine = Engine::new();
        engine.load(spec.clone()).unwrap();
        for i in 0..3 {
            engine
                .apply_update(
                    "d",
                    &Update::Insert {
                        set: 0,
                        object: SpatialObject {
                            loc: Point::new(20.0 + i as f64 * 3.5, 70.0 - i as f64 * 2.25),
                            w_t: 1.0,
                            w_o: 1.0,
                        },
                    },
                )
                .unwrap();
        }
        let journal_file = journal_path(&dir, "d");
        assert_eq!(load_journal(&journal_file).unwrap().records.len(), 3);

        let epoch = engine.compact("d").unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(engine.get("d").unwrap().update_epoch, 1);
        assert_eq!(engine.update_stats().compactions, 1);
        let load = load_journal(&journal_file).unwrap();
        assert_eq!((load.epoch, load.records.len()), (1, 0));

        // Restart: the compacted base restores directly, nothing to replay.
        let served = engine.get("d").unwrap();
        let restarted = Engine::new();
        let (snap, outcome) = restarted.load_traced(spec.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);
        assert_eq!(snap.update_epoch, 1);
        assert_eq!(snap.index.movd().ovrs, served.index.movd().ovrs);
        assert_eq!(restarted.update_stats().replayed, 0);

        // Post-compaction updates journal at the new epoch and replay again.
        engine
            .apply_update("d", &Update::Remove { set: 1, index: 0 })
            .unwrap();
        let served = engine.get("d").unwrap();
        let restarted = Engine::new();
        let (snap, outcome) = restarted.load_traced(spec).unwrap();
        assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);
        assert_eq!(restarted.update_stats().replayed, 1);
        assert_eq!(snap.index.movd().ovrs, served.index.movd().ovrs);

        // Compacting a dataset without persistence is refused.
        let memory = Engine::new();
        memory
            .load_from_sets(
                super::tests::spec("m"),
                vec![pseudo_set("a", 8, 61), pseudo_set("b", 8, 62)],
            )
            .unwrap();
        assert!(memory.compact("m").is_err());
        assert!(memory.compact("nope").is_err());
    }

    #[test]
    fn background_reload_is_non_blocking_and_deduplicated() {
        let engine = Engine::new();
        engine
            .load_from_sets(
                spec("bg"),
                vec![pseudo_set("a", 10, 8), pseudo_set("b", 10, 9)],
            )
            .unwrap();
        engine.set_build_delay(std::time::Duration::from_millis(150));

        let start = std::time::Instant::now();
        let ticket = engine.reload_background("bg").unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_millis(100),
            "reload_background blocked for {:?}",
            start.elapsed()
        );
        assert_eq!(ticket.target_generation, 2);
        assert!(!ticket.already_building);
        // The serving snapshot is untouched while the build runs.
        assert_eq!(engine.get("bg").unwrap().generation, 1);
        assert_eq!(engine.builds_in_flight(), vec![("bg".to_string(), 2)]);

        // A second request joins the in-flight build instead of stacking.
        let again = engine.reload_background("bg").unwrap();
        assert_eq!(again.target_generation, 2);
        assert!(again.already_building);

        // The build completes and publishes its target generation.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while engine.get("bg").unwrap().generation != 2 {
            assert!(std::time::Instant::now() < deadline, "build never finished");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !engine.builds_in_flight().is_empty() {
            assert!(std::time::Instant::now() < deadline, "build never cleared");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }

    #[test]
    fn approx_spec_builds_serves_and_refuses_updates() {
        let engine = Engine::new();
        let approx_spec = DatasetSpec {
            build: BuildMode::from_epsilon(Some(0.25)),
            ..spec("ap")
        };
        let sets = vec![pseudo_set("a", 30, 71), pseudo_set("b", 25, 72)];
        let snap = engine.load_from_sets(approx_spec, sets.clone()).unwrap();
        assert!(snap.build_meta.mode.is_approx());
        assert_eq!(snap.build_meta.certified_factor(), 1.25);
        assert!(snap.build_meta.leaves > 0);
        assert!(snap.build_meta.fully_certified());

        // The approximate optimum is within the certified factor of the
        // exact one.
        let exact = Engine::new().load_from_sets(spec("ex"), sets).unwrap();
        let a = solve_prebuilt(&snap.query, snap.index.movd()).unwrap();
        let e = solve_prebuilt(&exact.query, exact.index.movd()).unwrap();
        let slack = 1.0 + 1e-6;
        assert!(a.cost >= e.cost / slack);
        assert!(a.cost <= snap.build_meta.certified_factor() * e.cost * slack);

        // Live updates are exact-only.
        let insert = Update::Insert {
            set: 0,
            object: SpatialObject {
                loc: Point::new(10.0, 20.0),
                w_t: 1.0,
                w_o: 1.0,
            },
        };
        match engine.apply_update("ap", &insert) {
            Err(UpdateError::Rejected(msg)) => {
                assert!(msg.contains("approximate"), "{msg}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(engine.update_stats().rejected, 1);

        // Reloading with ε = 0 switches the dataset back to the exact
        // pipeline; reloading with a new ε switches forward again.
        let back = engine
            .reload_with_mode("ap", Some(BuildMode::from_epsilon(Some(0.0))))
            .unwrap();
        assert!(!back.build_meta.mode.is_approx());
        assert_eq!(back.index.movd().ovrs, exact.index.movd().ovrs);
        let forward = engine
            .reload_with_mode("ap", Some(BuildMode::from_epsilon(Some(0.5))))
            .unwrap();
        assert!(forward.build_meta.mode.is_approx());
        assert_eq!(forward.build_meta.mode.epsilon(), 0.5);
        engine.apply_update("ap", &insert).unwrap_err();
    }

    #[test]
    fn approx_snapshot_persists_restores_and_never_mixes_modes() {
        let (dir, paths) = csv_fixture("approx_persist", &[("a", 20, 81), ("b", 18, 82)]);
        let approx = DatasetSpec {
            bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
            snapshot_dir: Some(dir.clone()),
            build: BuildMode::from_epsilon(Some(0.2)),
            ..DatasetSpec::new("d", paths.clone())
        };

        // Cold start persists the approximate build; warm start restores it
        // with its metadata intact.
        let (built, outcome) = Engine::new().load_traced(approx.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::BuiltFromCsv);
        let (restored, outcome) = Engine::new().load_traced(approx.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);
        assert!(restored.build_meta.mode.is_approx());
        assert_eq!(
            restored.build_meta.mode.epsilon().to_bits(),
            0.2f64.to_bits()
        );
        assert_eq!(restored.build_meta.leaves, built.build_meta.leaves);
        assert_eq!(restored.index.movd().ovrs, built.index.movd().ovrs);

        // An exact spec against the approximate snapshot is stale (and vice
        // versa): the build mode is part of the snapshot identity.
        let exact = DatasetSpec {
            build: BuildMode::Exact,
            ..approx.clone()
        };
        let (_, outcome) = Engine::new().load_traced(exact.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::BuiltFromCsv);
        let (_, outcome) = Engine::new().load_traced(exact).unwrap();
        assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);
        let changed = DatasetSpec {
            build: BuildMode::from_epsilon(Some(0.1)),
            ..approx.clone()
        };
        let (_, outcome) = Engine::new().load_traced(changed).unwrap();
        assert_eq!(outcome, LoadOutcome::BuiltFromCsv);

        // A journal sitting next to an approximate base is set aside on
        // restore instead of replayed — the patch layer is exact-only.
        let (_, outcome) = Engine::new().load_traced(approx.clone()).unwrap();
        assert_eq!(outcome, LoadOutcome::BuiltFromCsv);
        let jpath = journal_path(&dir, "d");
        let mut j = Journal::create(&jpath, "d", 0).unwrap();
        j.append(&JournalRecord::Insert {
            set: 0,
            x: 5.0,
            y: 5.0,
            w_t: 1.0,
            w_o: 1.0,
        })
        .unwrap();
        drop(j);
        let restarted = Engine::new();
        let (snap, outcome) = restarted.load_traced(approx).unwrap();
        assert_eq!(outcome, LoadOutcome::LoadedFromSnapshot);
        assert_eq!(restarted.update_stats().replayed, 0);
        assert_eq!(restarted.durability().journals_set_aside, 1);
        assert!(!jpath.exists(), "journal should have been set aside");
        assert_eq!(snap.object_count(), 38);
    }
}
