//! The engine: named, immutable MOVD snapshots behind atomic swaps.
//!
//! A dataset is expensive to prepare (the MOVD Overlapper is the dominant
//! cost of the pipeline, §6) and cheap to query afterwards. The engine
//! therefore builds each dataset **once** into a [`Snapshot`] — the query,
//! the built [`MovdIndex`], and serving metadata — and publishes it behind an
//! `Arc`. Requests clone the `Arc` and work on a consistent, immutable view;
//! a reload builds a fresh snapshot off to the side and swaps the map entry
//! atomically, so in-flight requests keep their old view and never observe a
//! half-built diagram.

use molq_core::prelude::*;
use molq_datagen::csv::read_csv;
use molq_fw::StoppingRule;
use molq_geom::{Mbr, Point};
use std::collections::HashMap;
use std::fs::File;
use std::path::PathBuf;
use std::sync::{Arc, RwLock};

/// How to build (and rebuild) one dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name (the `dataset` request parameter).
    pub name: String,
    /// CSV layer files (one object set each); empty when the dataset was
    /// loaded from in-memory sets.
    pub paths: Vec<PathBuf>,
    /// Boundary mode for the MOVD Overlapper.
    pub boundary: Boundary,
    /// Search space; `None` infers the MBR of the objects inflated by 5%.
    pub bounds: Option<Mbr>,
    /// Fermat–Weber error bound ε for `solve`/`top-k`.
    pub eps: f64,
}

impl DatasetSpec {
    /// A spec with the paper's defaults (RRB, inferred bounds, ε = 1e-3).
    pub fn new(name: &str, paths: Vec<PathBuf>) -> Self {
        DatasetSpec {
            name: name.to_string(),
            paths,
            boundary: Boundary::Rrb,
            bounds: None,
            eps: 1e-3,
        }
    }
}

/// Number of quantization steps along the longer side of the search space:
/// `locate` coordinates snap to this lattice so the cache can key on integer
/// cells. 2^20 steps keep the snap error below one millionth of the space —
/// far below any geographic data precision — while making equal-for-serving
/// locations collide in the cache.
const QUANT_STEPS: f64 = (1u64 << 20) as f64;

/// An immutable, fully-built serving view of one dataset.
#[derive(Debug)]
pub struct Snapshot {
    /// The build recipe (kept for reloads).
    pub spec: DatasetSpec,
    /// Monotonic build counter for this dataset name; bumps on every reload
    /// so cache keys from older snapshots can never alias new answers.
    pub generation: u64,
    /// The query the MOVD was built from (object sets, weights, bounds, ε).
    pub query: MolqQuery,
    /// Point-location index over the built MOVD.
    pub index: MovdIndex,
    /// Side length of one quantization cell (see [`Snapshot::quantize`]).
    pub quantum: f64,
}

impl Snapshot {
    fn build(spec: DatasetSpec, sets: Vec<ObjectSet>, generation: u64) -> Result<Self, String> {
        let bounds = match spec.bounds {
            Some(b) => b,
            None => {
                let m = sets
                    .iter()
                    .flat_map(|s| s.objects.iter().map(|o| o.loc))
                    .fold(Mbr::EMPTY, |acc, p| acc.union(&Mbr::of_point(p)));
                if m.is_empty() {
                    return Err("cannot infer bounds from empty inputs".into());
                }
                m.inflate(0.05 * m.margin().max(1.0))
            }
        };
        let query = MolqQuery::new(sets, bounds).with_rule(StoppingRule::Either(spec.eps, 100_000));
        query.validate().map_err(|e| e.to_string())?;
        let movd =
            Movd::overlap_all(&query.sets, bounds, spec.boundary).map_err(|e| e.to_string())?;
        let quantum = bounds.width().max(bounds.height()) / QUANT_STEPS;
        Ok(Snapshot {
            spec,
            generation,
            query,
            index: MovdIndex::build(movd),
            quantum,
        })
    }

    /// Snaps a location to the snapshot's cache lattice, returning the cell
    /// id and the cell's representative point (the coordinate actually
    /// evaluated and reported back to the client).
    pub fn quantize(&self, l: Point) -> ((i64, i64), Point) {
        let b = self.query.bounds;
        let qx = ((l.x - b.min_x) / self.quantum).round();
        let qy = ((l.y - b.min_y) / self.quantum).round();
        let snapped = Point::new(b.min_x + qx * self.quantum, b.min_y + qy * self.quantum);
        ((qx as i64, qy as i64), snapped)
    }

    /// Number of object sets.
    pub fn set_count(&self) -> usize {
        self.query.sets.len()
    }

    /// Total number of objects across sets.
    pub fn object_count(&self) -> usize {
        self.query.sets.iter().map(|s| s.len()).sum()
    }
}

/// The snapshot registry: dataset name → current [`Snapshot`].
#[derive(Debug, Default)]
pub struct Engine {
    datasets: RwLock<HashMap<String, Arc<Snapshot>>>,
}

impl Engine {
    /// An engine with no datasets.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Loads (or replaces) a dataset from its spec's CSV files.
    pub fn load(&self, spec: DatasetSpec) -> Result<Arc<Snapshot>, String> {
        if spec.paths.is_empty() {
            return Err(format!("dataset {:?} has no input files", spec.name));
        }
        let sets = spec
            .paths
            .iter()
            .map(|path| {
                let f = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
                let name = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().to_string())
                    .unwrap_or_else(|| path.display().to_string());
                read_csv(&name, f).map_err(|e| format!("{}: {e}", path.display()))
            })
            .collect::<Result<Vec<_>, String>>()?;
        self.publish(spec, sets)
    }

    /// Loads (or replaces) a dataset from in-memory object sets; `spec.paths`
    /// is ignored and cleared. Used by tests and the load generator.
    pub fn load_from_sets(
        &self,
        mut spec: DatasetSpec,
        sets: Vec<ObjectSet>,
    ) -> Result<Arc<Snapshot>, String> {
        spec.paths.clear();
        self.publish(spec, sets)
    }

    /// Rebuilds the named dataset from its stored spec (re-reading CSV files
    /// when it was file-backed, re-overlapping the held sets otherwise) and
    /// swaps it in.
    pub fn reload(&self, name: &str) -> Result<Arc<Snapshot>, String> {
        let current = self
            .get(name)
            .ok_or_else(|| format!("no dataset {name:?}"))?;
        if current.spec.paths.is_empty() {
            self.publish(current.spec.clone(), current.query.sets.clone())
        } else {
            self.load(current.spec.clone())
        }
    }

    fn publish(&self, spec: DatasetSpec, sets: Vec<ObjectSet>) -> Result<Arc<Snapshot>, String> {
        // Build outside the lock: requests keep being served from the old
        // snapshot for the whole (potentially long) overlap.
        let generation = self.get(&spec.name).map_or(1, |s| s.generation + 1);
        let snapshot = Arc::new(Snapshot::build(spec, sets, generation)?);
        let mut map = self.datasets.write().expect("engine lock poisoned");
        map.insert(snapshot.spec.name.clone(), Arc::clone(&snapshot));
        Ok(snapshot)
    }

    /// The current snapshot of a dataset.
    pub fn get(&self, name: &str) -> Option<Arc<Snapshot>> {
        self.datasets
            .read()
            .expect("engine lock poisoned")
            .get(name)
            .cloned()
    }

    /// Sorted dataset names.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .datasets
            .read()
            .expect("engine lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_set(name: &str, n: usize, seed: u64) -> ObjectSet {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as f64 / u32::MAX as f64
        };
        ObjectSet::uniform(
            name,
            1.0,
            (0..n)
                .map(|_| Point::new(next() * 100.0, next() * 100.0))
                .collect(),
        )
    }

    fn spec(name: &str) -> DatasetSpec {
        DatasetSpec {
            bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
            ..DatasetSpec::new(name, Vec::new())
        }
    }

    #[test]
    fn load_get_and_reload_bump_generations() {
        let engine = Engine::new();
        let sets = vec![pseudo_set("a", 10, 1), pseudo_set("b", 12, 2)];
        let s1 = engine.load_from_sets(spec("d"), sets).unwrap();
        assert_eq!(s1.generation, 1);
        assert_eq!(s1.set_count(), 2);
        assert_eq!(s1.object_count(), 22);

        let s2 = engine.reload("d").unwrap();
        assert_eq!(s2.generation, 2);
        let current = engine.get("d").unwrap();
        assert_eq!(current.generation, 2);
        // The old snapshot stays valid for holders of the Arc.
        assert_eq!(s1.generation, 1);
        assert_eq!(engine.names(), vec!["d".to_string()]);
    }

    #[test]
    fn quantization_is_stable_and_tight() {
        let engine = Engine::new();
        let snap = engine
            .load_from_sets(
                spec("q"),
                vec![pseudo_set("a", 8, 3), pseudo_set("b", 8, 4)],
            )
            .unwrap();
        let p = Point::new(33.333333, 66.666666);
        let (cell, snapped) = snap.quantize(p);
        // The snap error is below one quantum, and points within half a
        // quantum of a lattice point land in that lattice point's cell.
        assert!(snapped.dist(p) <= snap.quantum);
        let (cell2, snapped2) = snap.quantize(Point::new(
            snapped.x + snap.quantum * 0.4,
            snapped.y - snap.quantum * 0.4,
        ));
        assert_eq!(cell, cell2);
        assert_eq!(snapped, snapped2);
    }

    #[test]
    fn missing_datasets_and_empty_inputs_error() {
        let engine = Engine::new();
        assert!(engine.get("nope").is_none());
        assert!(engine.reload("nope").is_err());
        assert!(engine.load(DatasetSpec::new("d", Vec::new())).is_err());
        assert!(engine
            .load_from_sets(DatasetSpec::new("d", Vec::new()), Vec::new())
            .is_err());
    }

    #[test]
    fn file_backed_load_roundtrips() {
        let dir = std::env::temp_dir().join("molq_server_engine");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("layer.csv");
        let set = pseudo_set("layer", 9, 5);
        let mut f = File::create(&path).unwrap();
        molq_datagen::csv::write_csv(&set, &mut f).unwrap();

        let engine = Engine::new();
        let spec = DatasetSpec {
            bounds: Some(Mbr::new(0.0, 0.0, 100.0, 100.0)),
            ..DatasetSpec::new("files", vec![path.clone(), path])
        };
        let snap = engine.load(spec).unwrap();
        assert_eq!(snap.set_count(), 2);
        assert_eq!(snap.object_count(), 18);
        let re = engine.reload("files").unwrap();
        assert_eq!(re.generation, 2);
    }
}
